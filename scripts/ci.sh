#!/usr/bin/env sh
# Local CI gate: formatting, static analysis, build, tests — in the order
# that fails fastest. Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cstore-lint check"
cargo run -q -p cstore-lint -- check

echo "==> cargo build --release"
cargo build --workspace --release -q

echo "==> cargo test"
cargo test --workspace -q

echo "==> ci: all gates passed"
