#!/usr/bin/env sh
# Local CI gate: formatting, static analysis, build, tests — in the order
# that fails fastest. Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cstore-lint check"
cargo run -q -p cstore-lint -- check

echo "==> cargo build --release"
cargo build --workspace --release -q

echo "==> cargo test"
cargo test --workspace -q

# Chaos gate: crash-point matrix over save, degraded open per blob kind,
# and the mover under injected faults. Fixed seeds, fully offline — part
# of the workspace run above, re-run here explicitly so a failure names
# the robustness suite directly.
echo "==> chaos + degraded-open suites"
cargo test -q --test chaos --test degraded_open

echo "==> ci: all gates passed"
