#!/usr/bin/env sh
# Local CI gate: formatting, static analysis, build, tests — in the order
# that fails fastest. Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cstore-lint check"
cargo run -q -p cstore-lint -- check

echo "==> cargo build --release"
cargo build --workspace --release -q

echo "==> cargo test"
cargo test --workspace -q

# Chaos gate: crash-point matrix over save, degraded open per blob kind,
# and the mover under injected faults. Fixed seeds, fully offline — part
# of the workspace run above, re-run here explicitly so a failure names
# the robustness suite directly.
echo "==> chaos + degraded-open suites"
cargo test -q --test chaos --test degraded_open

# Observability gate: run the EXPLAIN ANALYZE smoke query (star-schema
# join with a selective day predicate) and require that the rendered plan
# reports actual segment elimination — a plan that silently stops
# eliminating groups fails here even if results stay correct.
echo "==> EXPLAIN ANALYZE smoke"
smoke=$(cargo test -q --test observability explain_analyze_actuals -- --nocapture)
echo "$smoke" | grep -E 'groups_eliminated=[1-9]' >/dev/null || {
    echo "EXPLAIN ANALYZE smoke reported no segment elimination:"
    echo "$smoke"
    exit 1
}
echo "$smoke" | grep -E 'pruned=[1-9]' >/dev/null || {
    echo "EXPLAIN ANALYZE smoke reported no bitmap-filter prunes:"
    echo "$smoke"
    exit 1
}

echo "==> ci: all gates passed"
