#!/usr/bin/env sh
# Local CI gate: formatting, static analysis, build, tests — in the order
# that fails fastest. Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cstore-lint check"
cargo run -q -p cstore-lint -- check

# Lock-discipline gate, static half: `list` exits nonzero if any finding
# is not explicitly waived — the interprocedural L7/L8 passes must stay
# at zero live findings, not merely within the ratchet.
echo "==> cstore-lint zero non-waived findings"
cargo run -q -p cstore-lint -- list --json >/dev/null || {
    echo "cstore-lint: non-waived findings present (run 'cargo run -p cstore-lint -- list')"
    exit 1
}

echo "==> cargo build --release"
cargo build --workspace --release -q

echo "==> cargo test"
cargo test --workspace -q

# Chaos gate: crash-point matrix over save, degraded open per blob kind,
# and the mover under injected faults. Fixed seeds, fully offline — part
# of the workspace run above, re-run here explicitly so a failure names
# the robustness suite directly.
echo "==> chaos + degraded-open suites"
cargo test -q --test chaos --test degraded_open

# Resource-governor gate: the four governor mechanisms (admission
# control, shared memory ledger, delta backpressure, read-only health
# machine) under injected storage failure, run with runtime lockdep so
# the new governor locks (levels 12-14) prove their place in the order.
echo "==> resource governor chaos (with lockdep)"
cargo test -q --features lockdep --test governor

# Lock-discipline gate, dynamic half: re-run the concurrency and chaos
# suites with the `lockdep` feature, so a runtime lock-order inversion
# anywhere in the engine aborts the suite instead of deadlocking in
# production. (Unit tests get this for free via cfg(test); integration
# tests compile the library without it, hence the explicit feature.)
echo "==> concurrency + chaos under runtime lockdep"
cargo test -q --features lockdep --test concurrency --test chaos

# WAL gate: the crash-point matrix over every WAL append/fsync (clean
# crash, torn write, bit flip), randomized crash schedules, group-commit
# crash under concurrency, and quarantine of interior log damage — plus
# the sys.wal smoke (queryable through the ordinary planner, reflects
# checkpoint retirement after a save).
echo "==> WAL chaos matrix + sys.wal smoke"
cargo test -q --test chaos wal_
cargo test -q --test introspection wal_view_tracks_appends_and_checkpoint_retirement

# Observability gate: run the EXPLAIN ANALYZE smoke query (star-schema
# join with a selective day predicate) and require that the rendered plan
# reports actual segment elimination — a plan that silently stops
# eliminating groups fails here even if results stay correct.
echo "==> EXPLAIN ANALYZE smoke"
smoke=$(cargo test -q --test observability explain_analyze_actuals -- --nocapture)
echo "$smoke" | grep -E 'groups_eliminated=[1-9]' >/dev/null || {
    echo "EXPLAIN ANALYZE smoke reported no segment elimination:"
    echo "$smoke"
    exit 1
}
echo "$smoke" | grep -E 'pruned=[1-9]' >/dev/null || {
    echo "EXPLAIN ANALYZE smoke reported no bitmap-filter prunes:"
    echo "$smoke"
    exit 1
}

# Introspection gate: drive the real shell binary over a loaded table and
# require that the sys.* views report compressed row groups and a
# nontrivial per-segment compression ratio. A refactor that silently
# breaks view binding, the dotted-name parser, or the segment-stats
# plumbing fails here even though the engine still answers data queries.
echo "==> sys.* introspection smoke (shell)"
introspect=$(printf '%s\n' \
    '\demo 150000' \
    'SELECT table_name, state, total_rows FROM sys.row_groups;' \
    "SELECT encoding, compression_ratio FROM sys.column_segments WHERE compression_ratio > 2.0;" \
    '\quit' | cargo run -q --release --bin cstore 2>/dev/null)
echo "$introspect" | grep -E 'COMPRESSED' >/dev/null || {
    echo "sys.row_groups reported no COMPRESSED groups:"
    echo "$introspect"
    exit 1
}
echo "$introspect" | grep -E '(DICT|VALUE)_(RLE|BITPACK)' >/dev/null || {
    echo "sys.column_segments reported no segment with compression_ratio > 2:"
    echo "$introspect"
    exit 1
}

# Trace gate: the Chrome-trace export must contain complete events for a
# query, a tuple-mover compression pass and a persistence save.
echo "==> trace dump smoke"
trace=$(cargo run -q --release --bin cstore -- trace dump 2>/dev/null)
for needle in '"traceEvents":[' '"ph":"X"' '"name":"query"' \
    '"name":"compress_rowgroup"' '"name":"persist.save"'; do
    case "$trace" in
    *"$needle"*) ;;
    *)
        echo "trace dump missing $needle"
        exit 1
        ;;
    esac
done

# Wait-stats + Query Store gate: drive the shell through a two-session
# persisted workload. Session 2 reopens the directory (which attaches the
# WAL), commits trickle inserts and repeats one SELECT shape; it must
# then report a nonzero WAL_COMMIT row in sys.wait_stats and an
# aggregated sys.query_store row for the repeated shape. A refactor that
# silently stops attributing commit waits, or stops aggregating shapes,
# fails here even though every query still answers correctly.
echo "==> wait stats + query store smoke (shell)"
wsdir=$(mktemp -d)
printf '%s\n' \
    'CREATE TABLE qs (id BIGINT NOT NULL, v BIGINT NOT NULL);' \
    'INSERT INTO qs VALUES (1, 10);' \
    '\quit' | cargo run -q --release --bin cstore -- "$wsdir" >/dev/null 2>&1
waitsmoke=$(printf '%s\n' \
    'INSERT INTO qs VALUES (2, 20);' \
    'INSERT INTO qs VALUES (3, 30);' \
    'INSERT INTO qs VALUES (4, 40);' \
    'SELECT SUM(v) FROM qs WHERE id > 0;' \
    'SELECT SUM(v) FROM qs WHERE id > 1;' \
    'SELECT SUM(v) FROM qs WHERE id > 2;' \
    'SELECT wait_class, wait_count FROM sys.wait_stats WHERE wait_count > 0;' \
    'SELECT query_shape, executions FROM sys.query_store WHERE executions > 2;' \
    '\quit' | cargo run -q --release --bin cstore -- "$wsdir" 2>/dev/null)
echo "$waitsmoke" | grep 'WAL_COMMIT' >/dev/null || {
    echo "sys.wait_stats reported no WAL_COMMIT wait after WAL-attached inserts:"
    echo "$waitsmoke"
    exit 1
}
echo "$waitsmoke" | grep -F 'where id > ?' >/dev/null || {
    echo "sys.query_store reported no aggregated row for the repeated SELECT shape:"
    echo "$waitsmoke"
    exit 1
}
rm -rf "$wsdir"

# Transactions gate: drive BEGIN…ROLLBACK and BEGIN…disconnect…reopen
# through the real shell against a persisted directory. Rolled-back rows
# must never be visible, never survive a reopen, and the abort must be
# observable in sys.transactions and sys.query_log. A refactor that
# leaks buffered transaction writes (or stops rolling back a dropped
# session) fails here even though unit suites still pass.
echo "==> transactions smoke (shell)"
txdir=$(mktemp -d)
txsmoke=$(printf '%s\n' \
    'CREATE TABLE txndemo (id BIGINT NOT NULL, v VARCHAR NOT NULL);' \
    "INSERT INTO txndemo VALUES (1, 'keepme');" \
    'BEGIN;' \
    "INSERT INTO txndemo VALUES (2, 'leakme'), (3, 'leakme');" \
    "UPDATE txndemo SET v = 'leakme' WHERE id = 1;" \
    'ROLLBACK;' \
    'SELECT id, v FROM txndemo ORDER BY id;' \
    "SELECT state FROM sys.transactions WHERE state = 'ABORTED';" \
    "SELECT status FROM sys.query_log WHERE status = 'ROLLBACK';" \
    '\quit' | cargo run -q --release --bin cstore -- "$txdir" 2>/dev/null)
echo "$txsmoke" | grep 'keepme' >/dev/null || {
    echo "committed row lost after ROLLBACK:"
    echo "$txsmoke"
    exit 1
}
echo "$txsmoke" | grep 'leakme' >/dev/null && {
    echo "rolled-back transaction leaked rows:"
    echo "$txsmoke"
    exit 1
}
echo "$txsmoke" | grep 'ABORTED' >/dev/null || {
    echo "sys.transactions reported no ABORTED transaction:"
    echo "$txsmoke"
    exit 1
}
echo "$txsmoke" | grep 'ROLLBACK' >/dev/null || {
    echo "sys.query_log reported no ROLLBACK outcome:"
    echo "$txsmoke"
    exit 1
}
# A session that disconnects (EOF, no \quit) mid-transaction: the shell
# rolls the open transaction back before its exit save.
drop=$(printf '%s\n' \
    'BEGIN;' \
    "INSERT INTO txndemo VALUES (4, 'ghost');" \
    | cargo run -q --release --bin cstore -- "$txdir" 2>&1)
echo "$drop" | grep 'open transaction rolled back on exit' >/dev/null || {
    echo "shell did not roll back the open transaction on disconnect:"
    echo "$drop"
    exit 1
}
# Reopen: zero leaked rows from either aborted transaction.
reopen=$(printf '%s\n' \
    'SELECT id, v FROM txndemo ORDER BY id;' \
    '\quit' | cargo run -q --release --bin cstore -- "$txdir" 2>/dev/null)
echo "$reopen" | grep 'keepme' >/dev/null || {
    echo "committed row lost across reopen:"
    echo "$reopen"
    exit 1
}
echo "$reopen" | grep -E 'leakme|ghost' >/dev/null && {
    echo "aborted transaction rows leaked across reopen:"
    echo "$reopen"
    exit 1
}
rm -rf "$txdir"

# Bench-results gate: the E1 harness (offline, no external deps) must
# produce a machine-readable BENCH_E1.json with the agreed shape.
echo "==> bench BENCH_E1.json shape"
bench_results=$(mktemp -d)
(cd crates/bench && CSTORE_SCALE=small CSTORE_RESULTS_DIR="$bench_results" \
    cargo run -q --offline --release --bin exp_e1_compression >/dev/null)
for field in '"experiment":"E1"' '"rows":' '"wall_ms":' '"bytes":' '"compression_ratio":'; do
    grep -F "$field" "$bench_results/BENCH_E1.json" >/dev/null || {
        echo "BENCH_E1.json missing $field:"
        cat "$bench_results/BENCH_E1.json" 2>/dev/null || echo "(no file)"
        exit 1
    }
done
rm -rf "$bench_results"

# E5 durability-tax gate: the trickle-insert harness must record the
# WAL-on vs WAL-off insert rates in BENCH_E5.json so the WAL's overhead
# stays measured, not guessed. The 16-writer axis records rows/s and
# fsyncs/row per `wal_sync` mode; the group-commit ratio against the
# WAL-free rate is the pipelined-log-writer regression gate (target ~5x;
# the bound leaves headroom for slow CI disks — a regression to the old
# fsync-per-commit path shows up as ~50x and fails loudly).
echo "==> bench BENCH_E5.json shape + group-commit ratio"
bench_results=$(mktemp -d)
(cd crates/bench && CSTORE_SCALE=small CSTORE_RESULTS_DIR="$bench_results" \
    cargo run -q --offline --release --bin exp_e5_trickle_inserts >/dev/null)
for field in '"experiment":"E5"' '"wal_off_inserts_per_s":' '"wal_on_inserts_per_s":' \
    '"wal_overhead_pct":' '"wal16_off_rows_per_s":' '"wal16_nosync_rows_per_s":' \
    '"wal16_group_rows_per_s":' '"wal16_group_fsyncs_per_row":' \
    '"wal16_strict_rows_per_s":' '"wal16_strict_fsyncs_per_row":' \
    '"wal16_group_vs_off_ratio":'; do
    grep -F "$field" "$bench_results/BENCH_E5.json" >/dev/null || {
        echo "BENCH_E5.json missing $field:"
        cat "$bench_results/BENCH_E5.json" 2>/dev/null || echo "(no file)"
        exit 1
    }
done
ratio=$(sed -n 's/.*"wal16_group_vs_off_ratio":\([0-9.]*\).*/\1/p' "$bench_results/BENCH_E5.json")
awk "BEGIN { exit !($ratio <= 12) }" || {
    echo "wal16_group_vs_off_ratio regressed: $ratio (group commit must stay near 5x of WAL-off)"
    cat "$bench_results/BENCH_E5.json"
    exit 1
}
echo "    wal16_group_vs_off_ratio = $ratio"
rm -rf "$bench_results"

# E8 governor-pressure gate: the spilling harness must record the budget
# sweep and the concurrent shared-ledger axis in BENCH_E8.json, so the
# governor's memory behavior under concurrency stays measured.
echo "==> bench BENCH_E8.json shape"
bench_results=$(mktemp -d)
(cd crates/bench && CSTORE_SCALE=small CSTORE_RESULTS_DIR="$bench_results" \
    cargo run -q --offline --release --bin exp_e8_spilling >/dev/null)
for field in '"experiment":"E8"' '"budget_10pct_spilled_bytes":' \
    '"concurrent_k16_ms":' '"concurrent_k16_completed":'; do
    grep -F "$field" "$bench_results/BENCH_E8.json" >/dev/null || {
        echo "BENCH_E8.json missing $field:"
        cat "$bench_results/BENCH_E8.json" 2>/dev/null || echo "(no file)"
        exit 1
    }
done
rm -rf "$bench_results"

echo "==> ci: all gates passed"
