//! Cheap, CI-friendly assertions of the paper's qualitative claims —
//! the experiment harnesses (`cstore-bench`) measure the magnitudes;
//! these tests pin the *directions* so regressions are caught by
//! `cargo test`.

use std::time::Instant;

use cstore::common::{Row, Value};
use cstore::delta::TableConfig;
use cstore::workload::StarSchema;
use cstore::{Database, ExecMode};

fn star_db(mode: ExecMode, n: usize) -> Database {
    let db = Database::new().with_exec_mode(mode);
    StarSchema::scale(n).load_into(&db).unwrap();
    db
}

#[test]
fn columnstore_compresses_warehouse_data() {
    // Claim: columnstore compression shrinks typical warehouse data by
    // several x vs the raw row-store image.
    let db = cstore::workload::customer_dbs::retail(30_000, 1);
    let mut heap = cstore::rowstore::HeapTable::new(db.schema.clone());
    heap.insert_all(&db.rows).unwrap();
    let mut cs = cstore::storage::ColumnStore::new(db.schema.clone());
    cs.append_rows(&db.rows, 1 << 20).unwrap();
    assert!(
        cs.encoded_bytes() * 4 < heap.allocated_bytes(),
        "columnstore {} should be ≥4x smaller than raw {}",
        cs.encoded_bytes(),
        heap.allocated_bytes()
    );
}

#[test]
fn archival_compression_shrinks_further() {
    let db = cstore::workload::customer_dbs::weblog(30_000, 1);
    let mut cs = cstore::storage::ColumnStore::new(db.schema.clone());
    cs.append_rows(&db.rows, 1 << 20).unwrap();
    let hot = cs.encoded_bytes();
    let ids: Vec<_> = cs.groups().iter().map(|g| g.id()).collect();
    for id in ids {
        cs.archive_group(id).unwrap();
    }
    assert!(
        cs.encoded_bytes() < hot,
        "archive {} should be smaller than columnstore {hot}",
        cs.encoded_bytes()
    );
}

#[test]
fn batch_mode_beats_row_mode_on_scans() {
    // Claim: batch mode is multiples faster on scan+aggregate queries.
    let n = 120_000;
    let batch = star_db(ExecMode::Batch, n);
    let row = star_db(ExecMode::Row, n);
    let sql = "SELECT COUNT(*), SUM(quantity) FROM sales WHERE quantity > 2";
    // Warm up and verify agreement.
    assert_eq!(
        batch.execute(sql).unwrap().rows(),
        row.execute(sql).unwrap().rows()
    );
    let time = |db: &Database| {
        let t = Instant::now();
        for _ in 0..3 {
            db.execute(sql).unwrap();
        }
        t.elapsed()
    };
    let bt = time(&batch);
    let rt = time(&row);
    assert!(
        bt * 2 < rt,
        "batch ({bt:?}) should be ≥2x faster than row mode ({rt:?})"
    );
}

#[test]
fn segment_elimination_skips_groups() {
    let db = Database::new().with_table_config(TableConfig {
        bulk_load_threshold: 1024,
        max_rowgroup_rows: 10_000,
        ..Default::default()
    });
    db.execute("CREATE TABLE f (id BIGINT NOT NULL, day DATE NOT NULL)")
        .unwrap();
    let rows: Vec<Row> = (0..100_000)
        .map(|i| Row::new(vec![Value::Int64(i), Value::Date((i / 1000) as i32)]))
        .collect();
    db.bulk_load("f", &rows).unwrap();
    let r = db
        .execute("SELECT COUNT(*) FROM f WHERE day BETWEEN 40 AND 49")
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(10_000));
    let cstore::QueryResult::Rows { metrics, .. } = r else {
        panic!()
    };
    let get = |n: &str| metrics.iter().find(|(x, _)| *x == n).unwrap().1;
    assert_eq!(get("groups_eliminated"), 9, "9 of 10 groups skipped");
    assert_eq!(get("groups_scanned"), 1);
}

#[test]
fn bitmap_filters_drop_probe_rows_at_scan() {
    let db = star_db(ExecMode::Batch, 60_000);
    let r = db
        .execute(
            "SELECT COUNT(*) FROM sales s JOIN store st \
             ON s.store_key = st.store_key WHERE st.state = 'WA'",
        )
        .unwrap();
    let cstore::QueryResult::Rows { metrics, rows, .. } = r else {
        panic!()
    };
    assert!(rows[0].get(0).as_i64().unwrap() > 0);
    let dropped = metrics
        .iter()
        .find(|(x, _)| *x == "rows_dropped_by_bitmap")
        .unwrap()
        .1;
    assert!(
        dropped > 30_000,
        "bitmap filter dropped only {dropped} rows"
    );
}

#[test]
fn spilling_degrades_gracefully_not_wrongly() {
    // Claim: a memory-starved hash join produces identical results.
    use cstore_exec::ExecContext;
    let roomy = Database::new().with_exec_mode(ExecMode::Batch);
    StarSchema::scale(50_000).load_into(&roomy).unwrap();
    let starved = Database::new()
        .with_exec_mode(ExecMode::Batch)
        .with_exec_context(ExecContext::default().with_budget(16 << 10));
    StarSchema::scale(50_000).load_into(&starved).unwrap();
    let sql = "SELECT c.region, COUNT(*) AS n FROM sales s \
               JOIN customer c ON s.cust_key = c.cust_key \
               GROUP BY c.region ORDER BY region";
    assert_eq!(
        roomy.execute(sql).unwrap().rows(),
        starved.execute(sql).unwrap().rows()
    );
    let spilled = starved
        .exec_context()
        .metrics
        .snapshot()
        .iter()
        .find(|(x, _)| *x == "partitions_spilled")
        .unwrap()
        .1;
    assert!(spilled > 0, "the starved join never spilled");
}

#[test]
fn trickle_then_move_preserves_query_results() {
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 500,
        ..Default::default()
    });
    db.execute("CREATE TABLE e (id BIGINT NOT NULL, v BIGINT NOT NULL)")
        .unwrap();
    for i in 0..2000i64 {
        db.execute(&format!("INSERT INTO e VALUES ({i}, {})", i % 7))
            .unwrap();
    }
    let sql = "SELECT SUM(v), COUNT(*) FROM e WHERE id >= 1000";
    let before = db.execute(sql).unwrap().rows().to_vec();
    let moved = db.tuple_move("e").unwrap();
    assert!(
        moved >= 3,
        "expected several closed delta stores, moved {moved}"
    );
    assert_eq!(db.execute(sql).unwrap().rows(), before);
}

#[test]
fn parallel_scan_agrees_with_serial_and_uses_threads() {
    use cstore_exec::ExecContext;
    let load = |ctx: ExecContext| {
        let db = Database::new()
            .with_exec_mode(ExecMode::Batch)
            .with_exec_context(ctx)
            .with_table_config(TableConfig {
                bulk_load_threshold: 1024,
                max_rowgroup_rows: 8192,
                ..Default::default()
            });
        db.execute("CREATE TABLE p (id BIGINT NOT NULL, v BIGINT NOT NULL)")
            .unwrap();
        let rows: Vec<Row> = (0..100_000)
            .map(|i| Row::new(vec![Value::Int64(i), Value::Int64(i % 101)]))
            .collect();
        db.bulk_load("p", &rows).unwrap();
        db
    };
    let serial = load(ExecContext::default());
    let parallel = load(ExecContext::default().with_parallelism(4));
    for sql in [
        "SELECT COUNT(*), SUM(v) FROM p",
        "SELECT COUNT(*) FROM p WHERE v BETWEEN 10 AND 20",
        "SELECT v, COUNT(*) AS n FROM p GROUP BY v ORDER BY v LIMIT 5",
    ] {
        assert_eq!(
            serial.execute(sql).unwrap().rows(),
            parallel.execute(sql).unwrap().rows(),
            "parallel disagrees on: {sql}"
        );
    }
}
