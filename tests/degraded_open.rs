//! Degraded open: every kind of single-blob damage is quarantined with an
//! exact [`cstore::OpenReport`], while the strict open refuses to proceed.
//!
//! One test per blob kind — truncated row group, bit-flipped delta blob,
//! missing heap blob, unreadable table manifest — plus the
//! stale-generation manifest fallback.

use cstore::common::{Row, Value};
use cstore::delta::TableConfig;
use cstore::storage::blob::{BlobStore, MemBlobStore};
use cstore::storage::QuarantinedKind;
use cstore::{Database, OpenMode};

/// Build, save (generation 1), and return the disk image. Tables: a
/// columnstore `cs` with two row groups plus delta rows and deletes, and
/// a heap `hp`.
fn saved_store() -> MemBlobStore {
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 100,
        bulk_load_threshold: 200,
        max_rowgroup_rows: 500,
        ..TableConfig::default()
    });
    db.execute("CREATE TABLE cs (id BIGINT NOT NULL, name VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE hp (k BIGINT NOT NULL) USING HEAP")
        .unwrap();
    let rows: Vec<Row> = (0..1000)
        .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("n{}", i % 7))]))
        .collect();
    db.bulk_load("cs", &rows).unwrap();
    db.execute("INSERT INTO cs VALUES (5000, 'delta')").unwrap();
    db.execute("DELETE FROM cs WHERE id < 10").unwrap();
    db.execute("INSERT INTO hp VALUES (1), (2), (3)").unwrap();
    let mut store = MemBlobStore::new();
    assert_eq!(db.save_to_store(&mut store).unwrap(), 1);
    store
}

fn truncate(store: &mut MemBlobStore, key: &str) {
    let blob = store.get(key).unwrap();
    store.put(key, &blob[..blob.len() / 2]).unwrap();
}

fn flip_bit(store: &mut MemBlobStore, key: &str) {
    let mut blob = store.get(key).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0x10;
    store.put(key, &blob).unwrap();
}

#[test]
fn truncated_rowgroup_blob_is_quarantined() {
    let mut store = saved_store();
    truncate(&mut store, "g1.cs.rg0");

    assert!(Database::open_from_store(&store, OpenMode::Strict).is_err());
    let (db, report) = Database::open_from_store(&store, OpenMode::Degraded).unwrap();
    assert_eq!(report.generation, 1);
    assert!(report.skipped_manifests.is_empty());
    assert_eq!(report.tables.len(), 1);
    assert_eq!(report.tables[0].table, "cs");
    let q = &report.tables[0].quarantined;
    assert_eq!(q.len(), 1);
    assert_eq!(q[0].key, "g1.cs.rg0");
    assert_eq!(
        q[0].kind,
        QuarantinedKind::RowGroup(cstore::common::RowGroupId(0))
    );
    assert!(q[0].error.contains("checksum"), "{}", q[0].error);
    assert_eq!(report.total_quarantined(), 1);
    assert!(!report.is_clean());

    // Row group 0 (500 rows, 10 of them deleted) is gone; group 1 and the
    // delta row survive.
    let n = db.execute("SELECT COUNT(*) FROM cs").unwrap().rows()[0]
        .get(0)
        .clone();
    assert_eq!(n, Value::Int64(501));

    // The scrub sees the same damage.
    let verify = Database::verify_store(&store).unwrap();
    assert!(!verify.is_clean());
    assert_eq!(verify.corrupt.len(), 1);
    assert_eq!(verify.corrupt[0].0, "g1.cs.rg0");
}

#[test]
fn bit_flipped_delta_blob_is_quarantined() {
    let mut store = saved_store();
    flip_bit(&mut store, "g1.cs.delta");

    assert!(Database::open_from_store(&store, OpenMode::Strict).is_err());
    let (db, report) = Database::open_from_store(&store, OpenMode::Degraded).unwrap();
    assert_eq!(report.tables.len(), 1);
    let q = &report.tables[0].quarantined;
    assert_eq!(q.len(), 1);
    assert_eq!(q[0].key, "g1.cs.delta");
    assert_eq!(q[0].kind, QuarantinedKind::Delta);
    // The delta blob carried 1 delta row and the delete bitmap: both are
    // lost — 1000 compressed rows remain, deletes resurrected.
    let n = db.execute("SELECT COUNT(*) FROM cs").unwrap().rows()[0]
        .get(0)
        .clone();
    assert_eq!(n, Value::Int64(1000));
}

#[test]
fn missing_heap_blob_is_quarantined() {
    let mut store = saved_store();
    store.delete("g1.hp.heap").unwrap();

    assert!(Database::open_from_store(&store, OpenMode::Strict).is_err());
    let (db, report) = Database::open_from_store(&store, OpenMode::Degraded).unwrap();
    assert_eq!(report.tables.len(), 1);
    assert_eq!(report.tables[0].table, "hp");
    let q = &report.tables[0].quarantined;
    assert_eq!(q.len(), 1);
    assert_eq!(q[0].key, "g1.hp.heap");
    assert_eq!(q[0].kind, QuarantinedKind::Heap);
    assert!(q[0].error.contains("not found"), "{}", q[0].error);
    // The heap opens empty but usable; the columnstore is untouched.
    let n = db.execute("SELECT COUNT(*) FROM hp").unwrap().rows()[0]
        .get(0)
        .clone();
    assert_eq!(n, Value::Int64(0));
    db.execute("INSERT INTO hp VALUES (9)").unwrap();

    let verify = Database::verify_store(&store).unwrap();
    assert_eq!(verify.missing, vec!["g1.hp.heap".to_string()]);
}

#[test]
fn unreadable_table_manifest_quarantines_whole_table() {
    let mut store = saved_store();
    truncate(&mut store, "g1.cs.manifest");

    assert!(Database::open_from_store(&store, OpenMode::Strict).is_err());
    let (db, report) = Database::open_from_store(&store, OpenMode::Degraded).unwrap();
    assert_eq!(report.tables.len(), 1);
    let q = &report.tables[0].quarantined;
    assert_eq!(q.len(), 1);
    assert_eq!(q[0].key, "g1.cs.manifest");
    assert_eq!(q[0].kind, QuarantinedKind::TableManifest);
    // The table is installed empty (schema intact) so the rest of the
    // database stays reachable.
    let n = db.execute("SELECT COUNT(*) FROM cs").unwrap().rows()[0]
        .get(0)
        .clone();
    assert_eq!(n, Value::Int64(0));
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM hp").unwrap().rows()[0].get(0),
        &Value::Int64(3)
    );
}

#[test]
fn stale_generation_manifest_falls_back() {
    let mut store = saved_store();
    // Plant a "generation 2" manifest that is really the generation-1
    // bytes: its embedded stamp (1) disagrees with its key (2), as if a
    // buggy copy or replayed write landed under the wrong key.
    let g1 = store.get("catalog.g1").unwrap();
    store.put("catalog.g2", &g1).unwrap();

    // Both modes must refuse the stale manifest and fall back to g1 —
    // this is the crash-atomicity protocol, not damage to a table.
    let db = {
        let (db, report) = Database::open_from_store(&store, OpenMode::Degraded).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.skipped_manifests.len(), 1);
        assert_eq!(report.skipped_manifests[0].0, 2);
        assert!(
            report.skipped_manifests[0].1.contains("stamp"),
            "{}",
            report.skipped_manifests[0].1
        );
        assert!(report.tables.is_empty(), "no table data was touched");
        db
    };
    let (strict_db, strict_report) = Database::open_from_store(&store, OpenMode::Strict).unwrap();
    assert_eq!(strict_report.generation, 1);
    assert_eq!(strict_report.skipped_manifests.len(), 1);
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM cs").unwrap().rows()[0].get(0),
        strict_db.execute("SELECT COUNT(*) FROM cs").unwrap().rows()[0].get(0),
    );
}

/// `sys.row_groups` surfaces quarantined blobs as `QUARANTINED` rows with
/// null sizes (the data is gone — pretending otherwise would be lying),
/// alongside the groups that survived.
#[test]
fn sys_row_groups_surfaces_quarantined_blobs() {
    let mut store = saved_store();
    truncate(&mut store, "g1.cs.rg0");
    let (db, _) = Database::open_from_store(&store, OpenMode::Degraded).unwrap();

    let r = db
        .execute(
            "SELECT table_name, group_id, state, total_rows, bytes \
             FROM sys.row_groups WHERE state = 'QUARANTINED'",
        )
        .unwrap();
    let rows = r.rows();
    assert_eq!(rows.len(), 1, "{rows:?}");
    assert_eq!(rows[0].get(0).to_string(), "cs");
    assert_eq!(rows[0].get(1), &Value::Int64(0), "lost group id is known");
    assert_eq!(
        rows[0].get(3),
        &Value::Null,
        "row count of lost data is null"
    );
    assert_eq!(rows[0].get(4), &Value::Null, "size of lost data is null");

    // The surviving group is still reported as COMPRESSED.
    let r = db
        .execute("SELECT COUNT(*) FROM sys.row_groups WHERE state = 'COMPRESSED'")
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(1));
    // Its segments stay queryable too.
    let r = db
        .execute("SELECT COUNT(*) FROM sys.column_segments")
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(2), "1 group x 2 columns");
}

/// A quarantined table manifest (whole table lost) has no group id to
/// report: `group_id` is null and the generation column still records
/// which generation was opened.
#[test]
fn sys_row_groups_quarantined_manifest_has_null_group() {
    let mut store = saved_store();
    truncate(&mut store, "g1.cs.manifest");
    let (db, _) = Database::open_from_store(&store, OpenMode::Degraded).unwrap();

    let r = db
        .execute("SELECT group_id, generation FROM sys.row_groups WHERE state = 'QUARANTINED'")
        .unwrap();
    assert_eq!(r.rows().len(), 1);
    assert_eq!(r.rows()[0].get(0), &Value::Null);
    assert_eq!(r.rows()[0].get(1), &Value::Int64(1));
}

#[test]
fn clean_store_opens_clean_in_both_modes() {
    let store = saved_store();
    let (_, report) = Database::open_from_store(&store, OpenMode::Degraded).unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.generation, 1);
    let verify = Database::verify_store(&store).unwrap();
    assert!(
        verify.is_clean() && verify.orphaned.is_empty(),
        "{verify:?}"
    );
    assert!(verify.blobs_checked >= 5);
}

/// A database forced read-only by the health state machine keeps serving
/// SELECTs and `sys.*` views while INSERT/UPDATE/DELETE and bulk loads
/// are rejected with an error that names the degradation cause — and a
/// recovery probe restores full service.
#[test]
fn read_only_database_serves_reads_and_rejects_writes_with_cause() {
    let store = saved_store();
    let (db, _report) = Database::open_from_store(&store, OpenMode::Degraded).unwrap();

    db.governor()
        .health()
        .degrade("blob store write failure: disk full (simulated ENOSPC)");

    // Reads — base tables and every introspection view — keep working.
    let r = db.execute("SELECT COUNT(*) FROM cs").unwrap();
    assert_eq!(r.rows()[0].get(0).to_string(), "991");
    for view in cstore::SYS_VIEW_NAMES {
        db.execute(&format!("SELECT COUNT(*) FROM {view}"))
            .unwrap_or_else(|e| panic!("{view} must keep serving: {e}"));
    }
    let r = db
        .execute("SELECT health_state FROM sys.resource_governor")
        .unwrap();
    assert_eq!(r.rows()[0].get(0).to_string(), "READ_ONLY");

    // Every write class is rejected, and the error names the cause.
    for sql in [
        "INSERT INTO cs VALUES (8000, 'nope')",
        "UPDATE cs SET name = 'nope' WHERE id = 100",
        "DELETE FROM cs WHERE id = 100",
        "INSERT INTO hp VALUES (4)",
    ] {
        let msg = db.execute(sql).unwrap_err().to_string();
        assert!(msg.contains("database is read-only"), "{sql}: {msg}");
        assert!(msg.contains("disk full"), "{sql}: {msg}");
    }
    let err = db
        .bulk_load("cs", &[Row::new(vec![Value::Int64(1), Value::Null])])
        .unwrap_err();
    assert!(err.to_string().contains("read-only"), "{err}");

    // Storage is actually fine (no WAL failure, no parked mover, no
    // registered probe): recovery restores writes.
    db.probe_recovery().unwrap();
    db.execute("INSERT INTO cs VALUES (8000, 'yes')").unwrap();
    let r = db.execute("SELECT COUNT(*) FROM cs").unwrap();
    assert_eq!(r.rows()[0].get(0).to_string(), "992");
}
