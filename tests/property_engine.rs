//! Property-based tests on the engine's core invariants.
//!
//! * segment encode/decode is lossless for arbitrary typed data;
//! * predicate evaluation on *encoded* data matches naive row-at-a-time
//!   evaluation (the pushdown correctness invariant);
//! * the archival codec roundtrips arbitrary bytes;
//! * batch-mode and row-mode execution agree on arbitrary filters;
//! * the delete/insert lifecycle preserves the multiset of live rows.

use proptest::prelude::*;

use cstore::common::{DataType, Field, Row, Schema, Value};
use cstore::delta::{ColumnStoreTable, TableConfig};
use cstore::storage::builder::encode_column;
use cstore::storage::pred::{CmpOp, ColumnPred};

fn arb_value(ty: DataType) -> BoxedStrategy<Value> {
    match ty {
        DataType::Int64 => prop_oneof![
            3 => any::<i64>().prop_map(Value::Int64),
            2 => (-50i64..50).prop_map(Value::Int64),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Utf8 => prop_oneof![
            3 => "[a-e]{0,6}".prop_map(Value::str),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Float64 => prop_oneof![
            3 => any::<i32>().prop_map(|x| Value::Float64(x as f64 / 8.0)),
            1 => Just(Value::Null),
        ]
        .boxed(),
        _ => unreachable!(),
    }
}

fn arb_column() -> impl Strategy<Value = (DataType, Vec<Value>)> {
    prop_oneof![
        Just(DataType::Int64),
        Just(DataType::Utf8),
        Just(DataType::Float64),
    ]
    .prop_flat_map(|ty| {
        proptest::collection::vec(arb_value(ty), 0..300).prop_map(move |vs| (ty, vs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segment_roundtrip_is_lossless((ty, values) in arb_column()) {
        let seg = encode_column(ty, &values, None).unwrap();
        prop_assert_eq!(seg.row_count(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&seg.value_at(i), v);
        }
        // Serialization roundtrip too.
        let bytes = cstore::storage::format::serialize_segment(&seg);
        let back = cstore::storage::format::deserialize_segment(&bytes).unwrap();
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&back.value_at(i), v);
        }
    }

    #[test]
    fn pushdown_matches_naive_eval(
        values in proptest::collection::vec(arb_value(DataType::Int64), 1..300),
        k in -60i64..60,
        op_idx in 0usize..6,
    ) {
        let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        let pred = ColumnPred::Cmp { op: ops[op_idx], value: Value::Int64(k) };
        let seg = encode_column(DataType::Int64, &values, None).unwrap();
        let got = seg.eval_pred(&pred).unwrap();
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(got.get(i), pred.matches(v), "row {} = {:?}", i, v);
        }
        // Elimination must never claim a false negative: if any row
        // matches, may_match must be true.
        if got.any() {
            prop_assert!(seg.may_match(&pred));
        }
    }

    #[test]
    fn archival_codec_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let compressed = cstore::storage::archive::compress(&data);
        let back = cstore::storage::archive::decompress(&compressed).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn batch_and_row_filters_agree(
        values in proptest::collection::vec(arb_value(DataType::Int64), 1..200),
        lo in -40i64..0,
        hi in 0i64..40,
    ) {
        use cstore::{Database, ExecMode};
        let mk = |mode| {
            let db = Database::new().with_table_config(TableConfig {
                bulk_load_threshold: 16,
                max_rowgroup_rows: 64,
                ..Default::default()
            }).with_exec_mode(mode);
            db.execute("CREATE TABLE p (v BIGINT)").unwrap();
            let rows: Vec<Row> = values.iter().map(|v| Row::new(vec![v.clone()])).collect();
            db.bulk_load("p", &rows).unwrap();
            db
        };
        let sql = format!("SELECT COUNT(v), COUNT(*) FROM p WHERE v BETWEEN {lo} AND {hi}");
        let b = mk(ExecMode::Batch).execute(&sql).unwrap().rows().to_vec();
        let r = mk(ExecMode::Row).execute(&sql).unwrap().rows().to_vec();
        prop_assert_eq!(&b, &r);
        // And both match a naive count.
        let naive = values.iter().filter(|v| {
            v.as_i64().is_some_and(|x| (lo..=hi).contains(&x))
        }).count() as i64;
        prop_assert_eq!(b[0].get(0), &Value::Int64(naive));
    }

    #[test]
    fn delete_lifecycle_preserves_live_rows(
        n in 1usize..150,
        deletes in proptest::collection::vec(0usize..150, 0..80),
        move_at in 0usize..4,
    ) {
        let schema = Schema::new(vec![Field::not_null("id", DataType::Int64)]);
        let t = ColumnStoreTable::new(schema, TableConfig {
            delta_capacity: 32,
            bulk_load_threshold: 64,
            max_rowgroup_rows: 64,
            ..Default::default()
        });
        let mut rids = Vec::new();
        let mut live: std::collections::BTreeSet<i64> = (0..n as i64).collect();
        for i in 0..n as i64 {
            rids.push(t.insert(Row::new(vec![Value::Int64(i)])).unwrap());
        }
        for (step, &d) in deletes.iter().enumerate() {
            if step == move_at {
                t.close_open_delta();
                t.tuple_move_once().unwrap();
                // Row ids may have changed; re-derive them from a scan.
                rids = t.snapshot().groups().iter().flat_map(|g| {
                    let snap = t.snapshot();
                    let vis = snap.visible_bitmap(g);
                    vis.to_indices().into_iter().map(|tu| {
                        cstore::common::RowId::new(g.id(), tu)
                    }).collect::<Vec<_>>()
                }).chain(t.snapshot().delta_rows().iter().map(|(r, _)| *r)).collect();
            }
            if d < rids.len() {
                let rid = rids[d];
                if let Some(row) = t.get_row(rid).unwrap() {
                    let id = row.get(0).as_i64().unwrap();
                    prop_assert!(t.delete(rid).unwrap());
                    live.remove(&id);
                }
            }
        }
        let seen: std::collections::BTreeSet<i64> = t
            .snapshot()
            .scan_rows()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        let n_live = live.len();
        prop_assert_eq!(seen, live);
        prop_assert_eq!(t.total_rows(), n_live);
        let _ = move_at;
    }
}
