//! Randomized tests on the engine's core invariants.
//!
//! * segment encode/decode is lossless for arbitrary typed data;
//! * predicate evaluation on *encoded* data matches naive row-at-a-time
//!   evaluation (the pushdown correctness invariant);
//! * the archival codec roundtrips arbitrary bytes;
//! * batch-mode and row-mode execution agree on arbitrary filters;
//! * the delete/insert lifecycle preserves the multiset of live rows.
//!
//! Deterministic seeded `Rng` replaces proptest so the suite builds
//! offline; each case runs many independent seeds.

use cstore::common::testutil::Rng;
use cstore::common::{DataType, Field, Row, Schema, Value};
use cstore::delta::{ColumnStoreTable, TableConfig};
use cstore::storage::builder::encode_column;
use cstore::storage::pred::{CmpOp, ColumnPred};

fn random_value(rng: &mut Rng, ty: DataType) -> Value {
    match ty {
        DataType::Int64 => match rng.below(6) {
            0..=2 => Value::Int64(rng.next_u64() as i64),
            3..=4 => Value::Int64(rng.range_i64(-50, 50)),
            _ => Value::Null,
        },
        DataType::Utf8 => {
            if rng.gen_bool(0.25) {
                Value::Null
            } else {
                let len = rng.range_usize(0, 7);
                Value::str(
                    (0..len)
                        .map(|_| ['a', 'b', 'c', 'd', 'e'][rng.range_usize(0, 5)])
                        .collect::<String>(),
                )
            }
        }
        DataType::Float64 => {
            if rng.gen_bool(0.25) {
                Value::Null
            } else {
                Value::Float64(rng.next_u32() as i32 as f64 / 8.0)
            }
        }
        _ => unreachable!("unsupported random type"),
    }
}

fn random_column(rng: &mut Rng) -> (DataType, Vec<Value>) {
    let ty = [DataType::Int64, DataType::Utf8, DataType::Float64][rng.range_usize(0, 3)];
    let n = rng.range_usize(0, 300);
    let vs = (0..n).map(|_| random_value(rng, ty)).collect();
    (ty, vs)
}

#[test]
fn segment_roundtrip_is_lossless() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let (ty, values) = random_column(&mut rng);
        let seg = encode_column(ty, &values, None).unwrap();
        assert_eq!(seg.row_count(), values.len(), "seed {seed}");
        for (i, v) in values.iter().enumerate() {
            assert_eq!(&seg.value_at(i), v, "seed {seed} row {i}");
        }
        // Serialization roundtrip too.
        let bytes = cstore::storage::format::serialize_segment(&seg).unwrap();
        let back = cstore::storage::format::deserialize_segment(&bytes).unwrap();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(&back.value_at(i), v, "seed {seed} row {i}");
        }
    }
}

#[test]
fn pushdown_matches_naive_eval() {
    let ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed ^ 0x9D);
        let n = rng.range_usize(1, 300);
        let values: Vec<Value> = (0..n)
            .map(|_| random_value(&mut rng, DataType::Int64))
            .collect();
        let k = rng.range_i64(-60, 60);
        let op = ops[rng.range_usize(0, ops.len())];
        let pred = ColumnPred::Cmp {
            op,
            value: Value::Int64(k),
        };
        let seg = encode_column(DataType::Int64, &values, None).unwrap();
        let got = seg.eval_pred(&pred).unwrap();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(got.get(i), pred.matches(v), "seed {seed} row {i} = {v:?}");
        }
        // Elimination must never claim a false negative: if any row
        // matches, may_match must be true.
        if got.any() {
            assert!(seg.may_match(&pred), "seed {seed} k {k} op {op:?}");
        }
    }
}

#[test]
fn archival_codec_roundtrips() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed ^ 0xAC);
        let n = rng.range_usize(0, 4096);
        let data: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
        let compressed = cstore::storage::archive::compress(&data);
        let back = cstore::storage::archive::decompress(&compressed).unwrap();
        assert_eq!(back, data, "seed {seed}");
    }
}

#[test]
fn batch_and_row_filters_agree() {
    use cstore::{Database, ExecMode};
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed ^ 0xBF);
        let n = rng.range_usize(1, 200);
        let values: Vec<Value> = (0..n)
            .map(|_| random_value(&mut rng, DataType::Int64))
            .collect();
        let lo = rng.range_i64(-40, 0);
        let hi = rng.range_i64(0, 40);
        let mk = |mode| {
            let db = Database::new()
                .with_table_config(TableConfig {
                    bulk_load_threshold: 16,
                    max_rowgroup_rows: 64,
                    ..Default::default()
                })
                .with_exec_mode(mode);
            db.execute("CREATE TABLE p (v BIGINT)").unwrap();
            let rows: Vec<Row> = values.iter().map(|v| Row::new(vec![v.clone()])).collect();
            db.bulk_load("p", &rows).unwrap();
            db
        };
        let sql = format!("SELECT COUNT(v), COUNT(*) FROM p WHERE v BETWEEN {lo} AND {hi}");
        let b = mk(ExecMode::Batch).execute(&sql).unwrap().rows().to_vec();
        let r = mk(ExecMode::Row).execute(&sql).unwrap().rows().to_vec();
        assert_eq!(&b, &r, "seed {seed}");
        // And both match a naive count.
        let naive = values
            .iter()
            .filter(|v| v.as_i64().is_some_and(|x| (lo..=hi).contains(&x)))
            .count() as i64;
        assert_eq!(b[0].get(0), &Value::Int64(naive), "seed {seed}");
    }
}

#[test]
fn delete_lifecycle_preserves_live_rows() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed ^ 0xDE1);
        let n = rng.range_usize(1, 150);
        let n_deletes = rng.range_usize(0, 80);
        let deletes: Vec<usize> = (0..n_deletes).map(|_| rng.range_usize(0, 150)).collect();
        let move_at = rng.range_usize(0, 4);
        let schema = Schema::new(vec![Field::not_null("id", DataType::Int64)]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                delta_capacity: 32,
                bulk_load_threshold: 64,
                max_rowgroup_rows: 64,
                ..Default::default()
            },
        );
        let mut rids = Vec::new();
        let mut live: std::collections::BTreeSet<i64> = (0..n as i64).collect();
        for i in 0..n as i64 {
            rids.push(t.insert(Row::new(vec![Value::Int64(i)])).unwrap());
        }
        for (step, &d) in deletes.iter().enumerate() {
            if step == move_at {
                t.close_open_delta();
                t.tuple_move_once().unwrap();
                // Row ids may have changed; re-derive them from a scan.
                rids = t
                    .snapshot()
                    .groups()
                    .iter()
                    .flat_map(|g| {
                        let snap = t.snapshot();
                        let vis = snap.visible_bitmap(g);
                        vis.to_indices()
                            .into_iter()
                            .map(|tu| cstore::common::RowId::new(g.id(), tu))
                            .collect::<Vec<_>>()
                    })
                    .chain(t.snapshot().delta_rows().iter().map(|(r, _)| *r))
                    .collect();
            }
            if d < rids.len() {
                let rid = rids[d];
                if let Some(row) = t.get_row(rid).unwrap() {
                    let id = row.get(0).as_i64().unwrap();
                    assert!(t.delete(rid).unwrap(), "seed {seed} step {step}");
                    live.remove(&id);
                }
            }
        }
        let seen: std::collections::BTreeSet<i64> = t
            .snapshot()
            .scan_rows()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        let n_live = live.len();
        assert_eq!(seen, live, "seed {seed}");
        assert_eq!(t.total_rows(), n_live, "seed {seed}");
    }
}
