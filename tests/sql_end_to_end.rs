//! End-to-end SQL behavior over the whole stack (parser → binder →
//! optimizer → batch/row execution → columnstore/delta storage).

use cstore::common::{Row, Value};
use cstore::delta::TableConfig;
use cstore::{Database, ExecMode};

fn small_db() -> Database {
    Database::new().with_table_config(TableConfig {
        delta_capacity: 64,
        bulk_load_threshold: 128,
        max_rowgroup_rows: 256,
        ..Default::default()
    })
}

fn setup() -> Database {
    let db = small_db();
    db.execute(
        "CREATE TABLE t (id BIGINT NOT NULL, grp VARCHAR NOT NULL, \
         val INT, price DECIMAL(8, 2), flag BOOL NOT NULL, d DATE NOT NULL)",
    )
    .unwrap();
    let rows: Vec<Row> = (0..1000)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i),
                Value::str(["red", "green", "blue"][(i % 3) as usize]),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Int32((i % 100) as i32)
                },
                Value::Decimal(i * 7 % 10_000),
                Value::Bool(i % 2 == 0),
                Value::Date((i / 10) as i32),
            ])
        })
        .collect();
    db.bulk_load("t", &rows).unwrap();
    db
}

#[test]
fn predicates_cover_all_types() {
    let db = setup();
    let count = |sql: &str| -> i64 { db.execute(sql).unwrap().rows()[0].get(0).as_i64().unwrap() };
    assert_eq!(count("SELECT COUNT(*) FROM t"), 1000);
    assert_eq!(count("SELECT COUNT(*) FROM t WHERE id < 10"), 10);
    assert_eq!(count("SELECT COUNT(*) FROM t WHERE grp = 'red'"), 334);
    assert_eq!(count("SELECT COUNT(*) FROM t WHERE val IS NULL"), 91);
    assert_eq!(
        count("SELECT COUNT(*) FROM t WHERE val IS NOT NULL"),
        1000 - 91
    );
    assert_eq!(count("SELECT COUNT(*) FROM t WHERE flag = TRUE"), 500);
    assert_eq!(
        count("SELECT COUNT(*) FROM t WHERE d BETWEEN 10 AND 19"),
        100
    );
    assert_eq!(
        count("SELECT COUNT(*) FROM t WHERE grp IN ('red', 'blue')"),
        667
    );
    assert_eq!(
        count("SELECT COUNT(*) FROM t WHERE NOT (grp = 'red' OR grp = 'blue')"),
        333
    );
    // Decimal literal coerces to the column scale: price < 1.00 means
    // mantissa < 100; mantissas are i*7 % 10000.
    let expect = (0..1000).filter(|i| i * 7 % 10_000 < 100).count() as i64;
    assert_eq!(count("SELECT COUNT(*) FROM t WHERE price < 1.00"), expect);
}

#[test]
fn three_valued_logic_matches_sql() {
    let db = setup();
    // val > 50 OR val <= 50 is NOT a tautology under NULLs.
    let r = db
        .execute("SELECT COUNT(*) FROM t WHERE val > 50 OR val <= 50")
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(1000 - 91));
}

#[test]
fn arithmetic_and_projection() {
    let db = setup();
    let r = db
        .execute("SELECT id, id * 2 + 1 AS x, val / 10 AS v FROM t WHERE id = 21")
        .unwrap();
    assert_eq!(r.rows()[0].get(1), &Value::Int64(43));
    assert_eq!(r.rows()[0].get(2), &Value::Int64(2));
}

#[test]
fn group_by_having_order_limit() {
    let db = setup();
    let r = db
        .execute(
            "SELECT grp, COUNT(*) AS n, MIN(id) AS lo, MAX(id) AS hi \
             FROM t WHERE id < 300 GROUP BY grp \
             HAVING COUNT(*) > 10 ORDER BY grp ASC LIMIT 2",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 2);
    assert_eq!(r.rows()[0].get(0), &Value::str("blue"));
    assert_eq!(r.rows()[0].get(1), &Value::Int64(100));
    assert_eq!(r.rows()[0].get(2), &Value::Int64(2));
    assert_eq!(r.rows()[0].get(3), &Value::Int64(299));
}

#[test]
fn aggregates_handle_nulls_and_decimals() {
    let db = setup();
    let r = db
        .execute("SELECT COUNT(val), SUM(val), AVG(price), SUM(price) FROM t WHERE id < 22")
        .unwrap();
    // ids 0 and 11 have NULL val.
    assert_eq!(r.rows()[0].get(0), &Value::Int64(20));
    let sum: i64 = (0..22).filter(|i| i % 11 != 0).map(|i| i % 100).sum();
    assert_eq!(r.rows()[0].get(1), &Value::Int64(sum));
    // AVG over decimals scales down by 10^2.
    let mantissas: Vec<i64> = (0..22).map(|i| i * 7 % 10_000).collect();
    let avg = mantissas.iter().sum::<i64>() as f64 / mantissas.len() as f64 / 100.0;
    assert_eq!(r.rows()[0].get(2), &Value::Float64(avg));
    assert_eq!(
        r.rows()[0].get(3),
        &Value::Decimal(mantissas.iter().sum::<i64>())
    );
}

#[test]
fn every_join_type_over_sql() {
    let db = small_db();
    db.execute("CREATE TABLE l (k BIGINT NOT NULL, tag VARCHAR NOT NULL)")
        .unwrap();
    db.execute("CREATE TABLE r (k BIGINT NOT NULL, name VARCHAR NOT NULL)")
        .unwrap();
    db.execute("INSERT INTO l VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    db.execute("INSERT INTO r VALUES (2, 'two'), (3, 'three'), (4, 'four')")
        .unwrap();
    let count = |sql: &str| db.execute(sql).unwrap().rows().len();
    assert_eq!(count("SELECT * FROM l JOIN r ON l.k = r.k"), 2);
    assert_eq!(count("SELECT * FROM l LEFT JOIN r ON l.k = r.k"), 3);
    assert_eq!(count("SELECT * FROM l RIGHT JOIN r ON l.k = r.k"), 3);
    assert_eq!(count("SELECT * FROM l FULL OUTER JOIN r ON l.k = r.k"), 4);
    assert_eq!(count("SELECT * FROM l LEFT SEMI JOIN r ON l.k = r.k"), 2);
    assert_eq!(count("SELECT * FROM l LEFT ANTI JOIN r ON l.k = r.k"), 1);
    // Outer join null-extends.
    let r = db
        .execute("SELECT l.tag, r.name FROM l LEFT JOIN r ON l.k = r.k ORDER BY tag")
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::str("a"));
    assert_eq!(r.rows()[0].get(1), &Value::Null);
}

#[test]
fn batch_and_row_mode_agree_across_query_shapes() {
    let sqls = [
        "SELECT COUNT(*) FROM t WHERE val > 50 AND flag = TRUE",
        "SELECT grp, SUM(val) AS s FROM t GROUP BY grp ORDER BY grp",
        "SELECT id, price FROM t WHERE d = 5 ORDER BY id DESC LIMIT 4",
        "SELECT grp, COUNT(val) AS c FROM t WHERE id BETWEEN 100 AND 700 GROUP BY grp ORDER BY c DESC",
    ];
    let batch = setup().with_exec_mode(ExecMode::Batch);
    let row = setup().with_exec_mode(ExecMode::Row);
    for sql in sqls {
        let mut a = batch.execute(sql).unwrap().rows().to_vec();
        let mut b = row.execute(sql).unwrap().rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "modes disagree on: {sql}");
    }
}

#[test]
fn results_consistent_across_storage_lifecycle() {
    // The same logical table must answer identically as rows move:
    // delta-only → mixed → compressed → archived.
    let db = small_db();
    db.execute("CREATE TABLE lc (id BIGINT NOT NULL, v BIGINT NOT NULL)")
        .unwrap();
    for i in 0..200i64 {
        db.execute(&format!("INSERT INTO lc VALUES ({i}, {})", i * 3))
            .unwrap();
    }
    let q = "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM lc WHERE id >= 50";
    let baseline = db.execute(q).unwrap().rows().to_vec();
    db.tuple_move("lc").unwrap(); // compress closed deltas
    assert_eq!(db.execute(q).unwrap().rows(), baseline, "after tuple move");
    db.archive_table("lc").unwrap();
    assert_eq!(db.execute(q).unwrap().rows(), baseline, "after archive");
}

#[test]
fn errors_surface_with_context() {
    let db = setup();
    let err = db.execute("SELECT nope FROM t").unwrap_err();
    assert!(err.to_string().contains("nope"));
    let err = db.execute("SELECT * FROM t WHERE grp > 5").unwrap_err();
    assert!(err.to_string().contains("compare"), "{err}");
    let err = db
        .execute("SELECT grp, SUM(id) FROM t GROUP BY grp ORDER BY missing")
        .unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");
}

#[test]
fn distinct_and_count_distinct() {
    let db = setup();
    let r = db
        .execute("SELECT DISTINCT grp FROM t ORDER BY grp")
        .unwrap();
    let got: Vec<&str> = r
        .rows()
        .iter()
        .map(|x| x.get(0).as_str().unwrap())
        .collect();
    assert_eq!(got, vec!["blue", "green", "red"]);
    let r = db
        .execute("SELECT COUNT(DISTINCT grp), COUNT(DISTINCT val), COUNT(val) FROM t")
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(3));
    assert_eq!(r.rows()[0].get(1), &Value::Int64(100));
    assert_eq!(r.rows()[0].get(2), &Value::Int64(909));
    // Grouped COUNT(DISTINCT).
    let r = db
        .execute("SELECT grp, COUNT(DISTINCT d) AS days FROM t GROUP BY grp ORDER BY grp")
        .unwrap();
    assert_eq!(r.rows()[0].get(1), &Value::Int64(100));
    // Batch and row modes agree.
    let row = setup().with_exec_mode(ExecMode::Row);
    let a = db.execute("SELECT COUNT(DISTINCT val) FROM t").unwrap();
    let b = row.execute("SELECT COUNT(DISTINCT val) FROM t").unwrap();
    assert_eq!(a.rows(), b.rows());
}

#[test]
fn union_all_concatenates_and_orders() {
    let db = setup();
    let r = db
        .execute(
            "SELECT id, grp FROM t WHERE id < 2 \
             UNION ALL SELECT id, grp FROM t WHERE id BETWEEN 500 AND 501 \
             UNION ALL SELECT id, grp FROM t WHERE id > 997 \
             ORDER BY id DESC LIMIT 5",
        )
        .unwrap();
    let ids: Vec<i64> = r
        .rows()
        .iter()
        .map(|x| x.get(0).as_i64().unwrap())
        .collect();
    assert_eq!(ids, vec![999, 998, 501, 500, 1]);
    // Mismatched branch schemas rejected.
    assert!(db
        .execute("SELECT id FROM t UNION ALL SELECT grp FROM t")
        .is_err());
    // ORDER BY on a non-final branch rejected.
    assert!(db
        .execute("SELECT id FROM t ORDER BY id UNION ALL SELECT id FROM t")
        .is_err());
}

#[test]
fn analyze_improves_skewed_estimates() {
    let db = small_db();
    db.execute("CREATE TABLE skew (k BIGINT NOT NULL)").unwrap();
    // 90% zeros, tail spread to 1e6.
    let rows: Vec<Row> = (0..5000)
        .map(|i| Row::new(vec![Value::Int64(if i % 10 < 9 { 0 } else { i * 200 })]))
        .collect();
    db.bulk_load("skew", &rows).unwrap();
    let estimate = |db: &Database| -> f64 {
        let cstore::QueryResult::Explain(text) = db
            .execute("EXPLAIN SELECT COUNT(*) FROM skew WHERE k = 0")
            .unwrap()
        else {
            panic!()
        };
        // Scan line reads "... (~N rows)".
        let line = text.lines().find(|l| l.contains("Scan skew")).unwrap();
        let n = line.split("(~").nth(1).unwrap();
        n.split(' ').next().unwrap().parse().unwrap()
    };
    let before = estimate(&db);
    db.execute("ANALYZE skew").unwrap();
    let after = estimate(&db);
    // Truth: 4500 rows have k = 0. The uniform estimate is tiny; the
    // histogram one should be within 2x of the truth.
    assert!(before < 500.0, "uniform estimate {before}");
    assert!(
        (2250.0..=9000.0).contains(&after),
        "histogram estimate {after}"
    );
}

#[test]
fn count_star_over_multi_join_with_reordering() {
    // Regression: COUNT(*) above a reordered join chain's compensating
    // projection used to prune the projection to zero columns and crash.
    let db = Database::new();
    cstore::workload::StarSchema::scale(5000)
        .load_into(&db)
        .unwrap();
    let r = db
        .execute(
            "SELECT COUNT(*) FROM sales s \
             JOIN customer c ON s.cust_key = c.cust_key \
             JOIN product p ON s.prod_key = p.prod_key",
        )
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(5000));
}

#[test]
fn like_predicates_with_prefix_pushdown() {
    let db = setup();
    // grp values: red/green/blue.
    let count = |sql: &str| -> i64 { db.execute(sql).unwrap().rows()[0].get(0).as_i64().unwrap() };
    assert_eq!(count("SELECT COUNT(*) FROM t WHERE grp LIKE 'gr%'"), 333);
    assert_eq!(count("SELECT COUNT(*) FROM t WHERE grp LIKE '%ee%'"), 333);
    assert_eq!(count("SELECT COUNT(*) FROM t WHERE grp LIKE 'r_d'"), 334);
    assert_eq!(
        count("SELECT COUNT(*) FROM t WHERE grp NOT LIKE 'gr%'"),
        667
    );
    assert_eq!(count("SELECT COUNT(*) FROM t WHERE grp LIKE 'z%'"), 0);
    // The prefix becomes a pushed range on the scan.
    let cstore::QueryResult::Explain(text) = db
        .execute("EXPLAIN SELECT COUNT(*) FROM t WHERE grp LIKE 'gr%'")
        .unwrap()
    else {
        panic!()
    };
    assert!(text.contains("pushed="), "{text}");
    assert!(text.contains(">= gr"), "{text}");
    // Batch and row modes agree.
    let row = setup().with_exec_mode(ExecMode::Row);
    for sql in [
        "SELECT COUNT(*) FROM t WHERE grp LIKE '%e%'",
        "SELECT COUNT(*) FROM t WHERE grp LIKE 'b%e'",
    ] {
        assert_eq!(
            db.execute(sql).unwrap().rows(),
            row.execute(sql).unwrap().rows(),
            "{sql}"
        );
    }
    // LIKE on a non-string column is a bind error.
    assert!(db.execute("SELECT * FROM t WHERE id LIKE '1%'").is_err());
}

#[test]
fn join_null_payload_columns_survive() {
    // Build-side columns with NULLs must gather correctly through the
    // typed join output (null bitmaps, not sentinel values).
    let db = small_db();
    db.execute("CREATE TABLE f (k BIGINT NOT NULL)").unwrap();
    db.execute("CREATE TABLE d (k BIGINT NOT NULL, label VARCHAR, score DOUBLE, n INT)")
        .unwrap();
    db.execute("INSERT INTO f VALUES (1), (2), (3)").unwrap();
    db.execute(
        "INSERT INTO d VALUES (1, 'one', 1.5, 10), (2, NULL, NULL, NULL), (3, 'three', NULL, 30)",
    )
    .unwrap();
    let r = db
        .execute("SELECT f.k, d.label, d.score, d.n FROM f JOIN d ON f.k = d.k ORDER BY k")
        .unwrap();
    assert_eq!(r.rows()[0].get(1), &Value::str("one"));
    assert_eq!(r.rows()[1].get(1), &Value::Null);
    assert_eq!(r.rows()[1].get(2), &Value::Null);
    assert_eq!(r.rows()[1].get(3), &Value::Null);
    assert_eq!(r.rows()[2].get(2), &Value::Null);
    assert_eq!(r.rows()[2].get(3), &Value::Int32(30));
    // Aggregates over the (nullable) joined columns respect the NULLs.
    let r = db
        .execute("SELECT COUNT(d.label), COUNT(d.n) FROM f JOIN d ON f.k = d.k")
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(2));
    assert_eq!(r.rows()[0].get(1), &Value::Int64(2));
}

#[test]
fn snowflake_join_keys_block_reordering() {
    // When a join key comes from an earlier dimension (snowflake), the
    // star-reorder rule must leave the chain alone and still answer right.
    let db = small_db();
    db.execute("CREATE TABLE fact (a BIGINT NOT NULL)").unwrap();
    db.execute("CREATE TABLE dim1 (a BIGINT NOT NULL, b BIGINT NOT NULL)")
        .unwrap();
    db.execute("CREATE TABLE dim2 (b BIGINT NOT NULL, name VARCHAR NOT NULL)")
        .unwrap();
    for i in 0..100 {
        db.execute(&format!("INSERT INTO fact VALUES ({i})"))
            .unwrap();
    }
    for i in 0..10 {
        db.execute(&format!("INSERT INTO dim1 VALUES ({i}, {})", i % 3))
            .unwrap();
    }
    for i in 0..3 {
        db.execute(&format!("INSERT INTO dim2 VALUES ({i}, 'd{i}')"))
            .unwrap();
    }
    let r = db
        .execute(
            "SELECT dim2.name, COUNT(*) AS n FROM fact \
             JOIN dim1 ON fact.a = dim1.a \
             JOIN dim2 ON dim1.b = dim2.b \
             GROUP BY dim2.name ORDER BY name",
        )
        .unwrap();
    let total: i64 = r.rows().iter().map(|x| x.get(1).as_i64().unwrap()).sum();
    assert_eq!(total, 10, "only fact rows 0..10 have dim1 matches");
}

#[test]
fn having_supports_between_in_like_over_keys() {
    let db = setup();
    let r = db
        .execute(
            "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp \
             HAVING grp LIKE '%e%' AND COUNT(*) BETWEEN 1 AND 100000 \
             AND grp IN ('red', 'green', 'blue') ORDER BY grp",
        )
        .unwrap();
    let names: Vec<&str> = r
        .rows()
        .iter()
        .map(|x| x.get(0).as_str().unwrap())
        .collect();
    assert_eq!(names, vec!["blue", "green", "red"]);
}

/// Satellite: `SET query_timeout_ms` bounds query wall time. An absurdly
/// tight deadline aborts a heavy query with a clean SQL error; `SET
/// query_timeout_ms = 0` clears the bound; bad options and values are
/// rejected at the statement level.
#[test]
fn set_query_timeout_aborts_slow_queries_cleanly() {
    let db = setup();
    // A self-join fans out to ~10^6 probe rows — plenty of operator
    // boundaries for the deadline check to fire at.
    let heavy = "SELECT COUNT(*) FROM t a JOIN t b ON a.grp = b.grp";

    db.execute("SET query_timeout_ms = 1").unwrap();
    let err = db.execute(heavy).unwrap_err();
    assert!(
        err.to_string().contains("query timeout exceeded"),
        "expected a clean timeout error, got: {err}"
    );

    // Zero clears the deadline; the same query now completes.
    db.execute("SET query_timeout_ms = 0").unwrap();
    let rows = db.execute(heavy).unwrap();
    assert!(rows.rows()[0].get(0).as_i64().unwrap() > 0);

    // A generous deadline does not fire on a fast query.
    db.execute("SET query_timeout_ms = 60000").unwrap();
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(1000));

    assert!(db.execute("SET no_such_option = 1").is_err());
    assert!(db.execute("SET query_timeout_ms = -5").is_err());
}
