//! Multi-statement transactions: snapshot isolation, atomic rollback,
//! write-write conflict detection — including under a racing tuple mover
//! that renumbers row ids while transactions are open.
//!
//! The contract under test: a transaction reads a stable BEGIN-time view
//! and never blocks readers or writers; of two transactions writing the
//! same row, exactly one commits; a failed statement inside a transaction
//! leaves no partial effects and poisons the transaction until ROLLBACK.

use cstore::common::Value;
use cstore::delta::TableConfig;
use cstore::{Database, QueryResult, TableEntry, TxnAck};

/// Tiny delta stores so the tuple mover always has closed stores to
/// compress underneath open transactions.
fn make_db() -> Database {
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 16,
        bulk_load_threshold: 1 << 30,
        max_rowgroup_rows: 1 << 20,
        ..TableConfig::default()
    });
    db.execute("CREATE TABLE acct (id BIGINT NOT NULL, bal BIGINT NOT NULL)")
        .unwrap();
    for base in (0..100i64).step_by(10) {
        let values = (base..base + 10)
            .map(|i| format!("({i}, 1000)"))
            .collect::<Vec<_>>()
            .join(", ");
        db.execute(&format!("INSERT INTO acct VALUES {values}"))
            .unwrap();
    }
    db
}

fn count(db: &Database, sql: &str) -> i64 {
    db.execute(sql).unwrap().rows()[0].get(0).as_i64().unwrap()
}

fn compress(db: &Database) {
    let TableEntry::ColumnStore(t) = db.catalog().get("acct").unwrap() else {
        panic!("acct is a columnstore");
    };
    t.close_open_delta();
    assert!(db.tuple_move("acct").unwrap() > 0, "mover must compress");
}

/// Two sessions with overlapping transactions while the tuple mover
/// compresses the delta store underneath them: both keep their BEGIN-time
/// view, disjoint writes both commit, and a write to the other session's
/// locked row aborts exactly the second writer.
#[test]
fn interleaved_transactions_survive_tuple_mover_compression() {
    let db = make_db();
    let a = db.new_session();
    let b = db.new_session();

    a.execute("BEGIN").unwrap();
    b.execute("BEGIN").unwrap();
    // Pin both snapshots with a read, then renumber every rid.
    assert_eq!(count(&a, "SELECT COUNT(*) FROM acct"), 100);
    assert_eq!(count(&b, "SELECT COUNT(*) FROM acct"), 100);
    compress(&db);

    // Disjoint writes against pre-move rids.
    a.execute("UPDATE acct SET bal = 2000 WHERE id < 5")
        .unwrap();
    b.execute("UPDATE acct SET bal = 3000 WHERE id >= 95")
        .unwrap();

    // Snapshot stability: each side sees its own writes but not the
    // other's, and untouched rows keep their BEGIN-time value.
    assert_eq!(count(&a, "SELECT COUNT(*) FROM acct WHERE bal = 2000"), 5);
    assert_eq!(count(&a, "SELECT COUNT(*) FROM acct WHERE bal = 3000"), 0);
    assert_eq!(count(&b, "SELECT COUNT(*) FROM acct WHERE bal = 2000"), 0);
    assert_eq!(count(&b, "SELECT COUNT(*) FROM acct WHERE bal = 3000"), 5);
    let r = a.execute("SELECT bal FROM acct WHERE id = 50").unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(1000));

    // B touches a row A already write-locked: immediate conflict, B is
    // poisoned and must roll back — exactly one of the two commits.
    let err = b
        .execute("UPDATE acct SET bal = 0 WHERE id = 2")
        .unwrap_err();
    assert_eq!(err.code(), "CONFLICT");
    assert!(matches!(
        b.execute("ROLLBACK").unwrap(),
        QueryResult::Txn(TxnAck::RolledBack)
    ));
    assert!(matches!(
        a.execute("COMMIT").unwrap(),
        QueryResult::Txn(TxnAck::Committed)
    ));

    // Only A's writes survive; nothing was lost or duplicated.
    assert_eq!(count(&db, "SELECT COUNT(*) FROM acct"), 100);
    assert_eq!(count(&db, "SELECT COUNT(*) FROM acct WHERE bal = 2000"), 5);
    assert_eq!(count(&db, "SELECT COUNT(*) FROM acct WHERE bal = 3000"), 0);
    assert!(db.txns().counters().conflicts >= 1);
}

/// The lock-free window: B's snapshot predates A's commit, but B's write
/// lands *after* A released its row lock. Statement-time lock checks see
/// nothing; the stale write must still be caught at commit time by the
/// value-verified delete — the first committer wins, the second aborts.
/// A mover pass between the two commits renumbers A's new row version,
/// so the check also survives rid churn.
#[test]
fn conflict_detection_survives_rid_renumbering() {
    let db = make_db();
    let a = db.new_session();
    let b = db.new_session();

    a.execute("BEGIN").unwrap();
    b.execute("BEGIN").unwrap();
    // Pin B's snapshot before A commits.
    assert_eq!(count(&b, "SELECT COUNT(*) FROM acct"), 100);

    a.execute("UPDATE acct SET bal = 1111 WHERE id = 2")
        .unwrap();
    a.execute("COMMIT").unwrap();
    compress(&db);

    // A's lock is gone and B's snapshot still shows the old row, so this
    // statement succeeds — the conflict is only discoverable at COMMIT.
    b.execute("UPDATE acct SET bal = 2222 WHERE id = 2")
        .unwrap();
    let err = b.execute("COMMIT").unwrap_err();
    assert_eq!(err.code(), "CONFLICT", "{err}");
    assert!(!b.in_transaction());

    let r = db.execute("SELECT bal FROM acct WHERE id = 2").unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(1111));
    assert_eq!(count(&db, "SELECT COUNT(*) FROM acct"), 100);
    // The loser is visible as ABORTED with a recorded reason.
    assert!(
        count(
            &db,
            "SELECT COUNT(*) FROM sys.transactions WHERE state = 'ABORTED'"
        ) >= 1
    );
}

/// A failed statement inside a transaction (here: a multi-row INSERT that
/// trips NOT NULL mid-batch) must leave no partial rows visible anywhere
/// and poison the transaction into an abort-only state.
#[test]
fn failed_statement_poisons_and_leaves_no_partial_rows() {
    let db = make_db();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO acct VALUES (500, 1)").unwrap();
    let err = db
        .execute("INSERT INTO acct VALUES (501, 2), (502, NULL), (503, 4)")
        .unwrap_err();
    assert!(err.to_string().contains("NULL"), "{err}");

    // Poisoned: reads and writes are rejected until ROLLBACK.
    for sql in [
        "SELECT COUNT(*) FROM acct",
        "INSERT INTO acct VALUES (504, 5)",
    ] {
        let msg = db.execute(sql).unwrap_err().to_string();
        assert!(msg.contains("ROLLBACK required"), "{sql}: {msg}");
    }
    db.execute("ROLLBACK").unwrap();

    // Nothing from the transaction — not even the pre-failure statement's
    // rows, since it was rolled back — and no half of the failed batch.
    assert_eq!(count(&db, "SELECT COUNT(*) FROM acct WHERE id >= 500"), 0);
    assert_eq!(count(&db, "SELECT COUNT(*) FROM acct"), 100);
}

/// A `query_timeout_ms` expiry inside an open transaction is a statement
/// failure like any other: the transaction is poisoned, COMMIT refuses
/// and rolls back, and none of the buffered writes survive.
#[test]
fn query_timeout_inside_transaction_poisons_it() {
    let db = make_db();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO acct VALUES (600, 9)").unwrap();
    db.execute("SET query_timeout_ms = 1").unwrap();
    // ~10^4 probe rows through the join give the deadline check plenty of
    // operator boundaries to fire at.
    let err = db
        .execute("SELECT COUNT(*) FROM acct a JOIN acct b ON a.bal = b.bal")
        .unwrap_err();
    assert!(err.to_string().contains("query timeout exceeded"), "{err}");

    // COMMIT on the poisoned transaction rolls back and reports why.
    let msg = db.execute("COMMIT").unwrap_err().to_string();
    assert!(msg.contains("rolled back"), "{msg}");
    assert!(!db.in_transaction());

    db.execute("SET query_timeout_ms = 0").unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM acct WHERE id = 600"), 0);
    // The session is fully usable again.
    db.execute("INSERT INTO acct VALUES (601, 9)").unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM acct WHERE id = 601"), 1);
}

/// Open transactions are visible across sessions through
/// `sys.transactions`, and the query log records rollback and conflict
/// outcomes distinctly from errors.
#[test]
fn transaction_outcomes_are_observable() {
    let db = make_db();
    let a = db.new_session();
    a.execute("BEGIN").unwrap();
    a.execute("INSERT INTO acct VALUES (700, 1)").unwrap();

    let r = db
        .execute(
            "SELECT state, statements, write_ops FROM sys.transactions \
             WHERE state = 'ACTIVE'",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 1);
    assert_eq!(r.rows()[0].get(1), &Value::Int64(1));
    assert_eq!(r.rows()[0].get(2), &Value::Int64(1));

    a.execute("ROLLBACK").unwrap();
    assert_eq!(
        count(
            &db,
            "SELECT COUNT(*) FROM sys.transactions WHERE state = 'ACTIVE'"
        ),
        0
    );
    assert!(
        count(
            &a,
            "SELECT COUNT(*) FROM sys.query_log WHERE status = 'ROLLBACK'"
        ) >= 1
    );
    // Rollbacks count as failures in the query store, not successes.
    let r = a
        .execute("SELECT failures FROM sys.query_store WHERE query_shape = 'rollback'")
        .unwrap();
    assert_eq!(r.rows().len(), 1);
    assert!(r.rows()[0].get(0).as_i64().unwrap() >= 1);
}
