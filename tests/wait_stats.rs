//! Wait-statistics and Query Store suite: attribution of blocking time
//! to the query that waited, the `sys.wait_stats` / `sys.query_store`
//! views, the EXPLAIN ANALYZE wait footer, and Query Store persistence.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cstore::common::{Row, Value};
use cstore::delta::{TableConfig, WalOptions};
use cstore::sql::query_shape;
use cstore::storage::blob::MemBlobStore;
use cstore::storage::MemLogStore;
use cstore::{Database, OpenMode, QueryResult};

fn small_db() -> Database {
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 100,
        bulk_load_threshold: 500,
        max_rowgroup_rows: 1000,
        ..TableConfig::default()
    });
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, v BIGINT NOT NULL)")
        .unwrap();
    let rows: Vec<Row> = (0..2000)
        .map(|i| Row::new(vec![Value::Int64(i), Value::Int64(i % 7)]))
        .collect();
    db.bulk_load("t", &rows).unwrap();
    db
}

/// Aggregate (count, total_ns) of one wait class for `sql`'s shape
/// across every Query Store interval; `None` if the shape never ran.
fn shape_wait(db: &Database, sql: &str, class: &str) -> Option<(u64, u64)> {
    let hash = query_shape(sql).hash;
    let mut seen = false;
    let (mut count, mut total) = (0u64, 0u64);
    for iv in db.query_store().snapshot() {
        if let Some(agg) = iv.shapes.get(&hash) {
            seen = true;
            if let Some(w) = agg.waits.get(class) {
                count += w.count;
                total += w.total_ns;
            }
        }
    }
    seen.then_some((count, total))
}

/// Regression: time queued at the admission gate is charged to the
/// *queued* query's wait frame — not to whatever query holds the slot —
/// because `Database::execute` installs the frame before calling
/// `admit_query`.
#[test]
fn admission_wait_attributed_to_queued_query() {
    let db = Arc::new(small_db());
    db.execute("SET max_concurrent_queries = 1").unwrap();
    db.execute("SET admission_timeout_ms = 30000").unwrap();
    // Control: with the gate free this query is admitted on the fast
    // path and must record no ADMISSION wait.
    let control = "SELECT COUNT(*) FROM t WHERE id >= 0";
    db.execute(control).unwrap();

    // Occupy the only slot, then run a query that has to queue.
    let permit = db.governor().admit_query().unwrap();
    let queued_sql = "SELECT COUNT(*) FROM t";
    let h = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || db.execute(queued_sql).unwrap())
    };
    std::thread::sleep(Duration::from_millis(80));
    drop(permit);
    h.join().unwrap();

    let (n, total) = shape_wait(&db, queued_sql, "ADMISSION").expect("queued shape recorded");
    assert!(n >= 1, "queued query must record an ADMISSION wait");
    assert!(
        total >= 40_000_000,
        "ADMISSION wait should cover most of the 80ms the slot was held, got {total}ns"
    );
    let (cn, ct) = shape_wait(&db, control, "ADMISSION").expect("control shape recorded");
    assert_eq!(
        (cn, ct),
        (0, 0),
        "fast-path admission must not record a wait"
    );
}

/// Regression: a committer parked until the WAL flusher thread makes its
/// LSN durable records WAL_COMMIT on *its own* frame. In group mode the
/// fsync always happens on the dedicated flusher thread, so every one of
/// the 16 writers here is parked on another thread's flush. Also the
/// acceptance check: the per-shape WAL_COMMIT total stays within an
/// order of magnitude of wall-clock commit latency.
#[test]
fn wal_commit_wait_attributed_to_committers() {
    let mut db = Database::new();
    db.execute("CREATE TABLE w (id BIGINT NOT NULL)").unwrap();
    db.attach_wal_store(
        Box::new(MemLogStore::new()),
        WalOptions {
            segment_bytes: 1 << 16,
            strict: true,
        },
        None,
    )
    .unwrap();
    db.execute("SET wal_sync = group").unwrap();
    let db = Arc::new(db);

    const WRITERS: usize = 16;
    const PER_WRITER: i64 = 25;
    let started = Instant::now();
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    db.execute(&format!("INSERT INTO w VALUES ({})", w as i64 * 1000 + i))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let wall = started.elapsed();

    let insert_shape = "INSERT INTO w VALUES (1)"; // same shape as every insert
    let (n, total) = shape_wait(&db, insert_shape, "WAL_COMMIT").expect("insert shape recorded");
    assert!(n >= 1, "group-committed inserts must record WAL_COMMIT");
    assert!(total > 0);
    // Order-of-magnitude sanity: the summed wait cannot exceed every
    // writer spending the whole wall-clock parked (plus slack for timer
    // coarseness).
    let upper = (WRITERS as u128) * wall.as_nanos() * 10;
    assert!(
        (total as u128) <= upper,
        "WAL_COMMIT total {total}ns exceeds {WRITERS} writers x wall {wall:?}"
    );

    // A read-only query on the same database never touches the WAL.
    let select = "SELECT COUNT(*) FROM w";
    db.execute(select).unwrap();
    let (sn, st) = shape_wait(&db, select, "WAL_COMMIT").expect("select shape recorded");
    assert_eq!((sn, st), (0, 0), "reads must not be charged WAL_COMMIT");

    // The global view surfaces the same activity.
    let rows = db
        .execute(
            "SELECT wait_count, total_wait_ns FROM sys.wait_stats \
             WHERE wait_class = 'WAL_COMMIT'",
        )
        .unwrap();
    let row = &rows.rows()[0];
    let Value::Int64(global_count) = row.get(0) else {
        panic!("wait_count not an int: {row:?}");
    };
    assert!(
        *global_count >= n as i64,
        "global WAL_COMMIT count {global_count} below per-shape count {n}"
    );
}

/// EXPLAIN ANALYZE on a memory-starved (spilling) join prints the wait
/// footer and it includes SPILL_IO.
#[test]
fn explain_analyze_spilling_join_reports_spill_io_wait() {
    use cstore::exec::ExecContext;
    use cstore::workload::StarSchema;
    let db = Database::new()
        .with_exec_mode(cstore::ExecMode::Batch)
        .with_exec_context(ExecContext::default().with_budget(16 << 10));
    StarSchema::scale(50_000).load_into(&db).unwrap();
    let r = db
        .execute(
            "EXPLAIN ANALYZE SELECT c.region, COUNT(*) AS n FROM sales s \
             JOIN customer c ON s.cust_key = c.cust_key GROUP BY c.region",
        )
        .unwrap();
    let QueryResult::Explain(text) = r else {
        panic!("expected explain output");
    };
    assert!(text.contains("waits:"), "no wait footer in {text}");
    assert!(
        text.contains("SPILL_IO"),
        "spilling join must report SPILL_IO in the wait footer: {text}"
    );
    // The spill counters agree that spilling actually happened.
    let spill_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("spill:"))
        .unwrap();
    assert!(
        !spill_line.contains("partitions=0"),
        "join did not spill: {spill_line}"
    );
}

/// `sys.query_store` aggregates repeated shapes and survives a
/// save/open round trip with per-shape execution counts intact.
#[test]
fn query_store_survives_save_open_round_trip() {
    let db = small_db();
    for i in 0..7 {
        db.execute(&format!("SELECT SUM(v) FROM t WHERE id > {i}"))
            .unwrap();
    }
    let shape = query_shape("SELECT SUM(v) FROM t WHERE id > 0");
    assert_eq!(db.query_store().executions_for(shape.hash), 7);

    // The view shows one aggregated row for the shape, keyed by the
    // same hex hash sys.query_log uses.
    let hex = format!("{:016x}", shape.hash);
    let rows = db
        .execute(&format!(
            "SELECT executions, query_shape FROM sys.query_store WHERE query_hash = '{hex}'"
        ))
        .unwrap();
    assert_eq!(rows.rows().len(), 1, "one aggregated row per shape");
    assert_eq!(rows.rows()[0].get(0), &Value::Int64(7));

    let mut store = MemBlobStore::new();
    db.save_to_store(&mut store).unwrap();
    let (db2, _) = Database::open_from_store(&store, OpenMode::Strict).unwrap();
    assert_eq!(
        db2.query_store().executions_for(shape.hash),
        7,
        "execution counts must survive restart"
    );
    let rows = db2
        .execute(&format!(
            "SELECT executions FROM sys.query_store WHERE query_hash = '{hex}'"
        ))
        .unwrap();
    assert_eq!(rows.rows()[0].get(0), &Value::Int64(7));

    // Older generations without a querystore blob still open (and a
    // second save/open keeps the history flowing).
    db2.execute("SELECT SUM(v) FROM t WHERE id > 99").unwrap();
    let mut store2 = MemBlobStore::new();
    db2.save_to_store(&mut store2).unwrap();
    let (db3, _) = Database::open_from_store(&store2, OpenMode::Strict).unwrap();
    assert_eq!(db3.query_store().executions_for(shape.hash), 8);
}

/// `sys.query_log` carries the normalized shape hash, and `SET
/// query_log_size` bounds the ring.
#[test]
fn query_log_hash_and_capacity() {
    let db = small_db();
    db.execute("SELECT v FROM t WHERE id = 17").unwrap();
    db.execute("SELECT v FROM t WHERE id = 99").unwrap();
    let (h1, h2) = db.with_query_log(|log| {
        let find = |needle: &str| {
            log.entries()
                .find(|e| e.text.contains(needle))
                .map(|e| e.query_hash)
                .unwrap()
        };
        (find("id = 17"), find("id = 99"))
    });
    assert_eq!(h1, h2, "literal-differing texts share one shape hash");

    // The view exposes the hash as hex, joinable against
    // sys.query_store.
    let hex = format!("{:016x}", h1);
    let rows = db
        .execute(&format!(
            "SELECT COUNT(*) FROM sys.query_log WHERE query_hash = '{hex}'"
        ))
        .unwrap();
    let Value::Int64(n) = rows.rows()[0].get(0) else {
        panic!("count not an int");
    };
    assert!(*n >= 2, "both executions logged under the shape hash: {n}");

    db.execute("SET query_log_size = 2").unwrap();
    db.with_query_log(|log| assert!(log.entries().count() <= 2));
    db.execute("SELECT COUNT(*) FROM t").unwrap();
    db.with_query_log(|log| assert!(log.entries().count() <= 2));
}
