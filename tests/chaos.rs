//! Chaos suite: crash-point matrix over `save_to` and a tuple mover fed
//! injected faults under concurrent load.
//!
//! The durability contract under test: killing a save at *any* blob
//! operation leaves the store openable with either the complete pre-save
//! state or the complete post-save state — never a torn mixture and never
//! corruption. All faults are driven by fixed seeds, so failures reproduce
//! deterministically.

use std::time::Duration;

use cstore::common::fault::{FaultInjector, FaultKind, FaultSpec};
use cstore::common::{Row, Value};
use cstore::delta::{ColumnStoreTable, MoverConfig, MoverState, TableConfig, TupleMover};
use cstore::storage::blob::MemBlobStore;
use cstore::storage::FaultyBlobStore;
use cstore::{Database, OpenMode};

fn small_config() -> TableConfig {
    TableConfig {
        delta_capacity: 100,
        bulk_load_threshold: 200,
        max_rowgroup_rows: 500,
        ..TableConfig::default()
    }
}

/// A database exercising every durable structure: compressed row groups,
/// delta rows, delete-bitmap marks, and a heap table.
fn build_db() -> Database {
    let db = Database::new().with_table_config(small_config());
    db.execute("CREATE TABLE cs (id BIGINT NOT NULL, name VARCHAR, amt DECIMAL(6,2))")
        .unwrap();
    db.execute("CREATE TABLE hp (k BIGINT NOT NULL, v VARCHAR NOT NULL) USING HEAP")
        .unwrap();
    let rows: Vec<Row> = (0..1000)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i),
                Value::str(format!("n{}", i % 13)),
                Value::Decimal(i * 3),
            ])
        })
        .collect();
    db.bulk_load("cs", &rows).unwrap();
    db.execute("INSERT INTO cs VALUES (5000, 'delta-row', 1.25)")
        .unwrap();
    db.execute("DELETE FROM cs WHERE id < 50").unwrap();
    db.execute("INSERT INTO hp VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    db
}

/// Mutate the database so the next save differs from the previous one.
fn mutate(db: &Database) {
    db.execute("INSERT INTO cs VALUES (7777, 'second-gen', 9.99)")
        .unwrap();
    db.execute("DELETE FROM cs WHERE id BETWEEN 100 AND 199")
        .unwrap();
    db.execute("INSERT INTO hp VALUES (3, 'z')").unwrap();
}

const FINGERPRINT_QUERIES: &[&str] = &[
    "SELECT COUNT(*), SUM(amt), COUNT(name) FROM cs",
    "SELECT name, COUNT(*) AS n FROM cs GROUP BY name ORDER BY name",
    "SELECT COUNT(*) FROM hp",
];

fn fingerprint(db: &Database) -> Vec<Vec<Row>> {
    FINGERPRINT_QUERIES
        .iter()
        .map(|q| db.execute(q).unwrap().rows().to_vec())
        .collect()
}

/// Kill the save at every injected put, under both crash flavors, and
/// check the reopened state is exactly old or exactly new.
#[test]
fn crash_point_matrix_over_save() {
    let db = build_db();
    let old_print = fingerprint(&db);

    // Generation 1: a clean baseline save.
    let mut base = MemBlobStore::new();
    let gen1 = db.save_to_store(&mut base).unwrap();
    assert_eq!(gen1, 1);
    assert!(Database::verify_store(&base).unwrap().is_clean());

    mutate(&db);
    let new_print = fingerprint(&db);
    assert_ne!(old_print, new_print, "mutation must change the fingerprint");

    // Count the puts a gen-2 save performs (dry run over a disk clone).
    let faults = FaultInjector::new(0xC0);
    let mut dry = FaultyBlobStore::new(base.clone(), faults.clone());
    db.save_to_store(&mut dry).unwrap();
    let total_puts = faults.hits("blob.put");
    assert!(total_puts >= 5, "expected several puts, saw {total_puts}");

    for kind in [FaultKind::Crash, FaultKind::TornCrash] {
        for k in 0..total_puts {
            let faults = FaultInjector::new(1000 + k);
            faults.arm("blob.put", FaultSpec::new(kind).after(k));
            let mut store = FaultyBlobStore::new(base.clone(), faults);
            let err = db.save_to_store(&mut store).unwrap_err();
            assert_eq!(err.code(), "IO", "{kind:?} at put {k}: {err}");

            // "Restart": reopen whatever survived on the disk image.
            let disk = store.into_inner();
            let (reopened, report) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
            // The manifest is the last put: a save killed at any put
            // always rolls back to generation 1.
            assert_eq!(
                fingerprint(&reopened),
                old_print,
                "{kind:?} at put {k}/{total_puts}: expected pre-save state"
            );
            // A torn gen-2 manifest (TornCrash at the last put) must be
            // detected and skipped, not read.
            if kind == FaultKind::TornCrash && k == total_puts - 1 {
                assert_eq!(report.generation, 1);
                assert_eq!(report.skipped_manifests.len(), 1);
                assert_eq!(report.skipped_manifests[0].0, 2);
            }
        }
    }

    // Crash during garbage collection (after the manifest landed): the
    // save reports success — GC is best-effort — and reopening yields the
    // NEW state, with the stale generation-1 blobs left as orphans.
    let faults = FaultInjector::new(0x6C);
    faults.arm("blob.delete", FaultSpec::new(FaultKind::Crash));
    let mut store = FaultyBlobStore::new(base.clone(), faults);
    db.save_to_store(&mut store).unwrap();
    let disk = store.into_inner();
    let (reopened, report) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    assert_eq!(report.generation, 2);
    assert_eq!(fingerprint(&reopened), new_print);
    let verify = Database::verify_store(&disk).unwrap();
    assert!(verify.is_clean(), "{verify:?}");
    assert!(!verify.orphaned.is_empty(), "interrupted GC leaves orphans");

    // And a clean save over the partially-collected store reclaims them.
    let mut disk = disk;
    let gen3 = db.save_to_store(&mut disk).unwrap();
    assert_eq!(gen3, 3);
    let verify = Database::verify_store(&disk).unwrap();
    assert!(
        verify.is_clean() && verify.orphaned.is_empty(),
        "{verify:?}"
    );
}

/// Injected transient IO faults within the retry budget: the mover keeps
/// going under concurrent inserts and scans, loses nothing, and reports
/// the retries in its status.
#[test]
fn mover_absorbs_transient_faults_under_concurrent_load() {
    let schema = cstore::common::Schema::new(vec![cstore::common::Field::not_null(
        "k",
        cstore::common::DataType::Int64,
    )]);
    let t = ColumnStoreTable::new(
        schema,
        TableConfig {
            delta_capacity: 50,
            bulk_load_threshold: 1 << 30,
            max_rowgroup_rows: 1 << 20,
            ..TableConfig::default()
        },
    );
    let faults = FaultInjector::new(42);
    t.set_fault_injector(faults.clone());
    // 4 transient IO errors, spread out, all within the per-pass budget.
    faults.arm(
        "mover.pass",
        FaultSpec::new(FaultKind::IoError).after(1).times(2),
    );
    faults.arm(
        "mover.pass",
        FaultSpec::new(FaultKind::IoError).after(6).times(2),
    );
    let mover = TupleMover::start_with(
        t.clone(),
        MoverConfig {
            interval: Duration::from_millis(1),
            retry_budget: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(8),
            max_restarts: 0,
        },
    )
    .unwrap();

    let writer = {
        let t = t.clone();
        std::thread::spawn(move || {
            for i in 0..2000i64 {
                t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
            }
        })
    };
    let scanner = {
        let t = t.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                // Scans must never observe a torn state mid-move.
                let n = t.total_rows();
                assert!(n <= 2000);
                std::thread::yield_now();
            }
        })
    };
    writer.join().unwrap();
    scanner.join().unwrap();

    // Drain the tail and keep passing until every armed fault has fired
    // (passes over an empty table still consult the injector).
    t.close_open_delta();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (t.stats().n_closed_deltas > 0 || faults.fired("mover.pass") < 4)
        && std::time::Instant::now() < deadline
    {
        mover.kick();
        std::thread::sleep(Duration::from_millis(5));
    }
    let status = mover.status();
    assert_eq!(status.state, MoverState::Running);
    assert_eq!(status.transient_retries, 4, "all injected faults retried");
    assert_eq!(status.restarts, 0);
    mover.stop().unwrap();
    assert_eq!(t.total_rows(), 2000, "zero rows lost");
    assert_eq!(t.sum_i64(0).unwrap(), (0..2000).sum::<i64>());
    assert_eq!(t.stats().n_closed_deltas, 0);
    assert_eq!(t.stats().compressed_rows + t.stats().delta_rows, 2000);
}

/// A fault beyond the retry budget parks the mover in Failed; the table
/// itself keeps serving reads and writes.
#[test]
fn mover_parks_failed_when_budget_exhausted_but_table_serves() {
    let schema = cstore::common::Schema::new(vec![cstore::common::Field::not_null(
        "k",
        cstore::common::DataType::Int64,
    )]);
    let t = ColumnStoreTable::new(
        schema,
        TableConfig {
            delta_capacity: 10,
            bulk_load_threshold: 1 << 30,
            max_rowgroup_rows: 1 << 20,
            ..TableConfig::default()
        },
    );
    let faults = FaultInjector::new(7);
    t.set_fault_injector(faults.clone());
    faults.arm("mover.pass", FaultSpec::new(FaultKind::IoError).always());
    for i in 0..25i64 {
        t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
    }
    let mover = TupleMover::start_with(
        t.clone(),
        MoverConfig {
            interval: Duration::from_millis(1),
            retry_budget: 2,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
            max_restarts: 1,
        },
    )
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while mover.status().state != MoverState::Failed && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let status = mover.status();
    assert_eq!(status.state, MoverState::Failed);
    assert!(status.transient_retries >= 2);
    assert_eq!(status.restarts, 1);
    assert!(status.last_error.unwrap().contains("injected IO fault"));

    // The table still answers while its mover is parked.
    t.insert(Row::new(vec![Value::Int64(100)])).unwrap();
    assert_eq!(t.total_rows(), 26);
    assert!(mover.stop().is_err(), "stop surfaces the fatal error");

    // Recovery path: clear the faults and run the pass inline.
    faults.disarm_all();
    assert!(t.tuple_move_once().unwrap() > 0);
    assert_eq!(t.total_rows(), 26);
}

// ------------------------------------------------------------- WAL chaos
//
// The WAL durability contract: an acknowledged (Ok) INSERT or DELETE
// survives a crash at *any* WAL fault point; an unacknowledged one is
// either absent or its debris is detected (CRC) and truncated at
// recovery. Recovery never panics, never invents rows, never loses an
// acknowledged row.

use cstore::common::testutil::Rng;
use cstore::delta::{WalOptions, WalReplayReport};
use cstore::storage::{LogStore, MemLogStore};

/// Tiny deltas so trickle inserts close stores and the mover logs
/// `RowGroupSealed`; huge thresholds keep bulk paths out of the way.
fn wal_config() -> TableConfig {
    TableConfig {
        delta_capacity: 8,
        bulk_load_threshold: 1 << 30,
        max_rowgroup_rows: 1 << 20,
        ..TableConfig::default()
    }
}

/// Tiny segments force rotation every few records, exercising segment
/// bookkeeping, retirement and multi-segment replay.
fn wal_options(strict: bool) -> WalOptions {
    WalOptions {
        segment_bytes: 256,
        strict,
    }
}

#[derive(Clone, Debug)]
enum WalOp {
    Sql(String),
    Move,
    Save,
}

/// Insert → delete → mover-seal → checkpoint → more DML: one WAL commit
/// per op, so "op returned Err" ⟺ "record may be absent after a crash".
/// Multi-row INSERTs ride the `InsertBatch` frame, so the matrix crashes
/// inside batch-frame flushes as well as single-record ones.
fn fixed_wal_ops() -> Vec<WalOp> {
    let mut ops = Vec::new();
    for i in 0..12i64 {
        ops.push(WalOp::Sql(format!("INSERT INTO t VALUES ({i}, 'r{i}')")));
    }
    ops.push(WalOp::Sql(
        "INSERT INTO t VALUES (50, 'b50'), (51, 'b51'), (52, 'b52'), (53, 'b53')".into(),
    ));
    for i in [3i64, 5, 7, 51] {
        ops.push(WalOp::Sql(format!("DELETE FROM t WHERE id = {i}")));
    }
    ops.push(WalOp::Move);
    ops.push(WalOp::Save);
    for i in 100..108i64 {
        ops.push(WalOp::Sql(format!("INSERT INTO t VALUES ({i}, 'r{i}')")));
    }
    ops.push(WalOp::Sql(
        "INSERT INTO t VALUES (150, 'b150'), (151, 'b151'), (152, 'b152')".into(),
    ));
    ops.push(WalOp::Sql("DELETE FROM t WHERE id = 101".into()));
    ops
}

/// Full table contents, deterministically ordered: the strongest possible
/// equivalence — no loss, no duplicates, no invented rows.
fn wal_contents(db: &Database) -> Vec<Row> {
    db.execute("SELECT id, v FROM t ORDER BY id")
        .unwrap()
        .rows()
        .to_vec()
}

/// Run `ops` against a WAL-attached database with `arm` injected,
/// stopping at the first failed op (the "crash"), then reboot from the
/// durable images (blob store + synced WAL bytes) and assert the
/// recovered contents equal a shadow database that applied exactly the
/// acknowledged ops. Returns the injector, the reopen replay report, and
/// whether an op failed.
fn wal_crash_trial(
    seed: u64,
    ops: &[WalOp],
    arm: Option<(&'static str, FaultKind, u64)>,
) -> (FaultInjector, WalReplayReport, bool) {
    wal_crash_trial_mode(seed, ops, arm, "group")
}

/// [`wal_crash_trial`] under an explicit `SET wal_sync` mode. Valid for
/// `group` and `strict` only: both ack on durability, so exact shadow
/// equality holds. (`off` acks before the flush; its weaker contract is
/// asserted by [`wal_sync_off_crash_loses_only_the_unflushed_tail`].)
fn wal_crash_trial_mode(
    seed: u64,
    ops: &[WalOp],
    arm: Option<(&'static str, FaultKind, u64)>,
    mode: &'static str,
) -> (FaultInjector, WalReplayReport, bool) {
    let mut db = Database::new().with_table_config(wal_config());
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR)")
        .unwrap();
    let mut disk = MemBlobStore::new();
    db.save_to_store(&mut disk).unwrap(); // catalog baseline, generation 1

    let logs = MemLogStore::new();
    let faults = FaultInjector::new(seed);
    if let Some((point, kind, k)) = arm {
        faults.arm(point, FaultSpec::new(kind).after(k));
    }
    db.attach_wal_store(
        Box::new(logs.clone()),
        wal_options(true),
        Some(faults.clone()),
    )
    .unwrap();
    db.execute(&format!("SET wal_sync = {mode}")).unwrap();

    let shadow = Database::new().with_table_config(wal_config());
    shadow
        .execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR)")
        .unwrap();

    let mut crashed = false;
    for op in ops {
        let outcome = match op {
            WalOp::Sql(sql) => db.execute(sql).map(|_| ()),
            WalOp::Move => db.tuple_move("t").map(|_| ()),
            WalOp::Save => db.save_to_store(&mut disk).map(|_| ()),
        };
        match outcome {
            Ok(()) => {
                // Mirror only acknowledged DML; moves and saves don't
                // change logical contents.
                if let WalOp::Sql(sql) = op {
                    shadow.execute(sql).unwrap();
                }
            }
            Err(_) => {
                crashed = true;
                break; // the process died here
            }
        }
    }

    // Reboot: only the blob store and synced WAL bytes survive.
    let (mut reopened, _) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    let report = reopened
        .attach_wal_store(Box::new(logs.crash_image()), wal_options(true), None)
        .unwrap();
    assert_eq!(
        wal_contents(&reopened),
        wal_contents(&shadow),
        "recovered contents must be exactly the acknowledged ops (seed {seed}, arm {arm:?}, wal_sync={mode})"
    );
    (faults, report, crashed)
}

/// Kill the WAL at every append and every fsync, under clean-crash,
/// torn-write and bit-flip flavors: recovery is always exactly the
/// acknowledged state.
#[test]
fn wal_crash_point_matrix() {
    let ops = fixed_wal_ops();

    // Dry run (injector attached, nothing armed) counts the consults at
    // each fault point and checks the no-fault path recovers cleanly.
    let (faults, report, crashed) = wal_crash_trial(0xA0, &ops, None);
    assert!(!crashed);
    assert!(report.is_clean(), "{report:?}");
    assert!(report.records_applied > 0, "post-save DML must replay");
    let totals = [
        ("wal.append", faults.hits("wal.append")),
        ("wal.fsync", faults.hits("wal.fsync")),
    ];

    for (point, total) in totals {
        assert!(total >= 20, "expected many {point} consults, saw {total}");
        for kind in [FaultKind::Crash, FaultKind::TornCrash, FaultKind::BitFlip] {
            for k in 0..total {
                let (faults, report, _) = wal_crash_trial(3000 + k, &ops, Some((point, kind, k)));
                assert_eq!(faults.fired(point), 1, "{kind:?} at {point} #{k} must fire");
                // A bit flip lands a whole corrupt frame at the tail:
                // recovery must detect it by CRC and truncate it, never
                // apply it.
                if point == "wal.append" && kind == FaultKind::BitFlip {
                    assert!(
                        report.torn_tail.is_some() && report.records_truncated > 0,
                        "{kind:?} at {point} #{k}: expected a truncated torn tail, got {report:?}"
                    );
                }
            }
        }
    }
}

/// The same crash-point sweep under `SET wal_sync = strict` (committers
/// flush inline instead of handing off to the log-writer thread): the
/// acked-⟺-recovered equivalence must hold on that path too.
#[test]
fn wal_crash_point_matrix_strict_mode() {
    let ops = fixed_wal_ops();
    let (faults, _, crashed) = wal_crash_trial_mode(0xA1, &ops, None, "strict");
    assert!(!crashed);
    for (point, total) in [
        ("wal.append", faults.hits("wal.append")),
        ("wal.fsync", faults.hits("wal.fsync")),
    ] {
        assert!(total >= 20, "expected many {point} consults, saw {total}");
        for kind in [FaultKind::Crash, FaultKind::TornCrash] {
            for k in 0..total {
                let (faults, _, _) =
                    wal_crash_trial_mode(5000 + k, &ops, Some((point, kind, k)), "strict");
                assert_eq!(faults.fired(point), 1, "{kind:?} at {point} #{k} must fire");
            }
        }
    }
}

/// `SET wal_sync = off` trades the fsync wait for a loss window: a crash
/// may lose acknowledged rows, but only from the *unflushed tail* — the
/// recovered table is always an exact statement-granularity prefix of the
/// attempted inserts (frames are all-or-nothing), with no duplicates and
/// nothing invented.
#[test]
fn wal_sync_off_crash_loses_only_the_unflushed_tail() {
    // Insert-only ops: one WAL frame per statement, including multi-row
    // InsertBatch frames, so "prefix of ops" is a meaningful shape.
    let mut attempted: Vec<Vec<i64>> = Vec::new();
    let mut ops: Vec<String> = Vec::new();
    for i in 0..10i64 {
        ops.push(format!("INSERT INTO t VALUES ({i}, 'r{i}')"));
        attempted.push(vec![i]);
    }
    for base in [100i64, 200, 300] {
        let ids: Vec<i64> = (base..base + 4).collect();
        let values = ids
            .iter()
            .map(|i| format!("({i}, 'b{i}')"))
            .collect::<Vec<_>>()
            .join(", ");
        ops.push(format!("INSERT INTO t VALUES {values}"));
        attempted.push(ids);
    }
    for i in 20..30i64 {
        ops.push(format!("INSERT INTO t VALUES ({i}, 'r{i}')"));
        attempted.push(vec![i]);
    }

    for (point, kind) in [
        ("wal.append", FaultKind::Crash),
        ("wal.append", FaultKind::TornCrash),
        ("wal.fsync", FaultKind::Crash),
    ] {
        for k in [0u64, 3, 9, 14] {
            let mut db = Database::new().with_table_config(wal_config());
            db.execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR)")
                .unwrap();
            let mut disk = MemBlobStore::new();
            db.save_to_store(&mut disk).unwrap();
            let logs = MemLogStore::new();
            let faults = FaultInjector::new(0xD00D + k);
            faults.arm(point, FaultSpec::new(kind).after(k));
            db.attach_wal_store(
                Box::new(logs.clone()),
                wal_options(true),
                Some(faults.clone()),
            )
            .unwrap();
            db.execute("SET wal_sync = off").unwrap();

            // Run until the wedged WAL surfaces as an error; off-mode acks
            // don't wait for the flush, so acked rows past the durable
            // tail are the (expected, documented) loss window.
            for sql in &ops {
                if db.execute(sql).is_err() {
                    break;
                }
            }

            let (mut reopened, _) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
            reopened
                .attach_wal_store(Box::new(logs.crash_image()), wal_options(true), None)
                .unwrap();
            let recovered: Vec<i64> = reopened
                .execute("SELECT id FROM t")
                .unwrap()
                .rows()
                .iter()
                .map(|r| match r.values()[0] {
                    Value::Int64(v) => v,
                    ref other => panic!("unexpected value {other:?}"),
                })
                .collect();

            // Frames are applied in LSN order and each frame is
            // all-or-nothing, so the recovered set must be exactly the
            // first j statements for some j.
            let mut prefix: Vec<i64> = Vec::new();
            let mut matched = recovered.len() == prefix.len();
            for ids in &attempted {
                if matched {
                    break;
                }
                prefix.extend_from_slice(ids);
                matched = recovered.len() == prefix.len();
            }
            let mut want = prefix.clone();
            let mut got = recovered.clone();
            want.sort_unstable();
            got.sort_unstable();
            assert!(
                matched && want == got,
                "wal_sync=off recovery must be a statement prefix \
                 ({point} {kind:?} #{k}: recovered {recovered:?})"
            );
        }
    }
}

/// Satellite: randomized crash-point schedules. Random op sequences,
/// random fault point / kind / hit index per seed — every recovery must
/// equal its shadow exactly.
#[test]
fn wal_randomized_crash_recovery_equivalence() {
    const POINTS: [&str; 2] = ["wal.append", "wal.fsync"];
    const KINDS: [FaultKind; 5] = [
        FaultKind::IoError,
        FaultKind::Crash,
        FaultKind::TornWrite,
        FaultKind::TornCrash,
        FaultKind::BitFlip,
    ];
    for seed in 0..12u64 {
        let mut rng = Rng::new(seed * 7919 + 13);
        let mut ops = Vec::new();
        let mut live: Vec<i64> = Vec::new();
        let mut next_id = 0i64;
        for _ in 0..rng.range_usize(20, 40) {
            match rng.below(100) {
                0..=49 => {
                    ops.push(WalOp::Sql(format!(
                        "INSERT INTO t VALUES ({next_id}, '{}')",
                        rng.alnum_string(6)
                    )));
                    live.push(next_id);
                    next_id += 1;
                }
                50..=59 => {
                    // Multi-row statement: one InsertBatch frame.
                    let n = rng.range_usize(2, 5);
                    let values = (0..n)
                        .map(|j| format!("({}, 'm{}')", next_id + j as i64, rng.below(100)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    ops.push(WalOp::Sql(format!("INSERT INTO t VALUES {values}")));
                    for j in 0..n {
                        live.push(next_id + j as i64);
                    }
                    next_id += n as i64;
                }
                60..=79 => {
                    if let Some(&id) = rng.choose(&live) {
                        ops.push(WalOp::Sql(format!("DELETE FROM t WHERE id = {id}")));
                        live.retain(|&x| x != id);
                    }
                }
                80..=89 => ops.push(WalOp::Move),
                _ => ops.push(WalOp::Save),
            }
        }
        let point = *rng.choose(&POINTS).unwrap();
        let kind = *rng.choose(&KINDS).unwrap();
        let k = rng.below(40);
        let mode = if rng.below(2) == 0 { "group" } else { "strict" };
        // The fault may or may not fire depending on the schedule; the
        // equivalence assertion inside the trial must hold either way.
        let (_, _, _crashed) = wal_crash_trial_mode(seed, &ops, Some((point, kind, k)), mode);
    }
}

/// Group commit under concurrency, killed mid-flight at an fsync: every
/// acknowledged insert is recovered, nothing is duplicated, and nothing
/// that was never attempted appears.
#[test]
fn wal_group_commit_crash_keeps_acknowledged_inserts() {
    let mut db = Database::new().with_table_config(wal_config());
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR)")
        .unwrap();
    let mut disk = MemBlobStore::new();
    db.save_to_store(&mut disk).unwrap();

    let logs = MemLogStore::new();
    let faults = FaultInjector::new(0xBEEF);
    faults.arm("wal.fsync", FaultSpec::new(FaultKind::Crash).after(10));
    db.attach_wal_store(
        Box::new(logs.clone()),
        wal_options(true),
        Some(faults.clone()),
    )
    .unwrap();

    let acked = std::sync::Arc::new(std::sync::Mutex::new(Vec::<i64>::new()));
    let mut handles = Vec::new();
    for t in 0..4i64 {
        let db = db.clone();
        let acked = std::sync::Arc::clone(&acked);
        handles.push(std::thread::spawn(move || {
            for i in 0..60i64 {
                let id = t * 1000 + i;
                if db
                    .execute(&format!("INSERT INTO t VALUES ({id}, 'w')"))
                    .is_ok()
                {
                    acked.lock().unwrap().push(id);
                } else {
                    // The WAL is dead after the injected crash: every
                    // later insert on this thread fails too.
                    break;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(faults.fired("wal.fsync"), 1);
    let status = db.wal_status().unwrap();
    assert!(status.failed.is_some(), "WAL must be parked failed");

    let (mut reopened, _) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    reopened
        .attach_wal_store(Box::new(logs.crash_image()), wal_options(true), None)
        .unwrap();
    let recovered: Vec<i64> = reopened
        .execute("SELECT id FROM t ORDER BY id")
        .unwrap()
        .rows()
        .iter()
        .map(|r| match r.values()[0] {
            Value::Int64(v) => v,
            ref other => panic!("unexpected value {other:?}"),
        })
        .collect();

    // No duplicates.
    let mut dedup = recovered.clone();
    dedup.dedup();
    assert_eq!(dedup, recovered, "recovery must not duplicate rows");
    // acked ⊆ recovered ⊆ attempted.
    let acked = acked.lock().unwrap();
    assert!(!acked.is_empty(), "some inserts must land before the crash");
    for id in acked.iter() {
        assert!(
            recovered.contains(id),
            "acknowledged insert {id} lost in recovery"
        );
    }
    for id in &recovered {
        assert!(
            (0..4000).contains(id),
            "recovered row {id} was never attempted"
        );
    }
}

/// Corruption in an *interior* segment is real damage, not crash debris:
/// a strict open refuses it, a degraded open quarantines the segment and
/// reports it (and `sys.wal` shows the quarantine).
#[test]
fn wal_interior_corruption_strict_fails_degraded_quarantines() {
    let mut db = Database::new().with_table_config(wal_config());
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR)")
        .unwrap();
    let mut disk = MemBlobStore::new();
    db.save_to_store(&mut disk).unwrap();
    let logs = MemLogStore::new();
    db.attach_wal_store(Box::new(logs.clone()), wal_options(true), None)
        .unwrap();
    for i in 0..30i64 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 'r{i}')"))
            .unwrap();
    }

    // Corrupt an interior segment of the crash image by cutting a frame
    // in half (simulates media damage under acknowledged records).
    let corrupt_logs = || {
        let mut img = logs.crash_image();
        let ids = img.segment_ids().unwrap();
        assert!(ids.len() >= 3, "tiny segments must have rotated: {ids:?}");
        let mid = ids[ids.len() / 2];
        let n = img.read(mid).unwrap().len() as u64;
        assert!(n > 8, "interior segment {mid} should hold frames");
        img.truncate(mid, n - 3).unwrap();
        (img, mid)
    };

    let (img, _) = corrupt_logs();
    let (mut strict, _) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    let err = strict
        .attach_wal_store(Box::new(img), wal_options(true), None)
        .unwrap_err();
    assert!(
        err.to_string().contains("bad frame"),
        "strict open must surface the damage: {err}"
    );

    let (img, mid) = corrupt_logs();
    let (mut degraded, _) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    let report = degraded
        .attach_wal_store(Box::new(img), wal_options(false), None)
        .unwrap();
    assert_eq!(report.quarantined.len(), 1, "{report:?}");
    assert_eq!(report.quarantined[0].segment, mid);
    assert!(!report.is_clean());
    assert!(!degraded.open_report().is_clean());
    // The quarantine is visible through ordinary SQL.
    let rows = degraded
        .execute("SELECT segments_quarantined FROM sys.wal")
        .unwrap()
        .rows()
        .to_vec();
    assert_eq!(rows[0].values()[0], Value::Int64(1));
    // Rows before the damage replayed; the recovered set is a subset of
    // what was written, with no invented rows.
    let recovered = wal_contents(&degraded);
    assert!(!recovered.is_empty() && recovered.len() < 30);
}

/// A fault while *reading* the log at replay: strict opens refuse,
/// degraded opens quarantine the unreadable segment and keep going.
#[test]
fn wal_replay_fault_strict_fails_degraded_quarantines() {
    let mut db = Database::new().with_table_config(wal_config());
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR)")
        .unwrap();
    let mut disk = MemBlobStore::new();
    db.save_to_store(&mut disk).unwrap();
    let logs = MemLogStore::new();
    db.attach_wal_store(Box::new(logs.clone()), wal_options(true), None)
        .unwrap();
    for i in 0..20i64 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 'r{i}')"))
            .unwrap();
    }

    let strict_faults = FaultInjector::new(1);
    strict_faults.arm("wal.replay", FaultSpec::new(FaultKind::IoError));
    let (mut strict, _) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    assert!(strict
        .attach_wal_store(
            Box::new(logs.crash_image()),
            wal_options(true),
            Some(strict_faults),
        )
        .is_err());

    let degraded_faults = FaultInjector::new(2);
    degraded_faults.arm("wal.replay", FaultSpec::new(FaultKind::IoError));
    let (mut degraded, _) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    let report = degraded
        .attach_wal_store(
            Box::new(logs.crash_image()),
            wal_options(false),
            Some(degraded_faults),
        )
        .unwrap();
    assert_eq!(report.quarantined.len(), 1, "{report:?}");
    assert!(report.records_applied > 0, "later segments still replay");
    assert!(!degraded.open_report().is_clean());
}

// ------------------------------------------------- transaction WAL chaos
//
// The transaction durability contract: a multi-statement transaction is
// all-or-nothing across a crash at *any* WAL fault point. If COMMIT was
// acknowledged, every statement survives replay; if the crash lands
// anywhere between `TxnBegin` and the commit record's durable flush — a
// torn commit — replay discards the whole transaction and recovery shows
// none of its writes. Rolled-back transactions never surface anywhere.

#[derive(Clone, Debug)]
enum TxnChaosOp {
    /// An ordinary auto-commit statement.
    Auto(String),
    /// `BEGIN; stmts…; COMMIT` (or `ROLLBACK` when `commit` is false).
    Txn {
        stmts: Vec<String>,
        commit: bool,
    },
    Move,
    Save,
}

/// Auto-commit traffic around three multi-statement transactions — two
/// committed (one before and one after a mover pass + checkpointing
/// save), one rolled back — mixing single inserts, batch inserts,
/// updates (delete+insert WAL pairs), deletes of pre-existing rows, and
/// a delete of the transaction's own uncommitted insert (nets out).
fn fixed_txn_ops() -> Vec<TxnChaosOp> {
    let mut ops = Vec::new();
    for i in 0..8i64 {
        ops.push(TxnChaosOp::Auto(format!(
            "INSERT INTO t VALUES ({i}, 'seed{i}')"
        )));
    }
    ops.push(TxnChaosOp::Txn {
        stmts: vec![
            "INSERT INTO t VALUES (100, 'txn1')".into(),
            "INSERT INTO t VALUES (101, 'b1'), (102, 'b2'), (103, 'b3')".into(),
            "UPDATE t SET v = 'updated' WHERE id = 2".into(),
            "DELETE FROM t WHERE id = 3".into(),
            "DELETE FROM t WHERE id = 101".into(),
        ],
        commit: true,
    });
    ops.push(TxnChaosOp::Move);
    ops.push(TxnChaosOp::Save);
    ops.push(TxnChaosOp::Txn {
        stmts: vec![
            "INSERT INTO t VALUES (200, 'ghost')".into(),
            "DELETE FROM t WHERE id = 4".into(),
            "UPDATE t SET v = 'ghost' WHERE id = 5".into(),
        ],
        commit: false,
    });
    ops.push(TxnChaosOp::Txn {
        stmts: vec![
            "INSERT INTO t VALUES (300, 'post1'), (301, 'post2')".into(),
            "UPDATE t SET v = 'post' WHERE id = 100".into(),
            "DELETE FROM t WHERE id = 6".into(),
        ],
        commit: true,
    });
    ops.push(TxnChaosOp::Auto(
        "INSERT INTO t VALUES (400, 'tail')".into(),
    ));
    ops.push(TxnChaosOp::Auto("DELETE FROM t WHERE id = 7".into()));
    ops
}

/// Run the transactional schedule with `arm` injected, treating the
/// first failed operation as the crash, then reboot from the durable
/// images and assert the recovered contents equal a shadow database
/// that applied only acknowledged auto-commits and transactions whose
/// COMMIT returned Ok — transaction statements reach the shadow at
/// commit time or never.
fn txn_crash_trial(
    seed: u64,
    ops: &[TxnChaosOp],
    arm: Option<(&'static str, FaultKind, u64)>,
) -> (FaultInjector, WalReplayReport, bool) {
    let mut db = Database::new().with_table_config(wal_config());
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR)")
        .unwrap();
    let mut disk = MemBlobStore::new();
    db.save_to_store(&mut disk).unwrap();
    let logs = MemLogStore::new();
    let faults = FaultInjector::new(seed);
    if let Some((point, kind, k)) = arm {
        faults.arm(point, FaultSpec::new(kind).after(k));
    }
    db.attach_wal_store(
        Box::new(logs.clone()),
        wal_options(true),
        Some(faults.clone()),
    )
    .unwrap();

    let shadow = Database::new().with_table_config(wal_config());
    shadow
        .execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR)")
        .unwrap();

    let mut crashed = false;
    'schedule: for op in ops {
        match op {
            TxnChaosOp::Auto(sql) => match db.execute(sql) {
                Ok(_) => {
                    shadow.execute(sql).unwrap();
                }
                Err(_) => {
                    crashed = true;
                    break 'schedule;
                }
            },
            TxnChaosOp::Txn { stmts, commit } => {
                if db.execute("BEGIN").is_err() {
                    crashed = true;
                    break 'schedule;
                }
                for sql in stmts {
                    if db.execute(sql).is_err() {
                        // Died mid-transaction: a torn commit. Nothing of
                        // this transaction may survive recovery.
                        crashed = true;
                        break 'schedule;
                    }
                }
                if *commit {
                    match db.execute("COMMIT") {
                        Ok(_) => {
                            for sql in stmts {
                                shadow.execute(sql).unwrap();
                            }
                        }
                        Err(_) => {
                            crashed = true;
                            break 'schedule;
                        }
                    }
                } else if db.execute("ROLLBACK").is_err() {
                    crashed = true;
                    break 'schedule;
                }
            }
            TxnChaosOp::Move => {
                if db.tuple_move("t").is_err() {
                    crashed = true;
                    break 'schedule;
                }
            }
            TxnChaosOp::Save => {
                if db.save_to_store(&mut disk).is_err() {
                    crashed = true;
                    break 'schedule;
                }
            }
        }
    }

    let (mut reopened, _) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    let report = reopened
        .attach_wal_store(Box::new(logs.crash_image()), wal_options(true), None)
        .unwrap();
    assert_eq!(
        wal_contents(&reopened),
        wal_contents(&shadow),
        "recovered contents must be exactly the committed transactions plus \
         acknowledged auto-commits (seed {seed}, arm {arm:?})"
    );
    (faults, report, crashed)
}

/// Kill the transactional schedule at every WAL append and fsync under
/// clean-crash, torn-write and transient-IO flavors: recovery always
/// shows whole transactions or none of them.
#[test]
fn txn_torn_commit_crash_point_matrix() {
    let ops = fixed_txn_ops();

    // Dry run: committed and rolled-back transactions replay as such.
    let (faults, report, crashed) = txn_crash_trial(0xE0, &ops, None);
    assert!(!crashed);
    assert!(report.is_clean(), "{report:?}");
    // The save's checkpoint retires the pre-save transaction's records;
    // the post-save rollback and commit must replay as such.
    assert_eq!(report.txns_committed, 1, "{report:?}");
    assert_eq!(report.txns_discarded, 1, "explicit abort: {report:?}");

    for (point, total) in [
        ("wal.append", faults.hits("wal.append")),
        ("wal.fsync", faults.hits("wal.fsync")),
    ] {
        assert!(total >= 10, "expected many {point} consults, saw {total}");
        for kind in [FaultKind::Crash, FaultKind::TornCrash, FaultKind::IoError] {
            for k in 0..total {
                let (faults, _, _) = txn_crash_trial(9000 + k, &ops, Some((point, kind, k)));
                assert!(
                    faults.fired(point) >= 1,
                    "{kind:?} at {point} #{k} must fire"
                );
            }
        }
    }
}

/// Sweep the transaction-framing fault points themselves: a fault while
/// logging `TxnBegin`, `TxnCommit` or `TxnAbort` never leaks or loses a
/// transaction — the shadow-equality check inside every trial is the
/// contract. (A crash at the commit point usually erases the unflushed
/// begin/op frames too; the flushed-frames flavor is pinned down by
/// [`txn_torn_commit_is_discarded_at_replay`].)
#[test]
fn txn_framing_fault_point_sweep() {
    let ops = fixed_txn_ops();
    let (faults, _, _) = txn_crash_trial(0xE1, &ops, None);

    for point in ["wal.txn_begin", "wal.txn_commit", "wal.txn_abort"] {
        let total = faults.hits(point);
        assert!(total >= 1, "expected {point} consults, saw {total}");
        for kind in [FaultKind::Crash, FaultKind::IoError] {
            for k in 0..total {
                let (faults, _, _) = txn_crash_trial(9500 + k, &ops, Some((point, kind, k)));
                assert!(
                    faults.fired(point) >= 1,
                    "{kind:?} at {point} #{k} must fire"
                );
            }
        }
    }
}

/// The canonical torn commit: a transaction's `TxnBegin` and op frames
/// are already durable (group-flushed by a concurrent auto-commit), then
/// the crash lands exactly at the commit record. Replay must find the
/// frames, see no commit, and discard the whole transaction — only the
/// auto-commit row survives.
#[test]
fn txn_torn_commit_is_discarded_at_replay() {
    let mut db = Database::new().with_table_config(wal_config());
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR)")
        .unwrap();
    let mut disk = MemBlobStore::new();
    db.save_to_store(&mut disk).unwrap();
    let logs = MemLogStore::new();
    let faults = FaultInjector::new(0xE2);
    faults.arm("wal.txn_commit", FaultSpec::new(FaultKind::Crash));
    db.attach_wal_store(
        Box::new(logs.clone()),
        wal_options(true),
        Some(faults.clone()),
    )
    .unwrap();

    let a = db.new_session();
    a.execute("BEGIN").unwrap();
    a.execute("INSERT INTO t VALUES (1, 'torn')").unwrap();
    a.execute("INSERT INTO t VALUES (2, 'torn'), (3, 'torn')")
        .unwrap();
    // Another session's auto-commit group-flushes A's buffered frames:
    // TxnBegin and the ops are now durable; the commit record is not.
    db.execute("INSERT INTO t VALUES (50, 'auto')").unwrap();
    let err = a.execute("COMMIT").unwrap_err();
    assert!(err.to_string().contains("crash"), "{err}");
    assert!(!a.in_transaction(), "failed COMMIT must close the txn");

    let (mut reopened, _) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    let report = reopened
        .attach_wal_store(Box::new(logs.crash_image()), wal_options(true), None)
        .unwrap();
    assert_eq!(report.txns_discarded, 1, "{report:?}");
    assert_eq!(report.txns_committed, 0, "{report:?}");
    let rows = wal_contents(&reopened);
    assert_eq!(rows.len(), 1, "only the auto-commit row survives: {rows:?}");
    assert_eq!(rows[0].get(0), &Value::Int64(50));
}
