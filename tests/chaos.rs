//! Chaos suite: crash-point matrix over `save_to` and a tuple mover fed
//! injected faults under concurrent load.
//!
//! The durability contract under test: killing a save at *any* blob
//! operation leaves the store openable with either the complete pre-save
//! state or the complete post-save state — never a torn mixture and never
//! corruption. All faults are driven by fixed seeds, so failures reproduce
//! deterministically.

use std::time::Duration;

use cstore::common::fault::{FaultInjector, FaultKind, FaultSpec};
use cstore::common::{Row, Value};
use cstore::delta::{ColumnStoreTable, MoverConfig, MoverState, TableConfig, TupleMover};
use cstore::storage::blob::MemBlobStore;
use cstore::storage::FaultyBlobStore;
use cstore::{Database, OpenMode};

fn small_config() -> TableConfig {
    TableConfig {
        delta_capacity: 100,
        bulk_load_threshold: 200,
        max_rowgroup_rows: 500,
        ..TableConfig::default()
    }
}

/// A database exercising every durable structure: compressed row groups,
/// delta rows, delete-bitmap marks, and a heap table.
fn build_db() -> Database {
    let db = Database::new().with_table_config(small_config());
    db.execute("CREATE TABLE cs (id BIGINT NOT NULL, name VARCHAR, amt DECIMAL(6,2))")
        .unwrap();
    db.execute("CREATE TABLE hp (k BIGINT NOT NULL, v VARCHAR NOT NULL) USING HEAP")
        .unwrap();
    let rows: Vec<Row> = (0..1000)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i),
                Value::str(format!("n{}", i % 13)),
                Value::Decimal(i * 3),
            ])
        })
        .collect();
    db.bulk_load("cs", &rows).unwrap();
    db.execute("INSERT INTO cs VALUES (5000, 'delta-row', 1.25)")
        .unwrap();
    db.execute("DELETE FROM cs WHERE id < 50").unwrap();
    db.execute("INSERT INTO hp VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    db
}

/// Mutate the database so the next save differs from the previous one.
fn mutate(db: &Database) {
    db.execute("INSERT INTO cs VALUES (7777, 'second-gen', 9.99)")
        .unwrap();
    db.execute("DELETE FROM cs WHERE id BETWEEN 100 AND 199")
        .unwrap();
    db.execute("INSERT INTO hp VALUES (3, 'z')").unwrap();
}

const FINGERPRINT_QUERIES: &[&str] = &[
    "SELECT COUNT(*), SUM(amt), COUNT(name) FROM cs",
    "SELECT name, COUNT(*) AS n FROM cs GROUP BY name ORDER BY name",
    "SELECT COUNT(*) FROM hp",
];

fn fingerprint(db: &Database) -> Vec<Vec<Row>> {
    FINGERPRINT_QUERIES
        .iter()
        .map(|q| db.execute(q).unwrap().rows().to_vec())
        .collect()
}

/// Kill the save at every injected put, under both crash flavors, and
/// check the reopened state is exactly old or exactly new.
#[test]
fn crash_point_matrix_over_save() {
    let db = build_db();
    let old_print = fingerprint(&db);

    // Generation 1: a clean baseline save.
    let mut base = MemBlobStore::new();
    let gen1 = db.save_to_store(&mut base).unwrap();
    assert_eq!(gen1, 1);
    assert!(Database::verify_store(&base).unwrap().is_clean());

    mutate(&db);
    let new_print = fingerprint(&db);
    assert_ne!(old_print, new_print, "mutation must change the fingerprint");

    // Count the puts a gen-2 save performs (dry run over a disk clone).
    let faults = FaultInjector::new(0xC0);
    let mut dry = FaultyBlobStore::new(base.clone(), faults.clone());
    db.save_to_store(&mut dry).unwrap();
    let total_puts = faults.hits("blob.put");
    assert!(total_puts >= 5, "expected several puts, saw {total_puts}");

    for kind in [FaultKind::Crash, FaultKind::TornCrash] {
        for k in 0..total_puts {
            let faults = FaultInjector::new(1000 + k);
            faults.arm("blob.put", FaultSpec::new(kind).after(k));
            let mut store = FaultyBlobStore::new(base.clone(), faults);
            let err = db.save_to_store(&mut store).unwrap_err();
            assert_eq!(err.code(), "IO", "{kind:?} at put {k}: {err}");

            // "Restart": reopen whatever survived on the disk image.
            let disk = store.into_inner();
            let (reopened, report) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
            // The manifest is the last put: a save killed at any put
            // always rolls back to generation 1.
            assert_eq!(
                fingerprint(&reopened),
                old_print,
                "{kind:?} at put {k}/{total_puts}: expected pre-save state"
            );
            // A torn gen-2 manifest (TornCrash at the last put) must be
            // detected and skipped, not read.
            if kind == FaultKind::TornCrash && k == total_puts - 1 {
                assert_eq!(report.generation, 1);
                assert_eq!(report.skipped_manifests.len(), 1);
                assert_eq!(report.skipped_manifests[0].0, 2);
            }
        }
    }

    // Crash during garbage collection (after the manifest landed): the
    // save reports success — GC is best-effort — and reopening yields the
    // NEW state, with the stale generation-1 blobs left as orphans.
    let faults = FaultInjector::new(0x6C);
    faults.arm("blob.delete", FaultSpec::new(FaultKind::Crash));
    let mut store = FaultyBlobStore::new(base.clone(), faults);
    db.save_to_store(&mut store).unwrap();
    let disk = store.into_inner();
    let (reopened, report) = Database::open_from_store(&disk, OpenMode::Strict).unwrap();
    assert_eq!(report.generation, 2);
    assert_eq!(fingerprint(&reopened), new_print);
    let verify = Database::verify_store(&disk).unwrap();
    assert!(verify.is_clean(), "{verify:?}");
    assert!(!verify.orphaned.is_empty(), "interrupted GC leaves orphans");

    // And a clean save over the partially-collected store reclaims them.
    let mut disk = disk;
    let gen3 = db.save_to_store(&mut disk).unwrap();
    assert_eq!(gen3, 3);
    let verify = Database::verify_store(&disk).unwrap();
    assert!(
        verify.is_clean() && verify.orphaned.is_empty(),
        "{verify:?}"
    );
}

/// Injected transient IO faults within the retry budget: the mover keeps
/// going under concurrent inserts and scans, loses nothing, and reports
/// the retries in its status.
#[test]
fn mover_absorbs_transient_faults_under_concurrent_load() {
    let schema = cstore::common::Schema::new(vec![cstore::common::Field::not_null(
        "k",
        cstore::common::DataType::Int64,
    )]);
    let t = ColumnStoreTable::new(
        schema,
        TableConfig {
            delta_capacity: 50,
            bulk_load_threshold: 1 << 30,
            max_rowgroup_rows: 1 << 20,
            ..TableConfig::default()
        },
    );
    let faults = FaultInjector::new(42);
    t.set_fault_injector(faults.clone());
    // 4 transient IO errors, spread out, all within the per-pass budget.
    faults.arm(
        "mover.pass",
        FaultSpec::new(FaultKind::IoError).after(1).times(2),
    );
    faults.arm(
        "mover.pass",
        FaultSpec::new(FaultKind::IoError).after(6).times(2),
    );
    let mover = TupleMover::start_with(
        t.clone(),
        MoverConfig {
            interval: Duration::from_millis(1),
            retry_budget: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(8),
            max_restarts: 0,
        },
    )
    .unwrap();

    let writer = {
        let t = t.clone();
        std::thread::spawn(move || {
            for i in 0..2000i64 {
                t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
            }
        })
    };
    let scanner = {
        let t = t.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                // Scans must never observe a torn state mid-move.
                let n = t.total_rows();
                assert!(n <= 2000);
                std::thread::yield_now();
            }
        })
    };
    writer.join().unwrap();
    scanner.join().unwrap();

    // Drain the tail and keep passing until every armed fault has fired
    // (passes over an empty table still consult the injector).
    t.close_open_delta();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (t.stats().n_closed_deltas > 0 || faults.fired("mover.pass") < 4)
        && std::time::Instant::now() < deadline
    {
        mover.kick();
        std::thread::sleep(Duration::from_millis(5));
    }
    let status = mover.status();
    assert_eq!(status.state, MoverState::Running);
    assert_eq!(status.transient_retries, 4, "all injected faults retried");
    assert_eq!(status.restarts, 0);
    mover.stop().unwrap();
    assert_eq!(t.total_rows(), 2000, "zero rows lost");
    assert_eq!(t.sum_i64(0).unwrap(), (0..2000).sum::<i64>());
    assert_eq!(t.stats().n_closed_deltas, 0);
    assert_eq!(t.stats().compressed_rows + t.stats().delta_rows, 2000);
}

/// A fault beyond the retry budget parks the mover in Failed; the table
/// itself keeps serving reads and writes.
#[test]
fn mover_parks_failed_when_budget_exhausted_but_table_serves() {
    let schema = cstore::common::Schema::new(vec![cstore::common::Field::not_null(
        "k",
        cstore::common::DataType::Int64,
    )]);
    let t = ColumnStoreTable::new(
        schema,
        TableConfig {
            delta_capacity: 10,
            bulk_load_threshold: 1 << 30,
            max_rowgroup_rows: 1 << 20,
            ..TableConfig::default()
        },
    );
    let faults = FaultInjector::new(7);
    t.set_fault_injector(faults.clone());
    faults.arm("mover.pass", FaultSpec::new(FaultKind::IoError).always());
    for i in 0..25i64 {
        t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
    }
    let mover = TupleMover::start_with(
        t.clone(),
        MoverConfig {
            interval: Duration::from_millis(1),
            retry_budget: 2,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
            max_restarts: 1,
        },
    )
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while mover.status().state != MoverState::Failed && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let status = mover.status();
    assert_eq!(status.state, MoverState::Failed);
    assert!(status.transient_retries >= 2);
    assert_eq!(status.restarts, 1);
    assert!(status.last_error.unwrap().contains("injected IO fault"));

    // The table still answers while its mover is parked.
    t.insert(Row::new(vec![Value::Int64(100)])).unwrap();
    assert_eq!(t.total_rows(), 26);
    assert!(mover.stop().is_err(), "stop surfaces the fatal error");

    // Recovery path: clear the faults and run the pass inline.
    faults.disarm_all();
    assert!(t.tuple_move_once().unwrap() > 0);
    assert_eq!(t.total_rows(), 26);
}
