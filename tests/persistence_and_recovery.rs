//! Persistence: the columnar format survives a round trip through blob
//! storage (memory and file backed), including archived row groups, and
//! corruption is detected rather than silently read.

use cstore::common::{DataType, Field, Row, RowGroupId, Schema, Value};
use cstore::storage::blob::{BlobStore, FileBlobStore, MemBlobStore};
use cstore::storage::{ColumnStore, SortMode};

fn schema() -> Schema {
    Schema::new(vec![
        Field::not_null("id", DataType::Int64),
        Field::nullable("name", DataType::Utf8),
        Field::nullable("score", DataType::Float64),
        Field::not_null("day", DataType::Date),
    ])
}

fn sample_store() -> ColumnStore {
    let mut cs = ColumnStore::new(schema()).with_sort_mode(SortMode::Columns(vec![3]));
    let rows: Vec<Row> = (0..5000)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i),
                if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::str(format!("n{}", i % 40))
                },
                Value::Float64(i as f64 / 3.0),
                Value::Date((i / 100) as i32),
            ])
        })
        .collect();
    cs.append_rows(&rows, 1500).unwrap();
    cs.archive_group(RowGroupId(2)).unwrap();
    cs
}

fn verify_equal(a: &ColumnStore, b: &ColumnStore) {
    assert_eq!(a.total_rows(), b.total_rows());
    assert_eq!(a.groups().len(), b.groups().len());
    for (ga, gb) in a.groups().iter().zip(b.groups()) {
        assert_eq!(ga.id(), gb.id());
        assert_eq!(ga.level(), gb.level());
        for t in [0usize, 7, 99, 1400] {
            if t < ga.n_rows() {
                assert_eq!(ga.row_values(t).unwrap(), gb.row_values(t).unwrap());
            }
        }
    }
}

#[test]
fn memory_blob_roundtrip() {
    let cs = sample_store();
    let mut store = MemBlobStore::new();
    cs.persist(&mut store, "tbl").unwrap();
    let loaded = ColumnStore::load(&store, "tbl", schema()).unwrap();
    verify_equal(&cs, &loaded);
}

#[test]
fn file_blob_roundtrip() {
    let dir = std::env::temp_dir().join(format!("cstore-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cs = sample_store();
    {
        let mut store = FileBlobStore::open(&dir).unwrap();
        cs.persist(&mut store, "tbl").unwrap();
    }
    // Re-open the directory as a fresh store (simulated restart).
    let store = FileBlobStore::open(&dir).unwrap();
    let loaded = ColumnStore::load(&store, "tbl", schema()).unwrap();
    verify_equal(&cs, &loaded);
    // The loaded store continues the row-group id sequence.
    let mut loaded = loaded;
    assert_eq!(loaded.alloc_group_id(), RowGroupId(4));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corruption_is_detected() {
    let cs = sample_store();
    let mut store = MemBlobStore::new();
    cs.persist(&mut store, "tbl").unwrap();
    // Flip one byte in the middle of a row-group blob.
    let mut blob = store.get("tbl.rg1").unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0x01;
    store.put("tbl.rg1", &blob).unwrap();
    let err = ColumnStore::load(&store, "tbl", schema()).err().unwrap();
    assert_eq!(err.code(), "STORAGE");
    assert!(err.to_string().contains("checksum"), "{err}");
}

#[test]
fn missing_blob_is_reported() {
    let cs = sample_store();
    let mut store = MemBlobStore::new();
    cs.persist(&mut store, "tbl").unwrap();
    store.delete("tbl.rg0").unwrap();
    let err = ColumnStore::load(&store, "tbl", schema()).err().unwrap();
    assert!(err.to_string().contains("not found"), "{err}");
}

#[test]
fn loaded_store_answers_queries() {
    // Persist, load, wrap into a table, and run SQL over it.
    let cs = sample_store();
    let mut store = MemBlobStore::new();
    cs.persist(&mut store, "tbl").unwrap();
    let loaded = ColumnStore::load(&store, "tbl", schema()).unwrap();
    // Rebuild a queryable table by bulk-loading the decoded rows (the
    // Database facade owns its tables; this checks decode fidelity).
    let db = cstore::Database::new().with_table_config(cstore::delta::TableConfig {
        bulk_load_threshold: 64,
        ..Default::default()
    });
    db.execute(
        "CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR, score DOUBLE, day DATE NOT NULL)",
    )
    .unwrap();
    let mut rows = Vec::new();
    for g in loaded.groups() {
        for t in 0..g.n_rows() {
            rows.push(Row::new(g.row_values(t).unwrap()));
        }
    }
    db.bulk_load("t", &rows).unwrap();
    let r = db
        .execute("SELECT COUNT(*), COUNT(name) FROM t WHERE day BETWEEN 10 AND 19")
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(1000));
    let null_names = (1000..2000).filter(|i| i % 13 == 0).count() as i64;
    assert_eq!(r.rows()[0].get(1), &Value::Int64(1000 - null_names));
}

#[test]
fn whole_database_save_open_roundtrip() {
    use cstore::delta::TableConfig;
    let dir = std::env::temp_dir().join(format!("cstore-db-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let db = cstore::Database::new().with_table_config(TableConfig {
        delta_capacity: 100,
        bulk_load_threshold: 200,
        max_rowgroup_rows: 500,
        ..Default::default()
    });
    db.execute("CREATE TABLE cs (id BIGINT NOT NULL, name VARCHAR, amt DECIMAL(6,2))")
        .unwrap();
    db.execute("CREATE TABLE hp (k BIGINT NOT NULL, v VARCHAR NOT NULL) USING HEAP")
        .unwrap();
    // Compressed rows + delta rows + deletes, so every durable structure
    // is exercised.
    let rows: Vec<Row> = (0..1000)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::str(format!("n{}", i % 13))
                },
                Value::Decimal(i * 3),
            ])
        })
        .collect();
    db.bulk_load("cs", &rows).unwrap();
    db.execute("INSERT INTO cs VALUES (5000, 'delta-row', 1.25)")
        .unwrap();
    db.execute("DELETE FROM cs WHERE id < 50").unwrap();
    db.execute("INSERT INTO hp VALUES (1, 'x'), (2, 'y')")
        .unwrap();

    let queries = [
        "SELECT COUNT(*), SUM(amt), COUNT(name) FROM cs",
        "SELECT name, COUNT(*) AS n FROM cs WHERE id BETWEEN 100 AND 600 GROUP BY name ORDER BY name",
        "SELECT COUNT(*) FROM hp WHERE v = 'x'",
    ];
    let before: Vec<_> = queries
        .iter()
        .map(|q| db.execute(q).unwrap().rows().to_vec())
        .collect();

    db.save_to(&dir).unwrap();
    let reopened = cstore::Database::open_from(&dir).unwrap();
    for (q, want) in queries.iter().zip(&before) {
        assert_eq!(&reopened.execute(q).unwrap().rows().to_vec(), want, "{q}");
    }
    // The reopened database stays writable.
    reopened
        .execute("INSERT INTO cs VALUES (9999, 'post-reopen', 0.01)")
        .unwrap();
    assert_eq!(
        reopened
            .execute("SELECT COUNT(*) FROM cs WHERE id = 9999")
            .unwrap()
            .rows()[0]
            .get(0),
        &Value::Int64(1)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
