//! Resource-governor chaos suite: the four mechanisms — admission
//! control, the shared memory ledger, delta-store backpressure and the
//! read-only health state machine — exercised end to end through the SQL
//! surface, with storage failures driven by the deterministic fault
//! injector.

use std::sync::Arc;

use cstore::common::fault::{FaultInjector, FaultKind, FaultSpec};
use cstore::common::{Error, Row, Value};
use cstore::delta::TableConfig;
use cstore::storage::blob::{BlobStore, MemBlobStore};
use cstore::storage::FaultyBlobStore;
use cstore::Database;

fn loaded_db() -> Database {
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 100,
        bulk_load_threshold: 200,
        max_rowgroup_rows: 500,
        ..TableConfig::default()
    });
    db.execute("CREATE TABLE cs (id BIGINT NOT NULL, name VARCHAR)")
        .unwrap();
    let rows: Vec<Row> = (0..2000)
        .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("n{}", i % 37))]))
        .collect();
    db.bulk_load("cs", &rows).unwrap();
    db
}

fn count(db: &Database) -> i64 {
    let r = db.execute("SELECT COUNT(*) FROM cs").unwrap();
    match r.rows()[0].get(0) {
        Value::Int64(v) => *v,
        other => panic!("expected Int64, got {other:?}"),
    }
}

/// The acceptance chaos schedule: injected ENOSPC on a blob put flips
/// the database to read-only without a panic; reads and `sys.*` views
/// keep serving; writes fail with an error naming the cause; a recovery
/// probe fails while the fault is armed and returns the database to
/// `Healthy` once it clears; every acknowledged row survives.
#[test]
fn enospc_degrades_to_read_only_and_probe_recovers() {
    let db = loaded_db();
    db.execute("INSERT INTO cs VALUES (9001, 'acked')").unwrap();
    let before = count(&db);

    let faults = FaultInjector::new(42);
    let mut store = FaultyBlobStore::new(MemBlobStore::new(), faults.clone());
    // The recovery probe round-trips a scratch blob through the same
    // injector, so recovery is only possible once the fault clears.
    {
        let faults = faults.clone();
        db.governor().set_storage_probe(move || {
            let mut probe = FaultyBlobStore::new(MemBlobStore::new(), faults.clone());
            probe.put("governor.probe", b"ok")?;
            probe.delete("governor.probe")
        });
    }

    faults.arm("blob.put", FaultSpec::new(FaultKind::IoError).always());
    let err = db.save_to_store(&mut store).unwrap_err();
    assert!(matches!(err, Error::Io(_) | Error::Storage(_)), "{err}");

    // Degraded: reads and introspection keep serving.
    let health = Arc::clone(db.governor().health());
    assert!(health.is_read_only());
    let cause = health.cause().unwrap();
    assert!(cause.contains("blob store write failure"), "{cause}");
    assert_eq!(count(&db), before);
    let r = db
        .execute("SELECT health_state, health_cause FROM sys.resource_governor")
        .unwrap();
    assert_eq!(r.rows()[0].get(0).to_string(), "READ_ONLY");
    assert!(
        r.rows()[0].get(1).to_string().contains("blob store"),
        "{:?}",
        r.rows()[0]
    );

    // Writes are rejected with the cause in the message.
    for sql in [
        "INSERT INTO cs VALUES (9002, 'rejected')",
        "UPDATE cs SET name = 'x' WHERE id = 0",
        "DELETE FROM cs WHERE id = 1",
    ] {
        let err = db.execute(sql).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("read-only"), "{sql}: {msg}");
        assert!(msg.contains("blob store write failure"), "{sql}: {msg}");
    }

    // Metrics carry the health gauge and the write-reject counter.
    let metrics = db.metrics();
    assert!(
        metrics.contains("cstore_governor_health{state=\"READ_ONLY\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("cstore_governor_write_rejects_total"),
        "{metrics}"
    );

    // A probe with the fault still armed fails and leaves us read-only.
    assert!(db.probe_recovery().is_err());
    assert!(health.is_read_only());

    // Storage recovers: the probe succeeds, writes resume, data is intact.
    faults.disarm_all();
    db.probe_recovery().unwrap();
    assert!(!health.is_read_only());
    db.execute("INSERT INTO cs VALUES (9002, 'post-recovery')")
        .unwrap();
    assert_eq!(count(&db), before + 1);
    db.save_to_store(&mut store).unwrap();
    let snap = db.governor().snapshot();
    assert!(snap.degraded_total >= 1, "{snap:?}");
    assert!(snap.write_rejects_total >= 3, "{snap:?}");
    assert!(snap.recovery_probes_total >= 2, "{snap:?}");
}

/// `SET max_concurrent_queries` caps concurrency through the admission
/// gate: with the single slot held, a query times out with an
/// actionable error; once the slot frees, queries run again.
#[test]
fn admission_gate_times_out_when_slots_are_held() {
    let db = loaded_db();
    db.execute("SET admission_timeout_ms = 100").unwrap();
    db.execute("SET max_concurrent_queries = 1").unwrap();

    let gate = Arc::clone(db.governor().admission());
    let permit = gate.admit().unwrap();
    let err = db.execute("SELECT COUNT(*) FROM cs").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("admission timeout"), "{msg}");
    assert!(msg.contains("max_concurrent_queries"), "{msg}");

    drop(permit);
    assert_eq!(count(&db), 2000);
    let snap = db.governor().snapshot();
    assert!(snap.admission_timeouts_total >= 1, "{snap:?}");
    assert!(snap.admission_rejected_total >= 1, "{snap:?}");
}

/// The `governor.admit` fault point rejects queries deterministically —
/// the chaos hook for admission failures.
#[test]
fn admit_fault_point_rejects_queries() {
    let db = loaded_db();
    let faults = FaultInjector::new(7);
    db.governor().set_fault_injector(faults.clone());
    faults.arm(
        "governor.admit",
        FaultSpec::new(FaultKind::IoError).times(1),
    );
    assert!(db.execute("SELECT COUNT(*) FROM cs").is_err());
    assert_eq!(faults.fired("governor.admit"), 1);
    assert_eq!(count(&db), 2000); // next query admits normally
}

/// Sixteen concurrent ORDER BY queries run against one small shared
/// memory ledger: each either completes (spilling under pressure) or
/// fails cleanly with the ledger-exhausted error — never a panic — and
/// all reservations are returned afterwards.
#[test]
fn concurrent_queries_share_one_memory_ledger() {
    let db = loaded_db();
    let baseline = db.governor().ledger().reserved();
    db.execute("SET memory_limit_bytes = 262144").unwrap();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let db = &db;
                s.spawn(move || {
                    let sql = format!(
                        "SELECT name, id FROM cs WHERE id >= {} ORDER BY name, id",
                        (i % 4) * 100
                    );
                    match db.execute(&sql) {
                        Ok(r) => {
                            assert!(!r.rows().is_empty());
                        }
                        Err(Error::ResourceExhausted(m)) => {
                            assert!(m.contains("memory ledger exhausted"), "{m}");
                        }
                        Err(other) => panic!("unexpected error class: {other}"),
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    let ledger = db.governor().ledger();
    assert_eq!(ledger.reserved(), baseline, "reservations must drain");
    let snap = db.governor().snapshot();
    assert!(snap.mem_peak_bytes > 0, "{snap:?}");
    assert_eq!(snap.admission_running, 0, "{snap:?}");
}

/// Delta-store backpressure through the SQL surface: with the high-water
/// mark at two closed stores and a short timeout, trickle inserts fail
/// with the backpressure error until a tuple-mover pass drains the
/// closed stores, after which inserts resume.
#[test]
fn backpressure_rejects_inserts_until_mover_drains() {
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 10,
        bulk_load_threshold: 200,
        max_rowgroup_rows: 500,
        ..TableConfig::default()
    });
    db.execute("CREATE TABLE t (id BIGINT NOT NULL)").unwrap();
    db.execute("SET delta_high_water_mark = 2").unwrap();
    db.execute("SET backpressure_timeout_ms = 50").unwrap();

    // 21 single-row inserts: two closed stores (10 rows each) plus one
    // row in the third. The high-water check runs before each insert,
    // so the fill itself never sits at the mark.
    for i in 0..21 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let err = db.execute("INSERT INTO t VALUES (99)").unwrap_err();
    match &err {
        Error::ResourceExhausted(m) => {
            assert!(m.contains("delta-store backpressure"), "{m}");
            assert!(m.contains("high-water mark 2"), "{m}");
        }
        other => panic!("expected ResourceExhausted, got {other}"),
    }

    // A mover pass compresses the closed stores; inserts resume.
    assert!(db.tuple_move("t").unwrap() > 0);
    db.execute("INSERT INTO t VALUES (99)").unwrap();
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0].get(0).to_string(), "22");

    let snap = db.governor().snapshot();
    assert!(snap.backpressure_rejected_total >= 1, "{snap:?}");
    assert_eq!(snap.backpressure_high_water, 2, "{snap:?}");
}

/// `sys.resource_governor` and the `cstore_governor_*` metric series
/// report all four mechanisms from one snapshot.
#[test]
fn sys_view_and_metrics_cover_all_mechanisms() {
    let db = loaded_db();
    let r = db
        .execute(
            "SELECT admitted_total, mem_limit_bytes, delta_high_water_mark, \
                    health_state FROM sys.resource_governor",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 1);
    assert_eq!(r.rows()[0].get(3).to_string(), "HEALTHY");

    let metrics = db.metrics();
    for series in [
        "cstore_governor_admission_running",
        "cstore_governor_admitted_total",
        "cstore_governor_mem_reserved_bytes",
        "cstore_governor_mem_limit_bytes",
        "cstore_governor_backpressure_high_water",
        "cstore_governor_health{state=\"HEALTHY\"} 1",
        "cstore_governor_degraded_total",
        "cstore_governor_recovery_probes_total",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }
}
