//! The `sys.*` virtual tables and the span tracer, end to end: the views
//! run through the ordinary planner/executor (filterable, joinable),
//! their numbers agree with table state — including deletes racing the
//! tuple mover — and `Tracer::dump_chrome_json` emits well-formed Chrome
//! trace events for a query, a mover pass and a persistence save.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cstore::common::{Row, Value};
use cstore::delta::TableConfig;
use cstore::storage::blob::MemBlobStore;
use cstore::Database;

/// A database with one columnstore: 1000 rows bulk-loaded into two
/// compressed row groups (500 rows each), one trickle-inserted delta row,
/// and `id < 10` deleted (10 deletes, all landing in group 0).
fn loaded_db() -> Database {
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 100,
        bulk_load_threshold: 200,
        max_rowgroup_rows: 500,
        ..TableConfig::default()
    });
    db.execute("CREATE TABLE cs (id BIGINT NOT NULL, name VARCHAR)")
        .unwrap();
    let rows: Vec<Row> = (0..1000)
        .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("n{}", i % 7))]))
        .collect();
    db.bulk_load("cs", &rows).unwrap();
    db.execute("INSERT INTO cs VALUES (5000, 'delta')").unwrap();
    db.execute("DELETE FROM cs WHERE id < 10").unwrap();
    db
}

fn i64_at(row: &Row, idx: usize) -> i64 {
    match row.get(idx) {
        Value::Int64(v) => *v,
        other => panic!("expected Int64, got {other:?}"),
    }
}

fn str_at(row: &Row, idx: usize) -> String {
    row.get(idx).to_string()
}

#[test]
fn row_groups_reports_states_rows_and_deletes() {
    let db = loaded_db();
    let r = db
        .execute(
            "SELECT table_name, state, total_rows, deleted_rows \
             FROM sys.row_groups ORDER BY state, total_rows",
        )
        .unwrap();
    let rows = r.rows();
    // Two COMPRESSED groups (500 rows each) and one OPEN delta store.
    assert_eq!(rows.len(), 3, "{rows:?}");
    for row in rows {
        assert_eq!(str_at(row, 0), "cs");
    }
    let compressed: Vec<_> = rows
        .iter()
        .filter(|r| str_at(r, 1) == "COMPRESSED")
        .collect();
    assert_eq!(compressed.len(), 2);
    assert!(compressed.iter().all(|r| i64_at(r, 2) == 500));
    // All 10 deletes hit compressed rows (ids 0..10 are in group 0).
    let deleted: i64 = compressed.iter().map(|r| i64_at(r, 3)).sum();
    assert_eq!(deleted, 10);
    let open: Vec<_> = rows.iter().filter(|r| str_at(r, 1) == "OPEN").collect();
    assert_eq!(open.len(), 1);
    assert_eq!(i64_at(open[0], 2), 1, "one trickle-inserted delta row");
}

#[test]
fn row_groups_is_filterable_like_any_table() {
    let db = loaded_db();
    let r = db
        .execute("SELECT COUNT(*) FROM sys.row_groups WHERE state = 'COMPRESSED'")
        .unwrap();
    assert_eq!(i64_at(&r.rows()[0], 0), 2);
    // Aggregate over view columns.
    let r = db
        .execute("SELECT SUM(total_rows) FROM sys.row_groups WHERE state = 'COMPRESSED'")
        .unwrap();
    assert_eq!(i64_at(&r.rows()[0], 0), 1000);
}

#[test]
fn column_segments_joins_dictionaries() {
    let db = loaded_db();
    // The VARCHAR column compresses behind a dictionary; the join against
    // sys.dictionaries must resolve every non-null dictionary_id.
    let r = db
        .execute(
            "SELECT s.table_name, s.column_name, s.encoding, s.compression_ratio, \
                    d.scope, d.entries \
             FROM sys.column_segments s \
             JOIN sys.dictionaries d ON s.dictionary_id = d.dictionary_id",
        )
        .unwrap();
    let rows = r.rows();
    assert!(!rows.is_empty(), "dictionary-encoded segments must join");
    for row in rows {
        assert_eq!(str_at(row, 0), "cs");
        assert_eq!(str_at(row, 1), "name");
        assert!(str_at(row, 2).starts_with("DICT_"), "{row:?}");
        // 7 distinct names over 500 rows: the dictionary is tiny.
        assert_eq!(i64_at(row, 5), 7);
    }
    // Every segment row is present even without a dictionary.
    let r = db
        .execute("SELECT COUNT(*) FROM sys.column_segments")
        .unwrap();
    assert_eq!(i64_at(&r.rows()[0], 0), 4, "2 groups x 2 columns");
}

#[test]
fn dictionary_ids_do_not_collide_across_tables() {
    // Two tables whose VARCHAR columns sit at the same column index:
    // without the table-ordinal salt both would get the same global
    // dictionary id and the join would cross-match tables.
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 100,
        bulk_load_threshold: 200,
        max_rowgroup_rows: 500,
        ..TableConfig::default()
    });
    for t in ["a", "b"] {
        db.execute(&format!(
            "CREATE TABLE {t} (id BIGINT NOT NULL, name VARCHAR)"
        ))
        .unwrap();
        let rows: Vec<Row> = (0..500)
            .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("{t}{}", i % 4))]))
            .collect();
        db.bulk_load(t, &rows).unwrap();
    }
    let r = db
        .execute(
            "SELECT s.table_name, d.table_name FROM sys.column_segments s \
             JOIN sys.dictionaries d ON s.dictionary_id = d.dictionary_id",
        )
        .unwrap();
    let rows = r.rows();
    assert!(!rows.is_empty(), "both tables' name columns join");
    for row in rows {
        assert_eq!(
            str_at(row, 0),
            str_at(row, 1),
            "a segment must only join its own table's dictionary"
        );
    }
}

#[test]
fn column_segments_reports_sane_compression() {
    let db = loaded_db();
    let r = db
        .execute(
            "SELECT encoding, row_count, encoded_bytes, raw_bytes, compression_ratio \
             FROM sys.column_segments",
        )
        .unwrap();
    for row in r.rows() {
        assert_eq!(i64_at(row, 1), 500);
        assert!(i64_at(row, 2) > 0, "encoded_bytes > 0: {row:?}");
        assert!(i64_at(row, 3) > 0, "raw_bytes > 0: {row:?}");
        let ratio = match row.get(4) {
            Value::Float64(v) => *v,
            other => panic!("expected Float64 ratio, got {other:?}"),
        };
        assert!(
            ratio > 1.0,
            "500 near-sequential/low-card rows compress: {row:?}"
        );
    }
}

#[test]
fn tuple_mover_view_tracks_registered_movers() {
    let db = loaded_db();
    let mover = db
        .start_tuple_mover("cs", std::time::Duration::from_secs(3600))
        .unwrap();
    mover.kick();
    let r = db
        .execute("SELECT table_name, state FROM sys.tuple_mover")
        .unwrap();
    assert_eq!(r.rows().len(), 1);
    assert_eq!(str_at(&r.rows()[0], 0), "cs");
    assert_eq!(str_at(&r.rows()[0], 1), "RUNNING");
    mover.stop().unwrap();
}

#[test]
fn query_log_records_successes_and_errors() {
    let db = loaded_db();
    db.execute("SELECT COUNT(*) FROM cs").unwrap();
    assert!(db.execute("SELECT nope FROM missing_table").is_err());
    let r = db
        .execute("SELECT query_id, query, status, error, rows FROM sys.query_log")
        .unwrap();
    let rows = r.rows();
    let ok: Vec<_> = rows
        .iter()
        .filter(|r| str_at(r, 1) == "SELECT COUNT(*) FROM cs")
        .collect();
    assert_eq!(ok.len(), 1);
    assert_eq!(str_at(ok[0], 2), "OK");
    assert_eq!(i64_at(ok[0], 4), 1, "COUNT(*) returns one row");
    // The errored statement is logged, not dropped.
    let err: Vec<_> = rows.iter().filter(|r| str_at(r, 2) == "ERROR").collect();
    assert_eq!(err.len(), 1);
    assert!(str_at(err[0], 3).contains("missing_table"), "{err:?}");
}

/// The satellite regression: `sys.row_groups.deleted_rows` must agree
/// with the delete bitmap even for rows deleted *while* the tuple mover
/// is compressing closed delta stores. The view snapshots groups and
/// delete counts in one critical section, so a concurrent mover pass can
/// never make it report a delete count for a group set it did not see.
#[test]
fn deleted_rows_agrees_with_bitmap_under_concurrent_mover() {
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 50,
        bulk_load_threshold: 100_000, // everything goes through delta
        max_rowgroup_rows: 50,
        ..TableConfig::default()
    });
    db.execute("CREATE TABLE cs (id BIGINT NOT NULL, name VARCHAR)")
        .unwrap();
    for i in 0..400 {
        db.execute(&format!("INSERT INTO cs VALUES ({i}, 'n{}')", i % 5))
            .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mover_db = db.clone();
    let mover_stop = stop.clone();
    let mover = std::thread::spawn(move || {
        while !mover_stop.load(Ordering::Relaxed) {
            mover_db.tuple_move("cs").unwrap();
            std::thread::yield_now();
        }
    });

    // Delete rows one by one while the mover races compression, checking
    // the view's invariants after every delete.
    let mut expected_deleted = 0i64;
    for id in (0..400).step_by(7) {
        let n = db
            .execute(&format!("DELETE FROM cs WHERE id = {id}"))
            .unwrap()
            .affected();
        assert_eq!(n, 1, "row {id} deleted exactly once");
        expected_deleted += 1;

        let r = db
            .execute(
                "SELECT state, total_rows, deleted_rows FROM sys.row_groups \
                 WHERE table_name = 'cs'",
            )
            .unwrap();
        let mut live = 0i64;
        let mut compressed_deleted = 0i64;
        for row in r.rows() {
            let total = i64_at(row, 1);
            if str_at(row, 0) == "COMPRESSED" {
                let deleted = i64_at(row, 2);
                assert!(
                    deleted <= total,
                    "deleted {deleted} exceeds group rows {total}"
                );
                compressed_deleted += deleted;
                live += total - deleted;
            } else {
                // Delta deletes remove the row outright: no tombstones.
                live += total;
            }
        }
        // The snapshot is taken in one critical section, so compressed
        // deletes never exceed the total deleted so far, and the live
        // count is exact regardless of where the mover is.
        assert!(compressed_deleted <= expected_deleted);
        assert_eq!(live, 400 - expected_deleted, "after deleting id {id}");
    }
    stop.store(true, Ordering::Relaxed);
    mover.join().unwrap();

    // Once the mover settles, the view's totals match COUNT(*) exactly.
    let r = db.execute("SELECT COUNT(*) FROM cs").unwrap();
    assert_eq!(i64_at(&r.rows()[0], 0), 400 - expected_deleted);
}

#[test]
fn trace_dump_emits_nested_chrome_events() {
    let tracer = cstore::common::trace::global();
    tracer.enable();
    // One query (parse/bind/optimize/execute spans), one mover compression
    // pass, one persistence save.
    let db = loaded_db();
    db.execute("SELECT COUNT(*) FROM cs WHERE id > 100")
        .unwrap();
    db.execute("INSERT INTO cs VALUES (6000, 'x')").unwrap();
    {
        use cstore::delta::ColumnStoreTable;
        let _: &Database = &db; // close + move via the admin API
        if let cstore::TableEntry::ColumnStore(t) = db.catalog().get("cs").unwrap() {
            let t: ColumnStoreTable = t;
            t.close_open_delta();
        }
    }
    db.tuple_move("cs").unwrap();
    let mut store = MemBlobStore::new();
    db.save_to_store(&mut store).unwrap();
    tracer.disable();

    let json = tracer.dump_chrome_json();
    // Well-formed Chrome trace envelope with complete events.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    for name in [
        "\"name\":\"query\"",
        "\"name\":\"parse\"",
        "\"name\":\"execute\"",
        "\"name\":\"mover.pass\"",
        "\"name\":\"compress_rowgroup\"",
        "\"name\":\"segment.encode\"",
        "\"name\":\"persist.save\"",
        "\"ph\":\"X\"",
    ] {
        assert!(json.contains(name), "missing {name} in {json}");
    }
    // Nesting is recorded: the parse span sits below the query span
    // (args also carry the wait time accumulated while the span was
    // open — see sys.wait_stats).
    assert!(
        json.contains("\"args\":{\"depth\":1,\"wait_ns\":"),
        "{json}"
    );
    tracer.clear();
}

/// `sys.wal` runs through the ordinary planner: empty with no WAL
/// attached, counts appends/fsyncs/segments once one is, and reflects
/// checkpoint retirement after a crash-atomic save.
#[test]
fn wal_view_tracks_appends_and_checkpoint_retirement() {
    // No WAL attached: the view is present but empty.
    let plain = loaded_db();
    let rows = plain.execute("SELECT COUNT(*) FROM sys.wal").unwrap();
    assert_eq!(i64_at(&rows.rows()[0], 0), 0);

    let mut db = Database::new();
    db.execute("CREATE TABLE w (id BIGINT NOT NULL)").unwrap();
    let mut disk = MemBlobStore::new();
    db.save_to_store(&mut disk).unwrap(); // generation 1: catalog baseline
    db.attach_wal_store(
        Box::new(cstore::storage::MemLogStore::new()),
        cstore::delta::WalOptions {
            segment_bytes: 256,
            strict: true,
        },
        None,
    )
    .unwrap();

    for i in 0..30i64 {
        db.execute(&format!("INSERT INTO w VALUES ({i})")).unwrap();
    }
    let rows = db
        .execute(
            "SELECT records_appended, fsyncs, segment_count, checkpoints, tail_lsn, durable_lsn \
             FROM sys.wal",
        )
        .unwrap();
    let r = &rows.rows()[0];
    assert!(i64_at(r, 0) >= 30, "appends: {r:?}");
    assert!(i64_at(r, 1) >= 1, "fsyncs: {r:?}");
    assert!(i64_at(r, 2) >= 2, "tiny segments must rotate: {r:?}");
    assert_eq!(i64_at(r, 3), 0, "no checkpoint yet: {r:?}");
    assert_eq!(i64_at(r, 4), i64_at(r, 5), "all commits acknowledged");

    // A save checkpoints the log and retires fully-covered segments.
    db.save_to_store(&mut disk).unwrap();
    let rows = db
        .execute("SELECT checkpoints, segments_retired, checkpoint_generation FROM sys.wal")
        .unwrap();
    let r = &rows.rows()[0];
    assert_eq!(i64_at(r, 0), 1, "{r:?}");
    assert!(i64_at(r, 1) >= 1, "covered segments retire: {r:?}");
    assert_eq!(i64_at(r, 2), 2, "checkpoint records the generation: {r:?}");

    // Filterable like any other table.
    let rows = db
        .execute("SELECT COUNT(*) FROM sys.wal WHERE records_appended > 0")
        .unwrap();
    assert_eq!(i64_at(&rows.rows()[0], 0), 1);
}

/// `sys.lock_stats` surfaces the lockdep registry through the ordinary
/// planner: every leveled engine lock appears with its LOCK_ORDER.md
/// level, query activity bumps the acquisition counters, and the engine
/// records zero order violations.
#[test]
fn lock_stats_view_exposes_leveled_locks() {
    let db = loaded_db();
    db.execute("SELECT COUNT(*) FROM cs").unwrap();

    // The catalog map is consulted on every statement, so its counter is
    // hot by now; its level matches the LOCK_ORDER.md declaration.
    let rows = db
        .execute("SELECT level, acquisitions FROM sys.lock_stats WHERE name = 'catalog.tables'")
        .unwrap();
    let r = &rows.rows()[0];
    assert_eq!(i64_at(r, 0), 1, "catalog.tables is level 1: {r:?}");
    assert!(i64_at(r, 1) > 0, "catalog map was acquired: {r:?}");

    // Same for the per-table state lock, and nothing inverted.
    let rows = db
        .execute("SELECT acquisitions, violations FROM sys.lock_stats WHERE name = 'table.inner'")
        .unwrap();
    let r = &rows.rows()[0];
    assert!(i64_at(r, 0) > 0, "table.inner was acquired: {r:?}");
    assert_eq!(i64_at(r, 1), 0, "no lock-order violations: {r:?}");

    // Filterable/aggregable like any other table.
    let rows = db
        .execute("SELECT COUNT(*) FROM sys.lock_stats WHERE violations = 0 AND acquisitions > 0")
        .unwrap();
    assert!(i64_at(&rows.rows()[0], 0) >= 2, "{rows:?}");
}

/// `sys.resource_governor` is a one-row view over the governor snapshot:
/// admission counters move with query traffic, SET statements show up in
/// the configured limits, and the health columns render HEALTHY/NULL on
/// an undamaged database.
#[test]
fn resource_governor_view_reports_admission_and_limits() {
    let db = loaded_db();
    db.execute("SET max_concurrent_queries = 7").unwrap();
    db.execute("SET memory_limit_bytes = 123456789").unwrap();
    db.execute("SET delta_high_water_mark = 9").unwrap();
    let rows = db
        .execute(
            "SELECT admitted_total, max_concurrent_queries, mem_limit_bytes, \
                    delta_high_water_mark, health_state, health_cause, write_rejects_total \
             FROM sys.resource_governor",
        )
        .unwrap();
    assert_eq!(rows.rows().len(), 1);
    let r = &rows.rows()[0];
    // loaded_db ran several statements, plus the SETs and this SELECT.
    assert!(i64_at(r, 0) >= 5, "admitted_total: {r:?}");
    assert_eq!(i64_at(r, 1), 7);
    assert_eq!(i64_at(r, 2), 123_456_789);
    assert_eq!(i64_at(r, 3), 9);
    assert_eq!(str_at(r, 4), "HEALTHY");
    assert!(matches!(r.get(5), Value::Null), "{r:?}");
    assert_eq!(i64_at(r, 6), 0);
}

/// The `state`/`last_error` columns of `sys.wal` report OK/NULL on a
/// healthy log and are queryable through ordinary filters.
#[test]
fn wal_view_state_column_reports_ok_when_healthy() {
    let mut db = Database::new();
    db.execute("CREATE TABLE w (id BIGINT NOT NULL)").unwrap();
    db.attach_wal_store(
        Box::new(cstore::storage::MemLogStore::new()),
        cstore::delta::WalOptions::default(),
        None,
    )
    .unwrap();
    db.execute("INSERT INTO w VALUES (1)").unwrap();
    let rows = db
        .execute("SELECT state, last_error FROM sys.wal WHERE state = 'OK'")
        .unwrap();
    assert_eq!(rows.rows().len(), 1);
    let r = &rows.rows()[0];
    assert_eq!(str_at(r, 0), "OK");
    assert!(matches!(r.get(1), Value::Null), "{r:?}");
}

/// `SET wal_sync` round-trips through SQL and `sys.wal.sync_mode`, and a
/// multi-row `INSERT ... VALUES` is one WAL frame and one fsync per
/// statement — the batched trickle path, not row-at-a-time commits.
#[test]
fn wal_sync_knob_and_batched_insert_fsync_count() {
    let mut db = Database::new();
    db.execute("CREATE TABLE w (id BIGINT NOT NULL)").unwrap();
    db.attach_wal_store(
        Box::new(cstore::storage::MemLogStore::new()),
        cstore::delta::WalOptions::default(),
        None,
    )
    .unwrap();

    let sync_mode = |db: &Database| {
        str_at(
            &db.execute("SELECT sync_mode FROM sys.wal").unwrap().rows()[0],
            0,
        )
    };
    assert_eq!(sync_mode(&db), "group", "group commit is the default");

    // One 40-row statement: one InsertBatch frame, one fsync.
    let before = db.wal_status().unwrap().counters;
    let values = (0..40)
        .map(|i| format!("({i})"))
        .collect::<Vec<_>>()
        .join(", ");
    let res = db
        .execute(&format!("INSERT INTO w VALUES {values}"))
        .unwrap();
    assert_eq!(res.affected(), 40);
    let after = db.wal_status().unwrap().counters;
    assert_eq!(
        after.records_appended - before.records_appended,
        1,
        "a multi-row INSERT must log one batch frame"
    );
    assert_eq!(
        after.fsyncs - before.fsyncs,
        1,
        "a multi-row INSERT must cost one fsync"
    );

    // The knob accepts all three modes and rejects junk.
    for mode in ["strict", "off", "group"] {
        db.execute(&format!("SET wal_sync = {mode}")).unwrap();
        assert_eq!(sync_mode(&db), mode);
    }
    assert!(db.execute("SET wal_sync = fast").is_err());
    assert!(db.execute("SET wal_sync = 1").is_err());
    assert!(db.execute("SET query_timeout_ms = group").is_err());

    // The mode set before a WAL is attached applies at attach time.
    let mut late = Database::new();
    late.execute("CREATE TABLE w (id BIGINT NOT NULL)").unwrap();
    late.execute("SET wal_sync = strict").unwrap();
    late.attach_wal_store(
        Box::new(cstore::storage::MemLogStore::new()),
        cstore::delta::WalOptions::default(),
        None,
    )
    .unwrap();
    assert_eq!(sync_mode(&late), "strict");
}
