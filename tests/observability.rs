//! Observability suite: per-query ExecStats, EXPLAIN ANALYZE actuals,
//! and the database-wide metrics dump.
//!
//! The star-schema fixture is sized so the interesting counters have
//! independently computable expected values: 4,000 fact rows in row
//! groups of 1,000, `day = id / 100` (so a day predicate maps to exactly
//! one group), and `cust_id = id % 20` joined against 20 customers split
//! evenly between two regions (so a region filter's bitmap prunes
//! exactly half the scanned fact rows).

use std::time::Duration;

use cstore::common::{Row, Value};
use cstore::delta::TableConfig;
use cstore::{Database, QueryResult};

fn db() -> Database {
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 100,
        bulk_load_threshold: 500,
        max_rowgroup_rows: 1000,
        ..TableConfig::default()
    });
    db.execute(
        "CREATE TABLE sales (id BIGINT NOT NULL, cust_id BIGINT NOT NULL, \
         amount DOUBLE, day DATE NOT NULL)",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE customers (id BIGINT NOT NULL, name VARCHAR NOT NULL, \
         region VARCHAR NOT NULL)",
    )
    .unwrap();
    let rows: Vec<Row> = (0..4000)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i),
                Value::Int64(i % 20),
                Value::Float64((i % 100) as f64),
                Value::Date((i / 100) as i32),
            ])
        })
        .collect();
    db.bulk_load("sales", &rows).unwrap();
    let custs: Vec<Row> = (0..20)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i),
                Value::str(format!("cust{i}")),
                Value::str(["north", "south"][(i % 2) as usize]),
            ])
        })
        .collect();
    db.bulk_load("customers", &custs).unwrap();
    db
}

fn metric(metrics: &[(&'static str, u64)], name: &str) -> u64 {
    metrics
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |(_, v)| *v)
}

/// Pull `rows=N` out of an EXPLAIN ANALYZE line.
fn actual_rows(line: &str) -> u64 {
    let tail = line.split("[actual rows=").nth(1).unwrap_or_else(|| {
        panic!("no [actual rows=...] annotation in line: {line}");
    });
    tail.split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap()
}

#[test]
fn per_query_metrics_report_elimination_and_bitmap_prunes() {
    let db = db();
    let r = db
        .execute(
            "SELECT c.region, COUNT(*) AS n FROM sales s \
             JOIN customers c ON s.cust_id = c.id \
             WHERE s.day < DATE 10 AND c.region = 'north' GROUP BY c.region",
        )
        .unwrap();
    assert_eq!(r.rows()[0].get(1), &Value::Int64(500));
    let QueryResult::Rows { metrics, .. } = r else {
        panic!("expected rows");
    };
    // day < 10 → ids 0..1000 → row group 0 of 4: three groups eliminated.
    assert_eq!(metric(&metrics, "groups_scanned"), 1, "{metrics:?}");
    assert_eq!(metric(&metrics, "groups_eliminated"), 3, "{metrics:?}");
    // The region bitmap admits the 10 even cust_ids: of the 1,000
    // scanned fact rows, the 500 with odd cust_id are pruned.
    assert_eq!(metric(&metrics, "rows_dropped_by_bitmap"), 500);
    assert!(metric(&metrics, "bitmap_probes") >= 1000);
    assert_eq!(metric(&metrics, "bitmap_filters_exact"), 1);
    assert_eq!(metric(&metrics, "bitmap_filters_bloom"), 0);
    // Build side: the 10 north customers; probe side: surviving fact rows.
    assert_eq!(metric(&metrics, "join_build_rows"), 10);
    assert_eq!(metric(&metrics, "join_probe_rows"), 500);
    // Metrics are per-query: an unrelated query reports its own counters,
    // not an accumulation.
    let r2 = db.execute("SELECT COUNT(*) FROM customers").unwrap();
    let QueryResult::Rows { metrics: m2, .. } = r2 else {
        panic!("expected rows");
    };
    assert_eq!(metric(&m2, "rows_dropped_by_bitmap"), 0);
    assert_eq!(metric(&m2, "groups_eliminated"), 0);
}

#[test]
fn explain_analyze_actuals_match_executed_query() {
    let db = db();
    let sql = "SELECT c.region, COUNT(*) AS n FROM sales s \
               JOIN customers c ON s.cust_id = c.id \
               WHERE s.day < DATE 10 AND c.region = 'north' GROUP BY c.region";
    let baseline = db.execute(sql).unwrap();
    let n_result_rows = baseline.rows().len() as u64;

    let r = db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    let QueryResult::Explain(text) = r else {
        panic!("expected explain output, got {r:?}");
    };
    println!("{text}"); // ci.sh greps this smoke output
                        // Every operator line carries actuals.
    let op_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("(~") && !l.starts_with("mode="))
        .collect();
    assert!(op_lines.len() >= 4, "{text}");
    for l in &op_lines {
        assert!(l.contains("[actual rows="), "missing actuals: {l}");
        assert!(l.contains("time="), "missing timing: {l}");
    }
    // The root operator's actual row count is the result cardinality.
    assert_eq!(actual_rows(op_lines[0]), n_result_rows, "{text}");
    assert!(text.contains(&format!("rows returned={n_result_rows}")));
    // The join's actual output equals the independently computed
    // post-bitmap row count.
    let join_line = op_lines
        .iter()
        .find(|l| l.contains("HashJoin"))
        .unwrap_or_else(|| panic!("no join in {text}"));
    assert_eq!(actual_rows(join_line), 500, "{text}");
    // Counter footer: elimination and bitmap prunes with exact values.
    assert!(text.contains("groups_eliminated=3"), "{text}");
    assert!(text.contains("pruned=500"), "{text}");
    assert!(text.contains("exact=1"), "{text}");
}

#[test]
fn explain_without_analyze_reports_no_actuals() {
    let db = db();
    let r = db
        .execute("EXPLAIN SELECT COUNT(*) FROM sales WHERE day = 3")
        .unwrap();
    let QueryResult::Explain(text) = r else {
        panic!("expected explain output");
    };
    assert!(!text.contains("[actual"), "{text}");
    assert!(!text.contains("actuals:"), "{text}");
}

#[test]
fn database_metrics_dump_is_complete() {
    let db = db();
    db.execute("SELECT COUNT(*) FROM sales WHERE day = 3")
        .unwrap();
    // Trickle rows so the mover has delta stores to move, then run one
    // supervised pass and stop; the status handle outlives the mover.
    for i in 0..150 {
        db.execute(&format!(
            "INSERT INTO sales VALUES ({}, 1, 1.0, 0)",
            10_000 + i
        ))
        .unwrap();
    }
    let mover = db
        .start_tuple_mover("sales", Duration::from_secs(3600))
        .unwrap();
    mover.kick();
    mover.stop().unwrap();
    let text = db.metrics();
    // Query counters from the process-wide registry.
    assert!(text.contains("cstore_queries_total"), "{text}");
    assert!(text.contains("cstore_query_latency_us_bucket"), "{text}");
    assert!(text.contains("cstore_query_rows_scanned_total"), "{text}");
    // Tuple-mover counters, labelled by table.
    assert!(
        text.contains("cstore_mover_passes{table=\"sales\"}"),
        "{text}"
    );
    assert!(
        text.contains("cstore_mover_rows_moved{table=\"sales\"}"),
        "{text}"
    );
    // Recovery quarantine gauges are present (zero for a fresh database).
    assert!(text.contains("cstore_open_quarantined_blobs 0"), "{text}");
    assert!(text.contains("cstore_open_skipped_manifests 0"), "{text}");
}

#[test]
fn cumulative_context_metrics_still_accumulate_across_queries() {
    let db = db();
    let before = metric(&db.exec_context().metrics.snapshot(), "rows_scanned");
    db.execute("SELECT COUNT(*) FROM sales").unwrap();
    db.execute("SELECT COUNT(*) FROM sales").unwrap();
    let after = metric(&db.exec_context().metrics.snapshot(), "rows_scanned");
    // Two full scans of 4,000 rows folded back into the shared context —
    // the bench binaries rely on these before/after deltas.
    assert_eq!(after - before, 8000);
}
