//! Robustness: hostile inputs must produce errors, never panics or
//! silent corruption — untrusted bytes hit the storage format and the SQL
//! parser first, so both get fuzz-style property tests.

use proptest::prelude::*;

use cstore::storage::format::{deserialize_segment, serialize_segment};
use cstore::storage::CompressedRowGroup;
use cstore::common::{DataType, Field, Schema, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn segment_deserializer_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Random bytes: must return Err, not panic (the checksum rejects
        // almost everything; what slips past must fail structurally).
        let _ = deserialize_segment(&data);
    }

    #[test]
    fn rowgroup_deserializer_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let schema = Schema::new(vec![Field::not_null("a", DataType::Int64)]);
        let _ = CompressedRowGroup::deserialize(&data, schema);
    }

    #[test]
    fn bitflipped_segment_is_rejected(
        values in proptest::collection::vec(-1000i64..1000, 1..200),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let vals: Vec<Value> = values.iter().map(|&v| Value::Int64(v)).collect();
        let seg = cstore::storage::builder::encode_column(DataType::Int64, &vals, None).unwrap();
        let mut bytes = serialize_segment(&seg);
        let idx = flip_at.index(bytes.len());
        bytes[idx] ^= 1 << flip_bit;
        // Either the checksum catches it, or (if the flip hit the checksum
        // itself... no: flipping the checksum also mismatches). Must error.
        prop_assert!(deserialize_segment(&bytes).is_err());
    }

    #[test]
    fn archival_decompressor_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = cstore::storage::archive::decompress(&data);
    }

    #[test]
    fn sql_parser_never_panics(input in "[ -~]{0,120}") {
        // Printable-ASCII soup: parse must return Ok or Err, never panic.
        let _ = cstore::sql::parse(&input);
    }

    #[test]
    fn sql_parser_handles_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("JOIN"),
                Just("GROUP"), Just("BY"), Just("("), Just(")"), Just(","),
                Just("*"), Just("="), Just("<"), Just("AND"), Just("NOT"),
                Just("t"), Just("x"), Just("1"), Just("'s'"), Just("NULL"),
                Just("BETWEEN"), Just("IN"), Just("ORDER"), Just("LIMIT"),
                Just("UNION"), Just("ALL"), Just("DISTINCT"),
            ],
            0..25,
        )
    ) {
        let sql = tokens.join(" ");
        let _ = cstore::sql::parse(&sql);
    }

    #[test]
    fn executor_rejects_garbage_gracefully(
        sql in "SELECT [a-z]{1,3} FROM [a-z]{1,3}( WHERE [a-z]{1,3} (=|<|>) [0-9]{1,3})?",
    ) {
        // Random references against a real catalog: unknown names must be
        // catalog errors, not panics; valid accidents must run.
        let db = cstore::Database::new();
        db.execute("CREATE TABLE abc (a BIGINT, b BIGINT, c VARCHAR)").unwrap();
        let _ = db.execute(&sql);
    }
}

#[test]
fn deeply_nested_expressions_are_rejected_not_overflowed() {
    // Unbounded nesting must hit the parser's depth limit (a clean error),
    // not the thread's stack. 32 levels parse fine; 1000 must error.
    let nested = |n: usize| {
        let mut sql = String::from("SELECT ");
        sql.extend(std::iter::repeat_n('(', n));
        sql.push('1');
        sql.extend(std::iter::repeat_n(')', n));
        sql.push_str(" FROM t");
        sql
    };
    assert!(cstore::sql::parse(&nested(32)).is_ok());
    let err = cstore::sql::parse(&nested(1000)).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
}
