//! Robustness: hostile inputs must produce errors, never panics or
//! silent corruption — untrusted bytes hit the storage format and the SQL
//! parser first, so both get fuzz-style randomized tests. Deterministic
//! seeded `Rng` replaces proptest so the suite builds offline.

use cstore::common::testutil::Rng;
use cstore::common::{DataType, Field, Schema, Value};
use cstore::storage::format::{deserialize_segment, serialize_segment};
use cstore::storage::CompressedRowGroup;

fn random_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let n = rng.range_usize(0, max_len);
    (0..n).map(|_| rng.next_u32() as u8).collect()
}

#[test]
fn segment_deserializer_never_panics() {
    // Random bytes: must return Err, not panic (the checksum rejects
    // almost everything; what slips past must fail structurally).
    let mut rng = Rng::new(0x5E6);
    for _ in 0..256 {
        let data = random_bytes(&mut rng, 2048);
        let _ = deserialize_segment(&data);
    }
}

#[test]
fn rowgroup_deserializer_never_panics() {
    let mut rng = Rng::new(0x269);
    for _ in 0..256 {
        let data = random_bytes(&mut rng, 2048);
        let schema = Schema::new(vec![Field::not_null("a", DataType::Int64)]);
        let _ = CompressedRowGroup::deserialize(&data, schema);
    }
}

#[test]
fn bitflipped_segment_is_rejected() {
    let mut rng = Rng::new(0xB1F);
    for case in 0..256 {
        let n = rng.range_usize(1, 200);
        let vals: Vec<Value> = (0..n)
            .map(|_| Value::Int64(rng.range_i64(-1000, 1000)))
            .collect();
        let seg = cstore::storage::builder::encode_column(DataType::Int64, &vals, None).unwrap();
        let mut bytes = serialize_segment(&seg).unwrap();
        let idx = rng.range_usize(0, bytes.len());
        let bit = rng.range_usize(0, 8);
        bytes[idx] ^= 1 << bit;
        // Either the checksum catches it, or (if the flip hit the checksum
        // itself... no: flipping the checksum also mismatches). Must error.
        assert!(
            deserialize_segment(&bytes).is_err(),
            "case {case}: accepted corrupted byte {idx} bit {bit}"
        );
    }
}

#[test]
fn archival_decompressor_never_panics() {
    let mut rng = Rng::new(0xA2C);
    for _ in 0..256 {
        let data = random_bytes(&mut rng, 2048);
        let _ = cstore::storage::archive::decompress(&data);
    }
}

#[test]
fn sql_parser_never_panics() {
    // Printable-ASCII soup: parse must return Ok or Err, never panic.
    let mut rng = Rng::new(0x501);
    for _ in 0..256 {
        let len = rng.range_usize(0, 121);
        let input: String = (0..len)
            .map(|_| rng.range_i64(0x20, 0x7f) as u8 as char)
            .collect();
        let _ = cstore::sql::parse(&input);
    }
}

#[test]
fn sql_parser_handles_token_soup() {
    const TOKENS: [&str; 26] = [
        "SELECT", "FROM", "WHERE", "JOIN", "GROUP", "BY", "(", ")", ",", "*", "=", "<", "AND",
        "NOT", "t", "x", "1", "'s'", "NULL", "BETWEEN", "IN", "ORDER", "LIMIT", "UNION", "ALL",
        "DISTINCT",
    ];
    let mut rng = Rng::new(0x70C);
    for _ in 0..256 {
        let n = rng.range_usize(0, 25);
        let sql = (0..n)
            .map(|_| TOKENS[rng.range_usize(0, TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = cstore::sql::parse(&sql);
    }
}

#[test]
fn executor_rejects_garbage_gracefully() {
    // Random references against a real catalog: unknown names must be
    // catalog errors, not panics; valid accidents must run.
    let db = cstore::Database::new();
    db.execute("CREATE TABLE abc (a BIGINT, b BIGINT, c VARCHAR)")
        .unwrap();
    let mut rng = Rng::new(0xE6C);
    let ident = |rng: &mut Rng| -> String {
        let len = rng.range_usize(1, 4);
        (0..len)
            .map(|_| (b'a' + rng.range_i64(0, 26) as u8) as char)
            .collect()
    };
    for _ in 0..256 {
        let mut sql = format!("SELECT {} FROM {}", ident(&mut rng), ident(&mut rng));
        if rng.gen_bool(0.5) {
            let op = ["=", "<", ">"][rng.range_usize(0, 3)];
            sql.push_str(&format!(
                " WHERE {} {op} {}",
                ident(&mut rng),
                rng.range_i64(0, 1000)
            ));
        }
        let _ = db.execute(&sql);
    }
}

#[test]
fn deeply_nested_expressions_are_rejected_not_overflowed() {
    // Unbounded nesting must hit the parser's depth limit (a clean error),
    // not the thread's stack. 32 levels parse fine; 1000 must error.
    let nested = |n: usize| {
        let mut sql = String::from("SELECT ");
        sql.extend(std::iter::repeat_n('(', n));
        sql.push('1');
        sql.extend(std::iter::repeat_n(')', n));
        sql.push_str(" FROM t");
        sql
    };
    assert!(cstore::sql::parse(&nested(32)).is_ok());
    let err = cstore::sql::parse(&nested(1000)).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
}
