//! Concurrency: the updatable columnstore must stay consistent under
//! concurrent readers, writers and the background tuple mover — the
//! operational mode the paper's design (snapshots + delta stores +
//! delete bitmap) exists to support.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cstore::common::{Row, Value};
use cstore::delta::{TableConfig, TupleMover};
use cstore::{Database, ExecMode};

fn make_db() -> Database {
    let db = Database::new()
        .with_exec_mode(ExecMode::Batch)
        .with_table_config(TableConfig {
            delta_capacity: 2_000,
            bulk_load_threshold: 10_000,
            max_rowgroup_rows: 20_000,
            ..Default::default()
        });
    db.execute("CREATE TABLE ledger (id BIGINT NOT NULL, amount BIGINT NOT NULL)")
        .unwrap();
    db
}

#[test]
fn readers_see_consistent_sums_during_writes() {
    // Writers insert matched pairs (+x, -x), so any consistent snapshot
    // sums to zero. Readers must never observe a half-applied pair.
    let db = make_db();
    // Pre-seed with pairs through the bulk path.
    let seed: Vec<Row> = (0..20_000)
        .flat_map(|i| {
            [
                Row::new(vec![Value::Int64(2 * i), Value::Int64(7)]),
                Row::new(vec![Value::Int64(2 * i + 1), Value::Int64(-7)]),
            ]
        })
        .collect();
    db.bulk_load("ledger", &seed).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writer_db = db.clone();
    let writer_stop = stop.clone();
    let writer = std::thread::spawn(move || {
        let mut i: i64 = 1_000_000;
        while !writer_stop.load(Ordering::Relaxed) {
            // One INSERT statement with both rows: atomic within the
            // table's write lock per statement pair is NOT guaranteed, so
            // insert both in one statement.
            writer_db
                .execute(&format!(
                    "INSERT INTO ledger VALUES ({}, 13), ({}, -13)",
                    i,
                    i + 1
                ))
                .unwrap();
            i += 2;
        }
        i - 1_000_000
    });

    let mover = {
        let entry = db.catalog().try_get("ledger").unwrap();
        let cstore::TableEntry::ColumnStore(t) = entry else {
            panic!()
        };
        TupleMover::start(t, Duration::from_millis(3)).unwrap()
    };

    // Readers: the pre-seeded prefix always sums to zero regardless of
    // in-flight pairs.
    let deadline = std::time::Instant::now() + Duration::from_millis(600);
    let mut checks = 0;
    while std::time::Instant::now() < deadline {
        let r = db
            .execute("SELECT SUM(amount), COUNT(*) FROM ledger WHERE id < 1000000")
            .unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Int64(0), "prefix sum drifted");
        assert_eq!(r.rows()[0].get(1), &Value::Int64(40_000));
        checks += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let inserted = writer.join().unwrap();
    mover.stop().unwrap();
    assert!(checks > 5, "only {checks} reader checks ran");
    // Quiesced: everything adds up.
    let r = db
        .execute("SELECT SUM(amount), COUNT(*) FROM ledger")
        .unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(0));
    assert_eq!(
        r.rows()[0].get(1),
        &Value::Int64(40_000 + inserted),
        "lost or duplicated inserts"
    );
}

#[test]
fn concurrent_deletes_and_mover_lose_nothing() {
    let db = make_db();
    let rows: Vec<Row> = (0..30_000)
        .map(|i| Row::new(vec![Value::Int64(i), Value::Int64(1)]))
        .collect();
    db.bulk_load("ledger", &rows).unwrap();
    // Plus a delta tail.
    for i in 30_000..33_000 {
        db.execute(&format!("INSERT INTO ledger VALUES ({i}, 1)"))
            .unwrap();
    }
    let entry = db.catalog().try_get("ledger").unwrap();
    let cstore::TableEntry::ColumnStore(t) = entry else {
        panic!()
    };
    let mover = TupleMover::start(t, Duration::from_millis(1)).unwrap();
    // Delete every third row by predicate while the mover churns.
    let deleted = db
        .execute("DELETE FROM ledger WHERE id >= 30000 AND id < 31000")
        .unwrap()
        .affected();
    assert_eq!(deleted, 1000);
    std::thread::sleep(Duration::from_millis(50));
    mover.stop().unwrap();
    let r = db.execute("SELECT COUNT(*) FROM ledger").unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int64(33_000 - 1000));
}

/// With the `lockdep` feature on, the runtime checker aborts a real
/// inversion loudly: acquiring a lower-leveled lock while a higher one
/// is held panics with both lock names. (Integration tests compile the
/// library without `cfg(test)`, so this only fires under the feature —
/// exactly the release-diagnostics configuration ci.sh exercises.)
#[cfg(feature = "lockdep")]
#[test]
fn lockdep_feature_panics_on_deliberate_inversion() {
    use cstore::common::sync::Mutex;

    // Levels far above the engine's 1–11 band so this test cannot
    // interfere with real engine locks on other threads.
    let err = std::thread::spawn(|| {
        let low = Mutex::new_leveled(901, "itest.low", 0);
        let high = Mutex::new_leveled(902, "itest.high", 0);
        let _hi = high.lock();
        let _lo = low.lock(); // 901 <= 902: inversion
    })
    .join()
    .expect_err("inversion must panic under the lockdep feature");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("itest.low"), "{msg}");
    assert!(msg.contains("itest.high"), "{msg}");
    assert!(msg.contains("LOCK_ORDER.md"), "{msg}");

    // And the well-ordered path stays silent.
    std::thread::spawn(|| {
        let low = Mutex::new_leveled(901, "itest.low", 0);
        let high = Mutex::new_leveled(902, "itest.high", 0);
        let _lo = low.lock();
        let _hi = high.lock();
    })
    .join()
    .expect("ascending order must not panic");
}
