//! Plan rendering (`EXPLAIN`).

use crate::catalog::CatalogProvider;
use crate::cost::{batch_mode_cost, choose_mode, row_mode_cost, ExecMode};
use crate::logical::LogicalPlan;
use crate::rules::estimate_rows;

/// Render a logical plan with the optimizer's annotations: chosen mode,
/// estimated cardinalities and costs, pushed predicates and projections.
pub fn explain(plan: &LogicalPlan, catalog: &dyn CatalogProvider, mode: ExecMode) -> String {
    let chosen = choose_mode(mode, plan, catalog);
    let mut out = String::new();
    out.push_str(&format!(
        "mode={chosen:?} (row_cost={:.0}, batch_cost={:.0})\n",
        row_mode_cost(plan, catalog),
        batch_mode_cost(plan, catalog)
    ));
    render(plan, catalog, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(plan: &LogicalPlan, catalog: &dyn CatalogProvider, depth: usize, out: &mut String) {
    indent(out, depth);
    let est = estimate_rows(plan, catalog);
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            pushed,
            ..
        } => {
            out.push_str(&format!("Scan {table}"));
            if let Some(p) = projection {
                out.push_str(&format!(" cols={p:?}"));
            }
            if !pushed.is_empty() {
                out.push_str(" pushed=[");
                for (i, (col, pred)) in pushed.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("col{col} {pred}"));
                }
                out.push(']');
            }
        }
        LogicalPlan::Filter { predicate, .. } => {
            out.push_str(&format!("Filter {predicate:?}"));
        }
        LogicalPlan::Project { names, .. } => {
            out.push_str(&format!("Project {names:?}"));
        }
        LogicalPlan::Join {
            join_type,
            on_left,
            on_right,
            ..
        } => {
            out.push_str(&format!(
                "HashJoin {join_type:?} on left{on_left:?} = right{on_right:?}"
            ));
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            out.push_str(&format!(
                "HashAggregate groups={} aggs={}",
                group_by.len(),
                aggs.len()
            ));
        }
        LogicalPlan::Sort { keys, limit, .. } => {
            out.push_str(&format!("Sort keys={}", keys.len()));
            if let Some(l) = limit {
                out.push_str(&format!(" limit={l}"));
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            out.push_str(&format!("UnionAll inputs={}", inputs.len()));
        }
    }
    out.push_str(&format!("  (~{est:.0} rows)\n"));
    for child in plan.children() {
        render(child, catalog, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemoryCatalog;
    use cstore_common::{DataType, Field, Schema};
    use cstore_exec::Expr;
    use cstore_storage::pred::{CmpOp, ColumnPred};

    #[test]
    fn explain_renders_tree() {
        let catalog = MemoryCatalog::new();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                schema: Schema::new(vec![Field::not_null("a", DataType::Int64)]),
                projection: Some(vec![0]),
                pushed: vec![(
                    0,
                    ColumnPred::Cmp {
                        op: CmpOp::Gt,
                        value: cstore_common::Value::Int64(5),
                    },
                )],
            }),
            predicate: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(100i64)),
        };
        let text = explain(&plan, &catalog, ExecMode::Batch);
        assert!(text.contains("mode=Batch"));
        assert!(text.contains("Scan t"));
        assert!(text.contains("pushed=[col0 > 5]"));
        assert!(text.contains("Filter"));
    }
}
