//! Plan rendering (`EXPLAIN` and `EXPLAIN ANALYZE`).

use std::time::Duration;

use cstore_common::waits::WaitProfile;
use cstore_exec::{ExecStats, Metrics};

use crate::catalog::CatalogProvider;
use crate::cost::{batch_mode_cost, choose_mode, row_mode_cost, ExecMode};
use crate::logical::LogicalPlan;
use crate::rules::estimate_rows;

/// Render a logical plan with the optimizer's annotations: chosen mode,
/// estimated cardinalities and costs, pushed predicates and projections.
pub fn explain(plan: &LogicalPlan, catalog: &dyn CatalogProvider, mode: ExecMode) -> String {
    let chosen = choose_mode(mode, plan, catalog);
    let mut out = String::new();
    out.push_str(&format!(
        "mode={chosen:?} (row_cost={:.0}, batch_cost={:.0})\n",
        row_mode_cost(plan, catalog),
        batch_mode_cost(plan, catalog)
    ));
    render(plan, catalog, 0, &mut out);
    out
}

/// Render a plan annotated with per-operator actuals after execution.
///
/// `stats`/`metrics`/`rows_returned`/`elapsed` come from draining the
/// physical plan built with the same logical tree: `ExecStats` node
/// indices are pre-order positions, the numbering both
/// `physical::build_physical` and this renderer walk.
pub fn explain_analyze(
    plan: &LogicalPlan,
    catalog: &dyn CatalogProvider,
    mode: ExecMode,
    stats: &ExecStats,
    metrics: &Metrics,
    waits: &WaitProfile,
    rows_returned: usize,
    elapsed: Duration,
) -> String {
    let chosen = choose_mode(mode, plan, catalog);
    let mut out = String::new();
    out.push_str(&format!(
        "mode={chosen:?} (row_cost={:.0}, batch_cost={:.0})\n",
        row_mode_cost(plan, catalog),
        batch_mode_cost(plan, catalog)
    ));
    let mut node = 0usize;
    render_analyze(plan, catalog, 0, &mut node, stats, &mut out);
    let get = |name: &str| {
        metrics
            .snapshot()
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    };
    out.push_str("actuals:\n");
    out.push_str(&format!(
        "  rows returned={rows_returned} elapsed={:.3} ms\n",
        elapsed.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  scan: groups_scanned={} groups_eliminated={} rows_columnstore={} rows_delta={}\n",
        get("groups_scanned"),
        get("groups_eliminated"),
        get("rows_scanned") - get("rows_scanned_delta"),
        get("rows_scanned_delta"),
    ));
    out.push_str(&format!(
        "  bitmap filters: exact={} bloom={} probes={} pruned={}\n",
        get("bitmap_filters_exact"),
        get("bitmap_filters_bloom"),
        get("bitmap_probes"),
        get("rows_dropped_by_bitmap"),
    ));
    out.push_str(&format!(
        "  join: build_rows={} probe_rows={}\n",
        get("join_build_rows"),
        get("join_probe_rows"),
    ));
    out.push_str(&format!(
        "  spill: partitions={} bytes={}\n",
        get("partitions_spilled"),
        get("bytes_spilled"),
    ));
    out.push_str(&waits_footer_line(waits));
    out.push_str(&wal_footer_line());
    out
}

/// Per-query wait breakdown: one line listing every wait class the query
/// hit, worst-first, so "where did the time go" is answered in place.
fn waits_footer_line(waits: &WaitProfile) -> String {
    let mut snap = waits.snapshot();
    if snap.is_empty() {
        return "  waits: none\n".to_string();
    }
    snap.sort_by(|a, b| b.total_ns.cmp(&a.total_ns));
    let mut line = String::from("  waits:");
    for s in &snap {
        line.push_str(&format!(
            " {}(n={}, total={:.3} ms, max={:.3} ms)",
            s.class,
            s.count,
            s.total_ns as f64 / 1e6,
            s.max_ns as f64 / 1e6,
        ));
    }
    line.push('\n');
    line
}

/// Database-wide WAL activity (cumulative, from the global registry —
/// the per-query metrics above never include log writes, but the footer
/// shows whether trickle DML is paying for durability and how well group
/// commit is batching).
fn wal_footer_line() -> String {
    use cstore_common::metrics::MetricSnapshot;
    let snap = cstore_common::metrics::global().snapshot();
    let count = |name: &str| {
        snap.iter()
            .find_map(|m| match m {
                MetricSnapshot::Counter { name: n, value } if n == name => Some(*value),
                _ => None,
            })
            .unwrap_or(0)
    };
    let (batch_sum, batch_count) = snap
        .iter()
        .find_map(|m| match m {
            MetricSnapshot::Histogram {
                name, sum, count, ..
            } if name == "cstore_wal_group_commit_batch" => Some((*sum, *count)),
            _ => None,
        })
        .unwrap_or((0, 0));
    let avg = if batch_count > 0 {
        batch_sum as f64 / batch_count as f64
    } else {
        0.0
    };
    format!(
        "  wal (cumulative): appends={} fsyncs={} group_commit_avg={avg:.1} replayed={} truncated={}\n",
        count("cstore_wal_appends_total"),
        count("cstore_wal_fsyncs_total"),
        count("cstore_wal_replayed_records_total"),
        count("cstore_wal_truncated_records_total"),
    )
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// The `render` traversal plus `[actual ...]` annotations, walking the
/// same pre-order numbering the physical builder assigned.
fn render_analyze(
    plan: &LogicalPlan,
    catalog: &dyn CatalogProvider,
    depth: usize,
    node: &mut usize,
    stats: &ExecStats,
    out: &mut String,
) {
    let node_id = *node;
    *node += 1;
    // Render the node line (sans newline) by reusing `render` on a
    // scratch buffer restricted to this node.
    let mut line = String::new();
    render_node(plan, catalog, depth, &mut line);
    out.push_str(line.trim_end_matches('\n'));
    match stats.for_node(node_id) {
        Some(op) => out.push_str(&format!(
            "  [actual rows={} batches={} time={:.3} ms]\n",
            op.rows(),
            op.batches(),
            op.elapsed_nanos() as f64 / 1e6
        )),
        None => out.push('\n'),
    }
    for child in plan.children() {
        render_analyze(child, catalog, depth + 1, node, stats, out);
    }
}

fn render(plan: &LogicalPlan, catalog: &dyn CatalogProvider, depth: usize, out: &mut String) {
    render_node(plan, catalog, depth, out);
    for child in plan.children() {
        render(child, catalog, depth + 1, out);
    }
}

/// One node's EXPLAIN line (no recursion).
fn render_node(plan: &LogicalPlan, catalog: &dyn CatalogProvider, depth: usize, out: &mut String) {
    indent(out, depth);
    let est = estimate_rows(plan, catalog);
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            pushed,
            ..
        } => {
            out.push_str(&format!("Scan {table}"));
            if let Some(p) = projection {
                out.push_str(&format!(" cols={p:?}"));
            }
            if !pushed.is_empty() {
                out.push_str(" pushed=[");
                for (i, (col, pred)) in pushed.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("col{col} {pred}"));
                }
                out.push(']');
            }
        }
        LogicalPlan::Filter { predicate, .. } => {
            out.push_str(&format!("Filter {predicate:?}"));
        }
        LogicalPlan::Project { names, .. } => {
            out.push_str(&format!("Project {names:?}"));
        }
        LogicalPlan::Join {
            join_type,
            on_left,
            on_right,
            ..
        } => {
            out.push_str(&format!(
                "HashJoin {join_type:?} on left{on_left:?} = right{on_right:?}"
            ));
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            out.push_str(&format!(
                "HashAggregate groups={} aggs={}",
                group_by.len(),
                aggs.len()
            ));
        }
        LogicalPlan::Sort { keys, limit, .. } => {
            out.push_str(&format!("Sort keys={}", keys.len()));
            if let Some(l) = limit {
                out.push_str(&format!(" limit={l}"));
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            out.push_str(&format!("UnionAll inputs={}", inputs.len()));
        }
    }
    out.push_str(&format!("  (~{est:.0} rows)\n"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemoryCatalog;
    use cstore_common::{DataType, Field, Schema};
    use cstore_exec::Expr;
    use cstore_storage::pred::{CmpOp, ColumnPred};

    #[test]
    fn explain_renders_tree() {
        let catalog = MemoryCatalog::new();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                schema: Schema::new(vec![Field::not_null("a", DataType::Int64)]),
                projection: Some(vec![0]),
                pushed: vec![(
                    0,
                    ColumnPred::Cmp {
                        op: CmpOp::Gt,
                        value: cstore_common::Value::Int64(5),
                    },
                )],
            }),
            predicate: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(100i64)),
        };
        let text = explain(&plan, &catalog, ExecMode::Batch);
        assert!(text.contains("mode=Batch"));
        assert!(text.contains("Scan t"));
        assert!(text.contains("pushed=[col0 > 5]"));
        assert!(text.contains("Filter"));
    }
}
