//! Statistics and selectivity estimation.
//!
//! The optimizer reads table cardinalities from the catalog and per-column
//! min/max/distinct statistics from the columnstore's segment directory —
//! the same metadata segment elimination uses — then applies standard
//! selectivity heuristics to predicates.

use cstore_common::Value;
use cstore_exec::Expr;
use cstore_storage::pred::{CmpOp, ColumnPred};

use crate::catalog::TableRef;

/// An equi-depth histogram over a column's sampled `i64` images.
///
/// The paper notes the updatable columnstore supports *sampling* for
/// statistics; this is that path: `ANALYZE` samples rows and builds one
/// of these per integer-backed column, replacing the span-based uniform
/// assumption with observed quantiles — which matters exactly when data
/// is skewed.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Ascending bucket upper bounds (inclusive); the first bucket spans
    /// `[min, bounds[0]]`.
    bounds: Vec<i64>,
    /// Smallest sampled value.
    min: i64,
    /// Distinct-per-bucket estimates (for equality selectivity).
    distinct: Vec<u64>,
    /// Cumulative row fraction at each bound.
    cum: Vec<f64>,
}

impl Histogram {
    /// Build from a sample (equi-depth, up to `n_buckets`).
    pub fn build(mut sample: Vec<i64>, n_buckets: usize) -> Option<Histogram> {
        if sample.is_empty() {
            return None;
        }
        sample.sort_unstable();
        let min = sample[0];
        let b = n_buckets.clamp(1, sample.len());
        let per = sample.len().div_ceil(b);
        let mut bounds = Vec::with_capacity(b);
        let mut distinct = Vec::with_capacity(b);
        for chunk in sample.chunks(per) {
            bounds.push(*chunk.last().unwrap());
            let mut d = 1u64;
            for w in chunk.windows(2) {
                d += u64::from(w[0] != w[1]);
            }
            distinct.push(d);
        }
        // Merge buckets with duplicate bounds (heavy hitters).
        let mut merged_bounds: Vec<i64> = Vec::new();
        let mut merged_distinct: Vec<u64> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for (i, &bd) in bounds.iter().enumerate() {
            if merged_bounds.last() == Some(&bd) {
                *weights.last_mut().unwrap() += 1.0;
            } else {
                merged_bounds.push(bd);
                merged_distinct.push(distinct[i]);
                weights.push(1.0);
            }
        }
        // Fold merged weights back: each entry's cumulative fraction.
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let fractions: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Some(Histogram {
            bounds: merged_bounds,
            min,
            distinct: merged_distinct,
            cum: fractions,
        })
    }

    /// Fraction of rows with value `<= v`.
    pub fn fraction_le(&self, v: i64) -> f64 {
        if v < self.min {
            return 0.0;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        if idx >= self.bounds.len() {
            return 1.0;
        }
        // Within-bucket linear interpolation between the previous bound
        // and this one.
        let hi_frac = self.cum[idx];
        let lo_frac = if idx == 0 { 0.0 } else { self.cum[idx - 1] };
        let lo_bound = if idx == 0 {
            self.min
        } else {
            self.bounds[idx - 1]
        };
        let hi_bound = self.bounds[idx];
        if hi_bound <= lo_bound {
            return hi_frac;
        }
        let t = (v - lo_bound) as f64 / (hi_bound - lo_bound) as f64;
        lo_frac + (hi_frac - lo_frac) * t.clamp(0.0, 1.0)
    }

    /// Selectivity of `lo <= x <= hi` (inclusive).
    pub fn range_selectivity(&self, lo: Option<i64>, hi: Option<i64>) -> f64 {
        let hi_f = hi.map_or(1.0, |h| self.fraction_le(h));
        let lo_f = lo.map_or(0.0, |l| self.fraction_le(l - 1));
        (hi_f - lo_f).clamp(0.0, 1.0)
    }

    /// Selectivity of `x = v`.
    pub fn eq_selectivity(&self, v: i64) -> f64 {
        if v < self.min || self.bounds.last().is_none_or(|&b| v > b) {
            return 0.0;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        let hi_frac = self.cum[idx];
        let lo_frac = if idx == 0 { 0.0 } else { self.cum[idx - 1] };
        let bucket_frac = hi_frac - lo_frac;
        bucket_frac / self.distinct[idx].max(1) as f64
    }

    pub fn n_buckets(&self) -> usize {
        self.bounds.len()
    }
}

/// Per-column statistics.
#[derive(Clone, Debug, Default)]
pub struct ColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub distinct_estimate: Option<u64>,
    pub null_fraction: f64,
    /// Sampled equi-depth histogram (set by ANALYZE).
    pub histogram: Option<Histogram>,
}

/// Per-table statistics.
#[derive(Clone, Debug, Default)]
pub struct TableStatistics {
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
}

/// Default selectivity for predicates we cannot analyze.
pub const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;
/// Default equality selectivity without distinct statistics.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.05;

impl TableStatistics {
    /// Gather statistics from a table (columnstore: from segment metadata;
    /// heap: row count only).
    pub fn collect(table: &TableRef) -> TableStatistics {
        match table {
            TableRef::Heap(t) => TableStatistics {
                row_count: t.n_rows(),
                columns: vec![ColumnStats::default(); t.schema().len()],
            },
            TableRef::Virtual(t) => TableStatistics {
                row_count: t.rows.len(),
                columns: vec![ColumnStats::default(); t.schema.len()],
            },
            TableRef::ColumnStore(t) => {
                let n_cols = t.schema().len();
                let mut columns = vec![ColumnStats::default(); n_cols];
                let mut _rows_with_stats = 0usize;
                t.with_columnstore(|cs| {
                    for entry in cs.directory().entries() {
                        let c = &mut columns[entry.column];
                        if let Some(min) = &entry.min {
                            if c.min.as_ref().is_none_or(|m| min.cmp_sql(m).is_lt()) {
                                c.min = Some(min.clone());
                            }
                        }
                        if let Some(max) = &entry.max {
                            if c.max.as_ref().is_none_or(|m| max.cmp_sql(m).is_gt()) {
                                c.max = Some(max.clone());
                            }
                        }
                        c.null_fraction += entry.null_count as f64;
                        if entry.column == 0 {
                            _rows_with_stats += entry.row_count as usize;
                        }
                    }
                });
                let total = t.total_rows().max(1);
                for c in &mut columns {
                    c.null_fraction /= total as f64;
                    // Distinct estimate: span-based for integers (upper
                    // bound), else unknown.
                    if let (Some(Value::Int64(lo)), Some(Value::Int64(hi))) = (&c.min, &c.max) {
                        c.distinct_estimate =
                            Some(((hi - lo).unsigned_abs() + 1).min(total as u64));
                    }
                }
                TableStatistics {
                    row_count: t.total_rows(),
                    columns,
                }
            }
        }
    }

    /// Sample rows and attach equi-depth histograms to integer-backed
    /// columns (the ANALYZE path). `sample_target` bounds the number of
    /// sampled rows.
    pub fn collect_sampled(table: &TableRef, sample_target: usize) -> TableStatistics {
        let mut stats = Self::collect(table);
        let TableRef::ColumnStore(t) = table else {
            return stats; // heap baselines keep coarse stats
        };
        let snap = t.snapshot();
        let total: usize =
            snap.groups().iter().map(|g| g.n_rows()).sum::<usize>() + snap.delta_rows().len();
        if total == 0 {
            return stats;
        }
        let step = (total / sample_target.max(1)).max(1);
        let n_cols = t.schema().len();
        let mut samples: Vec<Vec<i64>> = vec![Vec::new(); n_cols];
        let int_backed: Vec<bool> = t
            .schema()
            .fields()
            .iter()
            .map(|f| f.data_type.is_integer_backed())
            .collect();
        for g in snap.groups() {
            let visible = snap.visible_bitmap(g);
            for (c, sample) in samples.iter_mut().enumerate() {
                if !int_backed[c] {
                    continue;
                }
                let Ok(seg) = g.open_segment(c) else { continue };
                let decoded = seg.decode();
                if let cstore_storage::segment::SegmentValues::I64 { values, nulls } = &decoded {
                    for i in (0..values.len()).step_by(step) {
                        let is_null = nulls.as_ref().is_some_and(|n| n.get(i));
                        if !is_null && visible.get(i) {
                            sample.push(values[i]);
                        }
                    }
                }
            }
        }
        for (i, (_, row)) in snap.delta_rows().iter().enumerate() {
            if i % step != 0 {
                continue;
            }
            for (c, v) in row.values().iter().enumerate() {
                if int_backed[c] {
                    if let Some(x) = v.as_i64() {
                        samples[c].push(x);
                    }
                }
            }
        }
        for (c, sample) in samples.into_iter().enumerate() {
            if int_backed[c] {
                let n = sample.len() as u64;
                if let Some(h) = Histogram::build(sample, 64) {
                    // A histogram also refines the distinct estimate.
                    let d: u64 = (0..h.n_buckets()).map(|i| h.distinct[i]).sum();
                    let prev = stats.columns[c].distinct_estimate.unwrap_or(u64::MAX);
                    stats.columns[c].distinct_estimate = Some(d.min(prev).min(n.max(1)));
                    stats.columns[c].histogram = Some(h);
                }
            }
        }
        stats
    }

    /// Estimated selectivity of a pushed-down predicate on column `col`.
    pub fn pred_selectivity(&self, col: usize, pred: &ColumnPred) -> f64 {
        let stats = self.columns.get(col);
        let span = stats.and_then(|s| match (&s.min, &s.max) {
            (Some(lo), Some(hi)) => Some((
                lo.as_f64().or(lo.as_i64().map(|x| x as f64))?,
                hi.as_f64().or(hi.as_i64().map(|x| x as f64))?,
            )),
            _ => None,
        });
        let distinct = stats.and_then(|s| s.distinct_estimate);
        let hist = stats.and_then(|s| s.histogram.as_ref());
        // Histogram path: observed quantiles beat uniform assumptions on
        // skewed data.
        if let Some(h) = hist {
            let as_i64 = |v: &Value| v.as_i64();
            match pred {
                ColumnPred::Cmp {
                    op: CmpOp::Eq,
                    value,
                } => {
                    if let Some(k) = as_i64(value) {
                        return h.eq_selectivity(k);
                    }
                }
                ColumnPred::Cmp { op, value } => {
                    if let Some(k) = as_i64(value) {
                        return match op {
                            CmpOp::Lt => h.range_selectivity(None, Some(k - 1)),
                            CmpOp::Le => h.range_selectivity(None, Some(k)),
                            CmpOp::Gt => h.range_selectivity(Some(k + 1), None),
                            CmpOp::Ge => h.range_selectivity(Some(k), None),
                            CmpOp::Ne => 1.0 - h.eq_selectivity(k),
                            // lint: allow(panic) — Eq takes the
                            // histogram-equality path before this dispatch
                            CmpOp::Eq => unreachable!("Eq handled above"),
                        };
                    }
                }
                ColumnPred::Between { lo, hi } => {
                    if let (Some(a), Some(b)) = (as_i64(lo), as_i64(hi)) {
                        return h.range_selectivity(Some(a), Some(b));
                    }
                }
                _ => {}
            }
        }
        match pred {
            ColumnPred::IsNull => stats.map_or(0.05, |s| s.null_fraction),
            ColumnPred::IsNotNull => stats.map_or(0.95, |s| 1.0 - s.null_fraction),
            ColumnPred::Cmp { op: CmpOp::Eq, .. } => match distinct {
                Some(d) if d > 0 => 1.0 / d as f64,
                _ => DEFAULT_EQ_SELECTIVITY,
            },
            ColumnPred::Cmp { op: CmpOp::Ne, .. } => match distinct {
                Some(d) if d > 0 => 1.0 - 1.0 / d as f64,
                _ => 1.0 - DEFAULT_EQ_SELECTIVITY,
            },
            ColumnPred::Cmp { op, value } => {
                let Some((lo, hi)) = span else {
                    return DEFAULT_SELECTIVITY;
                };
                let Some(v) = value.as_f64().or(value.as_i64().map(|x| x as f64)) else {
                    return DEFAULT_SELECTIVITY;
                };
                if hi <= lo {
                    return DEFAULT_SELECTIVITY;
                }
                let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                match op {
                    CmpOp::Lt | CmpOp::Le => frac,
                    CmpOp::Gt | CmpOp::Ge => 1.0 - frac,
                    // lint: allow(panic) — Eq/Ne take the equality path
                    // before this range dispatch
                    _ => unreachable!("Eq/Ne handled above"),
                }
            }
            ColumnPred::Between { lo: plo, hi: phi } => {
                let Some((lo, hi)) = span else {
                    return DEFAULT_SELECTIVITY;
                };
                let (Some(a), Some(b)) = (
                    plo.as_f64().or(plo.as_i64().map(|x| x as f64)),
                    phi.as_f64().or(phi.as_i64().map(|x| x as f64)),
                ) else {
                    return DEFAULT_SELECTIVITY;
                };
                if hi <= lo {
                    return DEFAULT_SELECTIVITY;
                }
                ((b.min(hi) - a.max(lo)) / (hi - lo)).clamp(0.0, 1.0)
            }
            ColumnPred::InList(items) => match distinct {
                Some(d) if d > 0 => (items.len() as f64 / d as f64).min(1.0),
                _ => (items.len() as f64 * DEFAULT_EQ_SELECTIVITY).min(1.0),
            },
        }
    }

    /// Estimated selectivity of a general expression predicate.
    pub fn expr_selectivity(&self, e: &Expr) -> f64 {
        match e {
            Expr::And(a, b) => self.expr_selectivity(a) * self.expr_selectivity(b),
            Expr::Or(a, b) => {
                let (sa, sb) = (self.expr_selectivity(a), self.expr_selectivity(b));
                (sa + sb - sa * sb).min(1.0)
            }
            Expr::Not(inner) => 1.0 - self.expr_selectivity(inner),
            Expr::Cmp { op, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) => self.pred_selectivity(
                    *c,
                    &ColumnPred::Cmp {
                        op: *op,
                        value: v.clone(),
                    },
                ),
                (Expr::Lit(v), Expr::Col(c)) => self.pred_selectivity(
                    *c,
                    &ColumnPred::Cmp {
                        op: op.flip(),
                        value: v.clone(),
                    },
                ),
                _ => DEFAULT_SELECTIVITY,
            },
            Expr::InList { expr, list } => match expr.as_ref() {
                Expr::Col(c) => self.pred_selectivity(*c, &ColumnPred::InList(list.clone())),
                _ => DEFAULT_SELECTIVITY,
            },
            Expr::IsNull(inner) => match inner.as_ref() {
                Expr::Col(c) => self.pred_selectivity(*c, &ColumnPred::IsNull),
                _ => 0.05,
            },
            Expr::IsNotNull(inner) => match inner.as_ref() {
                Expr::Col(c) => self.pred_selectivity(*c, &ColumnPred::IsNotNull),
                _ => 0.95,
            },
            _ => DEFAULT_SELECTIVITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_common::{DataType, Field, Row, Schema};
    use cstore_delta::{ColumnStoreTable, TableConfig};

    fn stats() -> TableStatistics {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int64)]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                bulk_load_threshold: 10,
                max_rowgroup_rows: 500,
                ..TableConfig::default()
            },
        );
        t.bulk_insert(
            &(0..1000)
                .map(|i| Row::new(vec![Value::Int64(i)]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        TableStatistics::collect(&TableRef::ColumnStore(t))
    }

    #[test]
    fn collect_reads_directory() {
        let s = stats();
        assert_eq!(s.row_count, 1000);
        assert_eq!(s.columns[0].min, Some(Value::Int64(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int64(999)));
        assert_eq!(s.columns[0].distinct_estimate, Some(1000));
    }

    #[test]
    fn range_selectivity_tracks_span() {
        let s = stats();
        let sel = s.pred_selectivity(
            0,
            &ColumnPred::Cmp {
                op: CmpOp::Lt,
                value: Value::Int64(250),
            },
        );
        assert!((sel - 0.25).abs() < 0.01, "sel={sel}");
        let sel = s.pred_selectivity(
            0,
            &ColumnPred::Between {
                lo: Value::Int64(100),
                hi: Value::Int64(199),
            },
        );
        assert!((sel - 0.099).abs() < 0.01, "sel={sel}");
    }

    #[test]
    fn eq_uses_distinct() {
        let s = stats();
        let sel = s.pred_selectivity(
            0,
            &ColumnPred::Cmp {
                op: CmpOp::Eq,
                value: Value::Int64(7),
            },
        );
        assert!((sel - 0.001).abs() < 1e-6);
    }

    #[test]
    fn expr_selectivity_combines() {
        let s = stats();
        let e = Expr::and(
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(500i64)),
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(250i64)),
        );
        let sel = s.expr_selectivity(&e);
        assert!((0.3..0.45).contains(&sel), "sel={sel}");
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use cstore_common::{DataType, Field, Row, Schema};
    use cstore_delta::{ColumnStoreTable, TableConfig};

    #[test]
    fn histogram_fractions_are_monotone_and_bounded() {
        let sample: Vec<i64> = (0..1000).map(|i| (i * i) % 503).collect();
        let h = Histogram::build(sample, 32).unwrap();
        let mut prev = 0.0;
        for v in (-10..520).step_by(7) {
            let f = h.fraction_le(v);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev - 1e-9, "non-monotone at {v}");
            prev = f;
        }
        assert_eq!(h.fraction_le(i64::MIN + 1), 0.0);
        assert_eq!(h.fraction_le(i64::MAX), 1.0);
    }

    #[test]
    fn histogram_beats_uniform_on_skew() {
        // 90% of values are 0, the rest spread over 0..1,000,000.
        let mut sample: Vec<i64> = vec![0; 9000];
        sample.extend((0..1000).map(|i| i * 1000));
        let h = Histogram::build(sample, 64).unwrap();
        // x <= 0 covers ~90% of rows; the uniform span estimate would say
        // ~0%.
        let sel = h.range_selectivity(None, Some(0));
        assert!(sel > 0.8, "histogram sel {sel} should reflect the skew");
        // Equality on the heavy hitter is large; on a tail value tiny.
        assert!(h.eq_selectivity(0) > 0.5);
        assert!(h.eq_selectivity(777_000) < 0.05);
    }

    #[test]
    fn collect_sampled_attaches_histograms() {
        let schema = Schema::new(vec![
            Field::not_null("k", DataType::Int64),
            Field::not_null("s", DataType::Utf8),
        ]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                bulk_load_threshold: 100,
                max_rowgroup_rows: 5000,
                ..TableConfig::default()
            },
        );
        // Zipf-ish skew: many zeros.
        t.bulk_insert(
            &(0..20_000)
                .map(|i| {
                    let k = if i % 10 < 8 { 0 } else { i };
                    Row::new(vec![Value::Int64(k), Value::str("x")])
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let table = TableRef::ColumnStore(t);
        let plain = TableStatistics::collect(&table);
        let sampled = TableStatistics::collect_sampled(&table, 4000);
        assert!(sampled.columns[0].histogram.is_some());
        assert!(sampled.columns[1].histogram.is_none(), "strings unsampled");
        let pred = ColumnPred::Cmp {
            op: CmpOp::Eq,
            value: Value::Int64(0),
        };
        let uniform = plain.pred_selectivity(0, &pred);
        let hist = sampled.pred_selectivity(0, &pred);
        // Truth: 80% of rows are 0. Uniform says ~1/distinct ≈ 0.005%.
        assert!(uniform < 0.01, "uniform {uniform}");
        assert!((0.6..=1.0).contains(&hist), "histogram {hist}");
    }
}
