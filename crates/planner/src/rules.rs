//! Rewrite rules: predicate pushdown, projection pruning, join ordering.

use std::collections::BTreeSet;

use cstore_common::{Error, FxHashMap, Result};
use cstore_exec::ops::hash_join::JoinType;
use cstore_exec::Expr;
use cstore_storage::pred::ColumnPred;

use crate::catalog::CatalogProvider;
use crate::logical::LogicalPlan;
use crate::stats::TableStatistics;

/// Run the standard rewrite pipeline.
pub fn optimize(plan: LogicalPlan, catalog: &dyn CatalogProvider) -> Result<LogicalPlan> {
    let plan = push_filters(plan)?;
    let plan = order_joins(plan, catalog)?;
    // Pushdown again: join reordering may have exposed new pushdown
    // opportunities (filters that floated above reordered joins).
    let plan = push_filters(plan)?;
    prune_projections(plan)
}

// ------------------------------------------------------------ pushdown

/// Split an expression into its top-level conjuncts.
pub fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(a, b) => {
            split_conjuncts(*a, out);
            split_conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

/// AND a list of conjuncts back together (empty → None).
pub fn conjoin(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut acc = conjuncts.pop()?;
    while let Some(e) = conjuncts.pop() {
        acc = Expr::and(e, acc);
    }
    Some(acc)
}

/// Convert `col <op> const`-shaped expressions into a pushable
/// [`ColumnPred`] over the input's column `usize`.
pub fn to_column_pred(e: &Expr) -> Option<(usize, ColumnPred)> {
    match e {
        Expr::Cmp { op, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => Some((
                *c,
                ColumnPred::Cmp {
                    op: *op,
                    value: v.clone(),
                },
            )),
            (Expr::Lit(v), Expr::Col(c)) => Some((
                *c,
                ColumnPred::Cmp {
                    op: op.flip(),
                    value: v.clone(),
                },
            )),
            _ => None,
        },
        Expr::InList { expr, list } => match expr.as_ref() {
            Expr::Col(c) => Some((*c, ColumnPred::InList(list.clone()))),
            _ => None,
        },
        Expr::IsNull(inner) => match inner.as_ref() {
            Expr::Col(c) => Some((*c, ColumnPred::IsNull)),
            _ => None,
        },
        Expr::IsNotNull(inner) => match inner.as_ref() {
            Expr::Col(c) => Some((*c, ColumnPred::IsNotNull)),
            _ => None,
        },
        _ => None,
    }
}

/// Shift every `Col(i)` in `e` by `-offset` (for pushing right-side join
/// conjuncts down).
fn shift_columns(e: &Expr, offset: usize) -> Expr {
    remap_expr(e, &|i| i - offset)
}

/// Rewrite column ordinals through `f`.
fn remap_expr(e: &Expr, f: &impl Fn(usize) -> usize) -> Expr {
    match e {
        Expr::Col(i) => Expr::Col(f(*i)),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(remap_expr(lhs, f)),
            rhs: Box::new(remap_expr(rhs, f)),
        },
        Expr::And(a, b) => Expr::And(Box::new(remap_expr(a, f)), Box::new(remap_expr(b, f))),
        Expr::Or(a, b) => Expr::Or(Box::new(remap_expr(a, f)), Box::new(remap_expr(b, f))),
        Expr::Not(x) => Expr::Not(Box::new(remap_expr(x, f))),
        Expr::IsNull(x) => Expr::IsNull(Box::new(remap_expr(x, f))),
        Expr::IsNotNull(x) => Expr::IsNotNull(Box::new(remap_expr(x, f))),
        Expr::Arith { op, lhs, rhs } => Expr::Arith {
            op: *op,
            lhs: Box::new(remap_expr(lhs, f)),
            rhs: Box::new(remap_expr(rhs, f)),
        },
        Expr::InList { expr, list } => Expr::InList {
            expr: Box::new(remap_expr(expr, f)),
            list: list.clone(),
        },
        Expr::Like { expr, pattern } => Expr::Like {
            expr: Box::new(remap_expr(expr, f)),
            pattern: pattern.clone(),
        },
    }
}

fn expr_refs(e: &Expr) -> Vec<usize> {
    let mut v = Vec::new();
    e.referenced_columns(&mut v);
    v
}

/// Push filter predicates toward (and into) scans.
pub fn push_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_filters(*input)?;
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);
            push_conjuncts(input, conjuncts)?
        }
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => LogicalPlan::Project {
            input: Box::new(push_filters(*input)?),
            exprs,
            names,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on_left,
            on_right,
        } => LogicalPlan::Join {
            left: Box::new(push_filters(*left)?),
            right: Box::new(push_filters(*right)?),
            join_type,
            on_left,
            on_right,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            names,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_filters(*input)?),
            group_by,
            aggs,
            names,
        },
        LogicalPlan::Sort {
            input,
            keys,
            limit,
            offset,
        } => LogicalPlan::Sort {
            input: Box::new(push_filters(*input)?),
            keys,
            limit,
            offset,
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(push_filters)
                .collect::<Result<Vec<_>>>()?,
        },
        leaf @ LogicalPlan::Scan { .. } => leaf,
    })
}

/// Push a set of conjuncts into `plan`, keeping what can't sink as a
/// Filter on top.
fn push_conjuncts(plan: LogicalPlan, conjuncts: Vec<Expr>) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Scan {
            table,
            schema,
            projection,
            mut pushed,
        } => {
            // Scans at this stage output the full table schema (pruning
            // runs later), so filter ordinals == table ordinals.
            debug_assert!(projection.is_none(), "pushdown must run before pruning");
            let mut residual = Vec::new();
            for c in conjuncts {
                match to_column_pred(&c) {
                    Some((col, pred)) => pushed.push((col, pred)),
                    None => residual.push(c),
                }
            }
            let scan = LogicalPlan::Scan {
                table,
                schema,
                projection,
                pushed,
            };
            Ok(match conjoin(residual) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(scan),
                    predicate: p,
                },
                None => scan,
            })
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on_left,
            on_right,
        } => {
            let left_arity = left.arity()?;
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut residual = Vec::new();
            for c in conjuncts {
                let refs = expr_refs(&c);
                let all_left = refs.iter().all(|&i| i < left_arity);
                let all_right = refs.iter().all(|&i| i >= left_arity);
                // Pushing below a join is only sound where the join cannot
                // null-extend that side.
                let left_safe = !matches!(join_type, JoinType::RightOuter | JoinType::FullOuter);
                let right_safe = matches!(join_type, JoinType::Inner);
                if all_left && left_safe {
                    to_left.push(c);
                } else if all_right && right_safe {
                    to_right.push(shift_columns(&c, left_arity));
                } else {
                    residual.push(c);
                }
            }
            let left = push_conjuncts(*left, to_left)?;
            let right = push_conjuncts(*right, to_right)?;
            let join = LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                join_type,
                on_left,
                on_right,
            };
            Ok(match conjoin(residual) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(join),
                    predicate: p,
                },
                None => join,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut all = conjuncts;
            split_conjuncts(predicate, &mut all);
            push_conjuncts(*input, all)
        }
        other => {
            // Don't sink through Project/Aggregate/Sort/Union; keep the
            // filter here.
            let other = push_filters(other)?;
            Ok(match conjoin(conjuncts) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(other),
                    predicate: p,
                },
                None => other,
            })
        }
    }
}

// -------------------------------------------------------- join ordering

/// Rough output-cardinality estimate.
pub fn estimate_rows(plan: &LogicalPlan, catalog: &dyn CatalogProvider) -> f64 {
    match plan {
        LogicalPlan::Scan { table, pushed, .. } => {
            let stats = match catalog.statistics(table) {
                Some(s) => s,
                None => {
                    let Some(t) = catalog.table(table) else {
                        return 1000.0;
                    };
                    TableStatistics::collect(&t)
                }
            };
            let mut rows = stats.row_count as f64;
            for (col, pred) in pushed {
                rows *= stats.pred_selectivity(*col, pred);
            }
            rows.max(1.0)
        }
        LogicalPlan::Filter { input, predicate } => {
            // Without deeper context, reuse table-free selectivity defaults.
            let stats = TableStatistics::default();
            estimate_rows(input, catalog) * stats.expr_selectivity(predicate).max(0.001)
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
            estimate_rows(input, catalog)
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            ..
        } => {
            let l = estimate_rows(left, catalog);
            let r = estimate_rows(right, catalog);
            match join_type {
                JoinType::Inner => estimate_inner(l, r),
                JoinType::LeftOuter | JoinType::LeftSemi => l,
                JoinType::LeftAnti => l * 0.5,
                JoinType::RightOuter => r.max(l),
                JoinType::FullOuter => l + r,
            }
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                (estimate_rows(input, catalog) / 10.0).max(1.0)
            }
        }
        LogicalPlan::UnionAll { inputs } => inputs.iter().map(|p| estimate_rows(p, catalog)).sum(),
    }
}

/// Inner-join cardinality. Star joins are FK→PK: the fact (larger) side's
/// cardinality is an upper bound and, with unfiltered dimensions, a good
/// estimate; dimension filtering is already reflected in the scan estimates
/// that feed join *ordering*, so this deliberately coarse estimate is only
/// used for the batch-vs-row mode decision.
fn estimate_inner(l: f64, r: f64) -> f64 {
    l.max(r).max(1.0)
}

/// Greedy star-join ordering: for a left-deep chain of inner equijoins
/// whose join keys all come from the leftmost (fact) input, join the
/// dimension with the smallest estimated cardinality first. A compensating
/// projection restores the original output column order.
pub fn order_joins(plan: LogicalPlan, catalog: &dyn CatalogProvider) -> Result<LogicalPlan> {
    // First recurse into children.
    let plan = map_children(plan, &mut |c| order_joins(c, catalog))?;
    // Collect the chain root-down.
    let LogicalPlan::Join { .. } = &plan else {
        return Ok(plan);
    };
    let mut dims: Vec<(LogicalPlan, Vec<usize>, Vec<usize>)> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            LogicalPlan::Join {
                left,
                right,
                join_type: JoinType::Inner,
                on_left,
                on_right,
            } => {
                dims.push((*right, on_left, on_right));
                cur = *left;
            }
            other => {
                cur = other;
                break;
            }
        }
    }
    let fact = cur;
    let fact_arity = fact.arity()?;
    // Only safe to permute when every join key references the fact table.
    if dims.len() < 2
        || dims
            .iter()
            .any(|(_, on_left, _)| on_left.iter().any(|&k| k >= fact_arity))
    {
        // Rebuild in original order.
        return Ok(rebuild_chain(fact, dims.into_iter().rev().collect()));
    }
    // Record original output layout: fact cols, then dim blocks in
    // original (bottom-up) order.
    let mut dim_arities: Vec<usize> = Vec::new();
    for (d, _, _) in dims.iter().rev() {
        dim_arities.push(d.arity()?);
    }
    // Order by ascending estimated cardinality (most selective first).
    let mut order: Vec<usize> = (0..dims.len()).collect(); // root-down index
    let estimates: Vec<f64> = dims
        .iter()
        .map(|(d, _, _)| estimate_rows(d, catalog))
        .collect();
    order.sort_by(|&a, &b| estimates[a].total_cmp(&estimates[b]));
    let already_ordered = order.windows(2).all(|w| {
        // dims is root-down; bottom-up original order is reversed.
        w[0] > w[1]
    });
    if already_ordered {
        return Ok(rebuild_chain(fact, dims.into_iter().rev().collect()));
    }
    // Build the new chain bottom-up in `order` (most selective first).
    let n_dims = dims.len();
    type Dim = (LogicalPlan, Vec<usize>, Vec<usize>);
    let mut taken: Vec<Option<Dim>> = dims.into_iter().map(Some).collect();
    let mut chain: Vec<Dim> = Vec::with_capacity(n_dims);
    for &i in &order {
        chain.push(taken[i].take().expect("each dim used once"));
    }
    // Compute where each original dim block lands in the new output.
    // New output: fact block, then blocks in `order` sequence.
    let mut new_offsets: FxHashMap<usize, usize> = FxHashMap::default(); // root-down dim idx -> new block offset
    let mut off = fact_arity;
    for &i in &order {
        new_offsets.insert(i, off);
        // dims index i (root-down) corresponds to bottom-up position
        // n_dims - 1 - i.
        off += dim_arities[n_dims - 1 - i];
    }
    let new_plan = rebuild_chain(fact, chain);
    // Compensating projection: original order was fact block then
    // bottom-up dim blocks (root-down index n_dims-1 .. 0).
    let fields = new_plan.output_fields()?;
    let mut exprs = Vec::with_capacity(fields.len());
    let mut names = Vec::with_capacity(fields.len());
    for c in 0..fact_arity {
        exprs.push(Expr::col(c));
    }
    #[allow(clippy::needless_range_loop)]
    for bottom_up in 0..n_dims {
        let root_down = n_dims - 1 - bottom_up;
        let start = new_offsets[&root_down];
        for c in 0..dim_arities[bottom_up] {
            exprs.push(Expr::col(start + c));
        }
    }
    // Names follow the original layout; recover them by permuting the new
    // field names through the same expressions.
    for e in &exprs {
        if let Expr::Col(i) = e {
            names.push(fields[*i].name.clone());
        }
    }
    Ok(LogicalPlan::Project {
        input: Box::new(new_plan),
        exprs,
        names,
    })
}

/// Rebuild a left-deep join chain from fact + (dim, on_left, on_right)
/// list in bottom-up order.
fn rebuild_chain(
    fact: LogicalPlan,
    chain: Vec<(LogicalPlan, Vec<usize>, Vec<usize>)>,
) -> LogicalPlan {
    let mut plan = fact;
    for (dim, on_left, on_right) in chain {
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(dim),
            join_type: JoinType::Inner,
            on_left,
            on_right,
        };
    }
    plan
}

fn map_children(
    plan: LogicalPlan,
    f: &mut impl FnMut(LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)?),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => LogicalPlan::Project {
            input: Box::new(f(*input)?),
            exprs,
            names,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on_left,
            on_right,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            join_type,
            on_left,
            on_right,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            names,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)?),
            group_by,
            aggs,
            names,
        },
        LogicalPlan::Sort {
            input,
            keys,
            limit,
            offset,
        } => LogicalPlan::Sort {
            input: Box::new(f(*input)?),
            keys,
            limit,
            offset,
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs.into_iter().map(f).collect::<Result<Vec<_>>>()?,
        },
    })
}

// ------------------------------------------------------------- pruning

/// Narrow every scan to the columns the plan actually uses.
pub fn prune_projections(plan: LogicalPlan) -> Result<LogicalPlan> {
    let arity = plan.arity()?;
    let all: BTreeSet<usize> = (0..arity).collect();
    let (plan, mapping) = restrict(plan, &all)?;
    // At the root all columns were requested; the mapping must be the
    // identity or the plan's observable schema changed.
    debug_assert!(all.iter().all(|&i| mapping.get(&i) == Some(&i)));
    Ok(plan)
}

/// Restrict `plan` to produce (at least) the columns in `needed`, returning
/// the rewritten plan and a map old-ordinal → new-ordinal.
fn restrict(
    plan: LogicalPlan,
    needed: &BTreeSet<usize>,
) -> Result<(LogicalPlan, FxHashMap<usize, usize>)> {
    match plan {
        LogicalPlan::Scan {
            table,
            schema,
            projection,
            pushed,
        } => {
            if let Some(existing) = projection {
                // Already narrowed (idempotent pass): identity mapping.
                let mapping = (0..existing.len()).map(|i| (i, i)).collect();
                return Ok((
                    LogicalPlan::Scan {
                        table,
                        schema,
                        projection: Some(existing),
                        pushed,
                    },
                    mapping,
                ));
            }
            let mut cols: Vec<usize> = needed.iter().copied().collect();
            // A zero-column scan (e.g. under COUNT(*)) would lose row
            // counts: batches infer row count from their first column.
            // Keep the cheapest column as a row-count carrier.
            if cols.is_empty() {
                cols.push(0);
            }
            let mapping = cols
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            Ok((
                LogicalPlan::Scan {
                    table,
                    schema,
                    projection: Some(cols),
                    pushed,
                },
                mapping,
            ))
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut need = needed.clone();
            need.extend(expr_refs(&predicate));
            let (input, m) = restrict(*input, &need)?;
            let predicate = remap_expr(&predicate, &|i| m[&i]);
            Ok((
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                },
                m,
            ))
        }
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => {
            // Narrow to the requested output expressions. Like scans, a
            // projection must keep at least one column or batches lose
            // their row counts (COUNT(*) needs rows, not columns).
            let mut kept: Vec<usize> = needed
                .iter()
                .copied()
                .filter(|&i| i < exprs.len())
                .collect();
            if kept.is_empty() && !exprs.is_empty() {
                kept.push(0);
            }
            let mut need_inputs: BTreeSet<usize> = BTreeSet::new();
            for &i in &kept {
                need_inputs.extend(expr_refs(&exprs[i]));
            }
            let (input, m) = restrict(*input, &need_inputs)?;
            let new_exprs: Vec<Expr> = kept
                .iter()
                .map(|&i| remap_expr(&exprs[i], &|c| m[&c]))
                .collect();
            let new_names: Vec<String> = kept.iter().map(|&i| names[i].clone()).collect();
            let mapping = kept
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            Ok((
                LogicalPlan::Project {
                    input: Box::new(input),
                    exprs: new_exprs,
                    names: new_names,
                },
                mapping,
            ))
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on_left,
            on_right,
        } => {
            let left_arity = left.arity()?;
            let mut need_left: BTreeSet<usize> = on_left.iter().copied().collect();
            let mut need_right: BTreeSet<usize> = on_right.iter().copied().collect();
            for &i in needed {
                if i < left_arity {
                    need_left.insert(i);
                } else {
                    need_right.insert(i - left_arity);
                }
            }
            let (new_left, ml) = restrict(*left, &need_left)?;
            let (new_right, mr) = restrict(*right, &need_right)?;
            let new_left_arity = new_left.arity()?;
            let on_left = on_left.iter().map(|k| ml[k]).collect();
            let on_right = on_right.iter().map(|k| mr[k]).collect();
            let mut mapping = FxHashMap::default();
            for (&old, &new) in &ml {
                mapping.insert(old, new);
            }
            if !join_type.eq(&JoinType::LeftSemi) && !join_type.eq(&JoinType::LeftAnti) {
                for (&old, &new) in &mr {
                    mapping.insert(left_arity + old, new_left_arity + new);
                }
            }
            Ok((
                LogicalPlan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    join_type,
                    on_left,
                    on_right,
                },
                mapping,
            ))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            names,
        } => {
            let mut need_inputs: BTreeSet<usize> = BTreeSet::new();
            for g in &group_by {
                need_inputs.extend(expr_refs(g));
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    need_inputs.extend(expr_refs(arg));
                }
            }
            let (input, m) = restrict(*input, &need_inputs)?;
            let group_by = group_by.iter().map(|g| remap_expr(g, &|c| m[&c])).collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(|arg| remap_expr(&arg, &|c| m[&c]));
                    a
                })
                .collect();
            // Aggregate output shape is unchanged.
            let arity = names.len();
            let mapping = (0..arity).map(|i| (i, i)).collect();
            Ok((
                LogicalPlan::Aggregate {
                    input: Box::new(input),
                    group_by,
                    aggs,
                    names,
                },
                mapping,
            ))
        }
        LogicalPlan::Sort {
            input,
            keys,
            limit,
            offset,
        } => {
            let mut need = needed.clone();
            for k in &keys {
                need.extend(expr_refs(&k.expr));
            }
            let (input, m) = restrict(*input, &need)?;
            let keys = keys
                .into_iter()
                .map(|mut k| {
                    k.expr = remap_expr(&k.expr, &|c| m[&c]);
                    k
                })
                .collect();
            Ok((
                LogicalPlan::Sort {
                    input: Box::new(input),
                    keys,
                    limit,
                    offset,
                },
                m,
            ))
        }
        LogicalPlan::UnionAll { inputs } => {
            // Union inputs must stay aligned; request the same set from
            // each and verify the mappings agree.
            let mut out = Vec::with_capacity(inputs.len());
            let mut mapping: Option<FxHashMap<usize, usize>> = None;
            for p in inputs {
                let arity = p.arity()?;
                let all: BTreeSet<usize> = (0..arity).collect();
                let (p, m) = restrict(p, &all)?;
                if let Some(prev) = &mapping {
                    if *prev != m {
                        return Err(Error::Plan("UNION ALL inputs pruned inconsistently".into()));
                    }
                }
                mapping = Some(m);
                out.push(p);
            }
            Ok((
                LogicalPlan::UnionAll { inputs: out },
                mapping.unwrap_or_default(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemoryCatalog;
    use cstore_common::{DataType, Field, Schema, Value};
    use cstore_storage::pred::CmpOp;

    fn scan(name: &str, cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: Schema::new(cols.iter().map(|(n, t)| Field::nullable(*n, *t)).collect()),
            projection: None,
            pushed: vec![],
        }
    }

    #[test]
    fn pushdown_into_scan() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t", &[("a", DataType::Int64), ("b", DataType::Utf8)])),
            predicate: Expr::and(
                Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(5i64)),
                Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::col(1)), // not pushable
            ),
        };
        let out = push_filters(plan).unwrap();
        let LogicalPlan::Filter { input, .. } = &out else {
            panic!("residual filter expected, got {out:?}");
        };
        let LogicalPlan::Scan { pushed, .. } = input.as_ref() else {
            panic!("scan expected");
        };
        assert_eq!(pushed.len(), 1);
        assert_eq!(pushed[0].0, 0);
    }

    #[test]
    fn pushdown_through_inner_join() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("f", &[("k", DataType::Int64), ("x", DataType::Int64)])),
            right: Box::new(scan("d", &[("k", DataType::Int64), ("y", DataType::Int64)])),
            join_type: JoinType::Inner,
            on_left: vec![0],
            on_right: vec![0],
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: Expr::and(
                Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(10i64)), // left.x
                Expr::cmp(CmpOp::Gt, Expr::col(3), Expr::lit(0i64)),  // right.y
            ),
        };
        let out = push_filters(plan).unwrap();
        let LogicalPlan::Join { left, right, .. } = &out else {
            panic!("join at root, got {out:?}");
        };
        let LogicalPlan::Scan { pushed, .. } = left.as_ref() else {
            panic!()
        };
        assert_eq!(pushed[0].0, 1);
        let LogicalPlan::Scan { pushed, .. } = right.as_ref() else {
            panic!()
        };
        assert_eq!(pushed[0].0, 1, "right-side ordinal rebased");
    }

    #[test]
    fn no_pushdown_below_outer_join_null_side() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("f", &[("k", DataType::Int64)])),
            right: Box::new(scan("d", &[("k", DataType::Int64)])),
            join_type: JoinType::LeftOuter,
            on_left: vec![0],
            on_right: vec![0],
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit(1i64)), // right side
        };
        let out = push_filters(plan).unwrap();
        assert!(
            matches!(&out, LogicalPlan::Filter { .. }),
            "filter must stay above the outer join"
        );
    }

    #[test]
    fn prune_narrows_scan() {
        let plan = LogicalPlan::Project {
            input: Box::new(scan(
                "t",
                &[
                    ("a", DataType::Int64),
                    ("b", DataType::Int64),
                    ("c", DataType::Int64),
                ],
            )),
            exprs: vec![Expr::col(2)],
            names: vec!["c".into()],
        };
        let out = prune_projections(plan).unwrap();
        let LogicalPlan::Project { input, exprs, .. } = &out else {
            panic!()
        };
        let LogicalPlan::Scan { projection, .. } = input.as_ref() else {
            panic!()
        };
        assert_eq!(projection.as_deref(), Some(&[2usize][..]));
        assert!(
            matches!(exprs[0], Expr::Col(0)),
            "expr remapped to new ordinal"
        );
    }

    #[test]
    fn prune_keeps_join_keys() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("f", &[("k", DataType::Int64), ("x", DataType::Int64)])),
            right: Box::new(scan("d", &[("k", DataType::Int64), ("y", DataType::Int64)])),
            join_type: JoinType::Inner,
            on_left: vec![0],
            on_right: vec![0],
        };
        let plan = LogicalPlan::Project {
            input: Box::new(join),
            exprs: vec![Expr::col(1)], // f.x only
            names: vec!["x".into()],
        };
        let out = prune_projections(plan).unwrap();
        let LogicalPlan::Project { input, .. } = &out else {
            panic!()
        };
        let LogicalPlan::Join {
            left,
            right,
            on_left,
            on_right,
            ..
        } = input.as_ref()
        else {
            panic!()
        };
        // Both sides keep their key column even though only f.x is output.
        let LogicalPlan::Scan { projection: pl, .. } = left.as_ref() else {
            panic!()
        };
        assert_eq!(pl.as_deref(), Some(&[0usize, 1][..]));
        let LogicalPlan::Scan { projection: pr, .. } = right.as_ref() else {
            panic!()
        };
        assert_eq!(pr.as_deref(), Some(&[0usize][..]));
        assert_eq!(on_left, &[0]);
        assert_eq!(on_right, &[0]);
    }

    #[test]
    fn join_order_puts_selective_dimension_first() {
        use cstore_common::Row;
        use cstore_delta::{ColumnStoreTable, TableConfig};
        let mut catalog = MemoryCatalog::new();
        let mk = |n: usize| {
            let t = ColumnStoreTable::new(
                Schema::new(vec![Field::not_null("k", DataType::Int64)]),
                TableConfig {
                    bulk_load_threshold: 1,
                    ..TableConfig::default()
                },
            );
            t.bulk_insert(
                &(0..n as i64)
                    .map(|i| Row::new(vec![Value::Int64(i)]))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            TableRef::ColumnStore(t)
        };
        use crate::catalog::TableRef;
        catalog.register("fact", mk(10_000));
        catalog.register("big_dim", mk(5_000));
        catalog.register("small_dim", mk(10));
        let fact = scan("fact", &[("k", DataType::Int64), ("k2", DataType::Int64)]);
        let big = scan("big_dim", &[("k", DataType::Int64)]);
        let small = scan("small_dim", &[("k", DataType::Int64)]);
        // Original order: fact ⋈ big ⋈ small.
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Join {
                left: Box::new(fact),
                right: Box::new(big),
                join_type: JoinType::Inner,
                on_left: vec![0],
                on_right: vec![0],
            }),
            right: Box::new(small),
            join_type: JoinType::Inner,
            on_left: vec![1],
            on_right: vec![0],
        };
        let fields_before = plan.output_fields().unwrap();
        let out = order_joins(plan, &catalog).unwrap();
        // A compensating project preserves the output schema.
        let fields_after = out.output_fields().unwrap();
        assert_eq!(
            fields_before.iter().map(|f| &f.name).collect::<Vec<_>>(),
            fields_after.iter().map(|f| &f.name).collect::<Vec<_>>()
        );
        // And the innermost join is now against small_dim.
        let LogicalPlan::Project { input, .. } = &out else {
            panic!("expected compensating project, got {out:?}")
        };
        let LogicalPlan::Join { left, .. } = input.as_ref() else {
            panic!()
        };
        let LogicalPlan::Join { right, .. } = left.as_ref() else {
            panic!()
        };
        let LogicalPlan::Scan { table, .. } = right.as_ref() else {
            panic!()
        };
        assert_eq!(table, "small_dim");
    }
}
