//! Logical plans.
//!
//! A conventional relational algebra tree. Expressions reference input
//! columns by ordinal (the SQL binder resolves names); every node can
//! report its output fields, so lowering and rewrites stay type-checked.

use cstore_common::{DataType, Error, Field, Result, Schema};
use cstore_exec::ops::hash_agg::AggExpr;
use cstore_exec::ops::hash_join::JoinType;
use cstore_exec::Expr;
use cstore_storage::pred::ColumnPred;

/// A sort key in a logical plan.
#[derive(Clone, Debug)]
pub struct LogicalSortKey {
    pub expr: Expr,
    pub descending: bool,
}

/// The logical plan tree.
#[derive(Clone, Debug)]
pub enum LogicalPlan {
    /// Base-table scan. `pushed` predicates are single-column constant
    /// predicates the scan evaluates on encoded data; `projection` (when
    /// set) restricts output to those table columns, in order.
    Scan {
        table: String,
        schema: Schema,
        projection: Option<Vec<usize>>,
        pushed: Vec<(usize, ColumnPred)>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
        names: Vec<String>,
    },
    /// Equijoin: `left.on_left[i] = right.on_right[i]`.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        join_type: JoinType,
        on_left: Vec<usize>,
        on_right: Vec<usize>,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
        names: Vec<String>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<LogicalSortKey>,
        limit: Option<usize>,
        offset: usize,
    },
    UnionAll {
        inputs: Vec<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Output fields (names + types) of this node.
    pub fn output_fields(&self) -> Result<Vec<Field>> {
        match self {
            LogicalPlan::Scan {
                schema, projection, ..
            } => Ok(match projection {
                Some(cols) => cols.iter().map(|&c| schema.field(c).clone()).collect(),
                None => schema.fields().to_vec(),
            }),
            LogicalPlan::Filter { input, .. } => input.output_fields(),
            LogicalPlan::Project {
                input,
                exprs,
                names,
            } => {
                let in_fields = input.output_fields()?;
                let in_types: Vec<DataType> = in_fields.iter().map(|f| f.data_type).collect();
                exprs
                    .iter()
                    .zip(names)
                    .map(|(e, n)| Ok(Field::nullable(n.clone(), e.infer_type(&in_types)?)))
                    .collect()
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                ..
            } => {
                let mut fields = left.output_fields()?;
                match join_type {
                    JoinType::LeftSemi | JoinType::LeftAnti => {}
                    _ => fields.extend(right.output_fields()?),
                }
                // Outer joins make the other side's columns nullable.
                Ok(fields
                    .into_iter()
                    .map(|mut f| {
                        f.nullable = true;
                        f
                    })
                    .collect())
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                names,
            } => {
                let in_fields = input.output_fields()?;
                let in_types: Vec<DataType> = in_fields.iter().map(|f| f.data_type).collect();
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for (i, g) in group_by.iter().enumerate() {
                    fields.push(Field::nullable(
                        names.get(i).cloned().unwrap_or_else(|| format!("group{i}")),
                        g.infer_type(&in_types)?,
                    ));
                }
                for (i, a) in aggs.iter().enumerate() {
                    fields.push(Field::nullable(
                        names
                            .get(group_by.len() + i)
                            .cloned()
                            .unwrap_or_else(|| format!("agg{i}")),
                        a.output_type(&in_types)?,
                    ));
                }
                Ok(fields)
            }
            LogicalPlan::Sort { input, .. } => input.output_fields(),
            LogicalPlan::UnionAll { inputs } => inputs
                .first()
                .ok_or_else(|| Error::Plan("empty UNION ALL".into()))?
                .output_fields(),
        }
    }

    /// Output column types.
    pub fn output_types(&self) -> Result<Vec<DataType>> {
        Ok(self.output_fields()?.iter().map(|f| f.data_type).collect())
    }

    /// Number of output columns.
    pub fn arity(&self) -> Result<usize> {
        Ok(self.output_fields()?.len())
    }

    /// Child plans (for generic traversals).
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::UnionAll { inputs } => inputs.iter().collect(),
        }
    }

    /// Resolve a named output column to its ordinal.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.output_fields()?
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::Catalog(format!("unknown column '{name}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_exec::ops::hash_agg::AggFunc;
    use cstore_storage::pred::CmpOp;

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![
                Field::not_null("a", DataType::Int64),
                Field::not_null("b", DataType::Utf8),
                Field::nullable("c", DataType::Float64),
            ]),
            projection: None,
            pushed: vec![],
        }
    }

    #[test]
    fn scan_projection_narrows_fields() {
        let mut s = scan();
        assert_eq!(s.arity().unwrap(), 3);
        if let LogicalPlan::Scan { projection, .. } = &mut s {
            *projection = Some(vec![2, 0]);
        }
        let fields = s.output_fields().unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "c");
        assert_eq!(fields[1].name, "a");
    }

    #[test]
    fn join_concatenates_fields() {
        let j = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            join_type: JoinType::Inner,
            on_left: vec![0],
            on_right: vec![0],
        };
        assert_eq!(j.arity().unwrap(), 6);
        let semi = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            join_type: JoinType::LeftSemi,
            on_left: vec![0],
            on_right: vec![0],
        };
        assert_eq!(semi.arity().unwrap(), 3);
    }

    #[test]
    fn aggregate_fields_and_types() {
        let a = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group_by: vec![Expr::col(1)],
            aggs: vec![
                AggExpr::count_star(),
                AggExpr::new(AggFunc::Avg, Expr::col(0)),
            ],
            names: vec!["b".into(), "n".into(), "avg_a".into()],
        };
        let fields = a.output_fields().unwrap();
        assert_eq!(fields[0].data_type, DataType::Utf8);
        assert_eq!(fields[1].data_type, DataType::Int64);
        assert_eq!(fields[2].data_type, DataType::Float64);
        assert_eq!(a.column_index("avg_a").unwrap(), 2);
    }

    #[test]
    fn filter_preserves_schema() {
        let f = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(5i64)),
        };
        assert_eq!(f.arity().unwrap(), 3);
    }
}
