//! Query planning and optimization.
//!
//! The optimizer enhancements the paper describes, scaled to this engine:
//!
//! * [`logical`] — logical plans (scan/filter/project/join/aggregate/sort/
//!   union) with schema propagation;
//! * [`stats`] — table statistics and selectivity estimation, fed by the
//!   segment directory;
//! * [`rules`] — rewrites: predicate pushdown into scans (as encodable
//!   `ColumnPred`s), projection pruning, and greedy star-join ordering;
//! * [`cost`] — the batch-vs-row mode decision, costed per plan;
//! * [`physical`] — lowering to `cstore-exec` operators, including bitmap-
//!   filter placement between hash joins and probe-side scans;
//! * [`explain`] — plan rendering with the optimizer's annotations.

pub mod catalog;
pub mod cost;
pub mod explain;
pub mod logical;
pub mod physical;
pub mod rules;
pub mod stats;

pub use catalog::{CatalogProvider, TableRef};
pub use cost::ExecMode;
pub use cstore_storage::pred::{CmpOp, ColumnPred};
pub use explain::{explain, explain_analyze};
pub use logical::LogicalPlan;
pub use physical::build_physical;
