//! Lowering logical plans to physical operators.
//!
//! Batch mode lowers to `cstore-exec`'s batch operators; row mode to the
//! row-mode family (wrapped in a row→batch adapter at the root so callers
//! always pull batches). Bitmap-filter placement happens here: for every
//! batch hash join with a single integer probe key whose probe subtree
//! bottoms out in a columnstore scan, the join and the scan are connected
//! through a shared [`FilterSlot`].

use std::sync::Arc;

use cstore_common::{DataType, Error, Result};
use cstore_exec::ops::adapters::{BatchToRow, RowToBatch};
use cstore_exec::ops::filter::FilterOp;
use cstore_exec::ops::hash_join::JoinType;
use cstore_exec::ops::introspect::IntrospectionScan;
use cstore_exec::ops::project::ProjectOp;
use cstore_exec::ops::scan::ColumnStoreScan;
use cstore_exec::ops::sort::{SortKey, SortOp};
use cstore_exec::ops::union::UnionAllOp;
use cstore_exec::row_ops::{
    HeapScan, RowFilter, RowHashAgg, RowHashJoin, RowProject, SnapshotRowScan,
};
use cstore_exec::{
    BatchHashJoin, BoxedBatchOp, BoxedRowOp, ExecContext, Expr, FilterSlot, HashAggOp, RowStatsOp,
    StatsOp,
};

use crate::catalog::{CatalogProvider, TableRef};
use crate::cost::{choose_mode, ExecMode};
use crate::logical::LogicalPlan;

/// A physical plan ready to execute, plus what the optimizer decided.
pub struct PhysicalPlan {
    pub root: BoxedBatchOp,
    /// The concrete mode chosen (never `Auto`).
    pub mode: ExecMode,
    /// Number of bitmap filters installed.
    pub bitmap_filters: usize,
}

/// Build a physical plan for `plan`.
pub fn build_physical(
    plan: &LogicalPlan,
    catalog: &dyn CatalogProvider,
    ctx: &ExecContext,
    mode: ExecMode,
) -> Result<PhysicalPlan> {
    let mode = choose_mode(mode, plan, catalog);
    // Pre-order node counter: the same numbering `explain::render` walks,
    // so EXPLAIN ANALYZE can pair each rendered node with its operator's
    // actuals via `ExecStats::for_node`.
    let mut node = 0usize;
    match mode {
        ExecMode::Batch => {
            let mut n_filters = 0usize;
            let root = build_batch(plan, catalog, ctx, None, &mut n_filters, &mut node)?;
            Ok(PhysicalPlan {
                root,
                mode,
                bitmap_filters: n_filters,
            })
        }
        ExecMode::Row => {
            let row_root = build_row(plan, catalog, ctx, &mut node)?;
            Ok(PhysicalPlan {
                root: Box::new(RowToBatch::new(row_root, ctx.batch_size)),
                mode,
                bitmap_filters: 0,
            })
        }
        // lint: allow(panic) — choose_mode resolves Auto to a concrete
        // mode before this dispatch
        ExecMode::Auto => unreachable!("choose_mode resolves Auto"),
    }
}

/// A request from a join to install its bitmap filter on the scan feeding
/// column `column` of the current subtree's output.
struct FilterRequest {
    column: usize,
    slot: FilterSlot,
}

/// Operator label as EXPLAIN renders it (shared by the stats wrappers so
/// EXPLAIN ANALYZE output and `ExecStats` labels line up).
pub fn node_label(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::Scan { table, .. } => format!("Scan {table}"),
        LogicalPlan::Filter { .. } => "Filter".into(),
        LogicalPlan::Project { .. } => "Project".into(),
        LogicalPlan::Join { join_type, .. } => format!("HashJoin {join_type:?}"),
        LogicalPlan::Aggregate { .. } => "HashAggregate".into(),
        LogicalPlan::Sort { .. } => "Sort".into(),
        LogicalPlan::UnionAll { .. } => "UnionAll".into(),
    }
}

// --------------------------------------------------------------- batch

/// Lower one logical node: claim its pre-order number, build the operator
/// (sub)tree, and wrap it in a [`StatsOp`] so EXPLAIN ANALYZE sees the
/// node's actual rows/batches/time. Multi-operator lowerings (heap scans,
/// row-mode sorts) get one wrapper at the subtree root.
fn build_batch(
    plan: &LogicalPlan,
    catalog: &dyn CatalogProvider,
    ctx: &ExecContext,
    filter_req: Option<FilterRequest>,
    n_filters: &mut usize,
    node: &mut usize,
) -> Result<BoxedBatchOp> {
    let node_id = *node;
    *node += 1;
    let op = build_batch_inner(plan, catalog, ctx, filter_req, n_filters, node)?;
    let stats = ctx.stats.register(node_id, node_label(plan));
    Ok(Box::new(StatsOp::new(op, stats, ctx.deadline)))
}

fn build_batch_inner(
    plan: &LogicalPlan,
    catalog: &dyn CatalogProvider,
    ctx: &ExecContext,
    filter_req: Option<FilterRequest>,
    n_filters: &mut usize,
    node: &mut usize,
) -> Result<BoxedBatchOp> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            pushed,
            ..
        } => {
            let t = catalog
                .table(table)
                .ok_or_else(|| Error::Catalog(format!("unknown table '{table}'")))?;
            match t {
                TableRef::ColumnStore(t) => {
                    // An open transaction pins its stable view (plus its
                    // own buffered writes) via the context; otherwise
                    // scan the live table.
                    let snapshot = ctx.snapshot_for(table).unwrap_or_else(|| t.snapshot());
                    let proj: Vec<usize> = match projection {
                        Some(p) => p.clone(),
                        None => (0..snapshot.schema().len()).collect(),
                    };
                    // Bitmap filter target, mapped back to a table column.
                    let filter = filter_req.and_then(|req| {
                        proj.get(req.column).map(|&table_col| (table_col, req.slot))
                    });
                    if ctx.parallelism > 1 && snapshot.groups().len() > 1 {
                        let mut scan = cstore_exec::ParallelScan::new(
                            snapshot,
                            proj,
                            pushed.clone(),
                            ctx.clone(),
                            ctx.parallelism,
                        );
                        if let Some((col, slot)) = filter {
                            scan = scan.with_bitmap_filter(col, slot);
                            *n_filters += 1;
                        }
                        return Ok(Box::new(scan));
                    }
                    let mut scan =
                        ColumnStoreScan::new(snapshot, proj, pushed.clone(), ctx.clone());
                    if let Some((col, slot)) = filter {
                        scan = scan.with_bitmap_filter(col, slot);
                        *n_filters += 1;
                    }
                    Ok(Box::new(scan))
                }
                TableRef::Heap(h) => {
                    // Heap tables scan in row mode and adapt; pushed
                    // predicates become a batch filter above the adapter.
                    let scan: BoxedRowOp = Box::new(HeapScan::new(h));
                    let mut op: BoxedBatchOp = Box::new(RowToBatch::new(scan, ctx.batch_size));
                    if !pushed.is_empty() {
                        let pred = preds_to_expr(pushed);
                        op = Box::new(FilterOp::new(op, pred));
                    }
                    if let Some(p) = projection {
                        let exprs: Vec<Expr> = p.iter().map(|&c| Expr::col(c)).collect();
                        op = Box::new(ProjectOp::new(op, exprs)?);
                    }
                    Ok(op)
                }
                TableRef::Virtual(v) => {
                    // Already materialized at bind time; predicates and
                    // projection apply inside the scan. Bitmap-filter
                    // requests are dropped (the slot just stays empty,
                    // the same as the heap path).
                    let types: Vec<DataType> =
                        v.schema.fields().iter().map(|f| f.data_type).collect();
                    let proj: Vec<usize> = match projection {
                        Some(p) => p.clone(),
                        None => (0..types.len()).collect(),
                    };
                    Ok(Box::new(IntrospectionScan::new(
                        v.rows.clone(),
                        &types,
                        proj,
                        pushed.clone(),
                        ctx.batch_size,
                        ctx.deadline,
                    )))
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = build_batch(
                input,
                catalog,
                ctx,
                pass_through(filter_req),
                n_filters,
                node,
            )?;
            Ok(Box::new(FilterOp::new(child, predicate.clone())))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            // A filter request survives a projection only if the requested
            // output column is a bare column reference.
            let fwd = filter_req.and_then(|req| match exprs.get(req.column) {
                Some(Expr::Col(c)) => Some(FilterRequest {
                    column: *c,
                    slot: req.slot,
                }),
                _ => None,
            });
            let child = build_batch(input, catalog, ctx, fwd, n_filters, node)?;
            Ok(Box::new(ProjectOp::new(child, exprs.clone())?))
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on_left,
            on_right,
        } => {
            // Create this join's bitmap-filter slot. Only sound for join
            // types that *discard* unmatched probe rows — left outer, full
            // outer and anti joins must see every probe row, so semi-join
            // reduction at the scan would change their results.
            let filter_safe = matches!(
                join_type,
                JoinType::Inner | JoinType::LeftSemi | JoinType::RightOuter
            );
            let slot: Option<FilterSlot> =
                if ctx.enable_bitmap_filters && filter_safe && on_left.len() == 1 {
                    Some(Arc::new(std::sync::OnceLock::new()))
                } else {
                    None
                };
            let probe_req = slot.clone().map(|slot| FilterRequest {
                column: on_left[0],
                slot,
            });
            // A request from above targets a probe-side (left) column when
            // it survives the join's output layout.
            let left_arity = left.arity()?;
            let fwd_above = filter_req.and_then(|req| {
                (req.column < left_arity).then_some(FilterRequest {
                    column: req.column,
                    slot: req.slot,
                })
            });
            // Prefer this join's own request; an outer request for the
            // same subtree is rarer and dropped (one filter per scan).
            let req = probe_req.or(fwd_above);
            let probe = build_batch(left, catalog, ctx, req, n_filters, node)?;
            let build = build_batch(right, catalog, ctx, None, n_filters, node)?;
            let mut join = BatchHashJoin::new(
                probe,
                build,
                on_left.clone(),
                on_right.clone(),
                *join_type,
                ctx.clone(),
            )?;
            if let Some(slot) = slot {
                join = join.with_filter_slot(slot);
            }
            Ok(Box::new(join))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let child = build_batch(input, catalog, ctx, None, n_filters, node)?;
            Ok(Box::new(HashAggOp::new(
                child,
                group_by.clone(),
                aggs.clone(),
                ctx.clone(),
            )?))
        }
        LogicalPlan::Sort {
            input,
            keys,
            limit,
            offset,
        } => {
            let child = build_batch(input, catalog, ctx, None, n_filters, node)?;
            let keys = keys
                .iter()
                .map(|k| SortKey {
                    expr: k.expr.clone(),
                    descending: k.descending,
                })
                .collect();
            let mut sort = SortOp::new(child, keys, ctx.clone()).with_offset(*offset);
            if let Some(l) = limit {
                sort = sort.with_limit(*l);
            }
            Ok(Box::new(sort))
        }
        LogicalPlan::UnionAll { inputs } => {
            let children = inputs
                .iter()
                .map(|p| build_batch(p, catalog, ctx, None, n_filters, node))
                .collect::<Result<Vec<_>>>()?;
            Ok(Box::new(UnionAllOp::new(children)?))
        }
    }
}

fn pass_through(req: Option<FilterRequest>) -> Option<FilterRequest> {
    req
}

/// Turn pushed scan predicates back into an expression (heap fallback).
fn preds_to_expr(pushed: &[(usize, cstore_storage::pred::ColumnPred)]) -> Expr {
    use cstore_storage::pred::ColumnPred;
    let mut conjuncts: Vec<Expr> = Vec::with_capacity(pushed.len());
    for (col, pred) in pushed {
        let c = Expr::col(*col);
        conjuncts.push(match pred {
            ColumnPred::Cmp { op, value } => Expr::cmp(*op, c, Expr::Lit(value.clone())),
            ColumnPred::Between { lo, hi } => Expr::and(
                Expr::cmp(
                    cstore_storage::pred::CmpOp::Ge,
                    c.clone(),
                    Expr::Lit(lo.clone()),
                ),
                Expr::cmp(cstore_storage::pred::CmpOp::Le, c, Expr::Lit(hi.clone())),
            ),
            ColumnPred::InList(vals) => Expr::InList {
                expr: Box::new(c),
                list: vals.clone(),
            },
            ColumnPred::IsNull => Expr::IsNull(Box::new(c)),
            ColumnPred::IsNotNull => Expr::IsNotNull(Box::new(c)),
        });
    }
    crate::rules::conjoin(conjuncts).unwrap_or(Expr::Lit(cstore_common::Value::Bool(true)))
}

// ----------------------------------------------------------------- row

/// Row-mode mirror of [`build_batch`]: same pre-order numbering, wrapped
/// in [`RowStatsOp`].
fn build_row(
    plan: &LogicalPlan,
    catalog: &dyn CatalogProvider,
    ctx: &ExecContext,
    node: &mut usize,
) -> Result<BoxedRowOp> {
    let node_id = *node;
    *node += 1;
    let op = build_row_inner(plan, catalog, ctx, node)?;
    let stats = ctx.stats.register(node_id, node_label(plan));
    Ok(Box::new(RowStatsOp::new(op, stats, ctx.deadline)))
}

fn build_row_inner(
    plan: &LogicalPlan,
    catalog: &dyn CatalogProvider,
    ctx: &ExecContext,
    node: &mut usize,
) -> Result<BoxedRowOp> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            pushed,
            ..
        } => {
            let t = catalog
                .table(table)
                .ok_or_else(|| Error::Catalog(format!("unknown table '{table}'")))?;
            let mut op: BoxedRowOp = match t {
                TableRef::Heap(h) => Box::new(HeapScan::new(h)),
                TableRef::ColumnStore(t) => Box::new(SnapshotRowScan::new(
                    &ctx.snapshot_for(table).unwrap_or_else(|| t.snapshot()),
                )),
                TableRef::Virtual(v) => {
                    // The batch scan already handles projection + pushdown;
                    // adapt it to row mode and return directly.
                    let types: Vec<DataType> =
                        v.schema.fields().iter().map(|f| f.data_type).collect();
                    let proj: Vec<usize> = match projection {
                        Some(p) => p.clone(),
                        None => (0..types.len()).collect(),
                    };
                    let scan = IntrospectionScan::new(
                        v.rows.clone(),
                        &types,
                        proj,
                        pushed.clone(),
                        ctx.batch_size,
                        ctx.deadline,
                    );
                    return Ok(Box::new(BatchToRow::new(Box::new(scan))));
                }
            };
            if !pushed.is_empty() {
                op = Box::new(RowFilter::new(op, preds_to_expr(pushed)));
            }
            if let Some(p) = projection {
                let exprs: Vec<Expr> = p.iter().map(|&c| Expr::col(c)).collect();
                op = Box::new(RowProject::new(op, exprs)?);
            }
            Ok(op)
        }
        LogicalPlan::Filter { input, predicate } => Ok(Box::new(RowFilter::new(
            build_row(input, catalog, ctx, node)?,
            predicate.clone(),
        ))),
        LogicalPlan::Project { input, exprs, .. } => Ok(Box::new(RowProject::new(
            build_row(input, catalog, ctx, node)?,
            exprs.clone(),
        )?)),
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on_left,
            on_right,
        } => {
            if matches!(join_type, JoinType::RightOuter | JoinType::FullOuter) {
                return Err(Error::Unsupported(
                    "right/full outer joins require batch mode".into(),
                ));
            }
            Ok(Box::new(RowHashJoin::new(
                build_row(left, catalog, ctx, node)?,
                build_row(right, catalog, ctx, node)?,
                on_left.clone(),
                on_right.clone(),
                *join_type,
            )?))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => Ok(Box::new(RowHashAgg::new(
            build_row(input, catalog, ctx, node)?,
            group_by.clone(),
            aggs.clone(),
        )?)),
        LogicalPlan::Sort {
            input,
            keys,
            limit,
            offset,
        } => {
            // Row-mode plans reuse the (materializing) sort through
            // adapters; sorting is a stop-and-go operator either way.
            let child = build_row(input, catalog, ctx, node)?;
            let as_batch: BoxedBatchOp = Box::new(RowToBatch::new(child, ctx.batch_size));
            let keys = keys
                .iter()
                .map(|k| SortKey {
                    expr: k.expr.clone(),
                    descending: k.descending,
                })
                .collect();
            let mut sort = SortOp::new(as_batch, keys, ctx.clone()).with_offset(*offset);
            if let Some(l) = limit {
                sort = sort.with_limit(*l);
            }
            Ok(Box::new(cstore_exec::ops::adapters::BatchToRow::new(
                Box::new(sort),
            )))
        }
        LogicalPlan::UnionAll { inputs } => {
            // Row-mode union: chain inputs through a small adapter.
            struct RowUnion {
                inputs: Vec<BoxedRowOp>,
                current: usize,
                types: Vec<DataType>,
            }
            impl cstore_exec::RowOperator for RowUnion {
                fn output_types(&self) -> &[DataType] {
                    &self.types
                }
                fn next(&mut self) -> Result<Option<cstore_common::Row>> {
                    while self.current < self.inputs.len() {
                        if let Some(r) = self.inputs[self.current].next()? {
                            return Ok(Some(r));
                        }
                        self.current += 1;
                    }
                    Ok(None)
                }
            }
            let children = inputs
                .iter()
                .map(|p| build_row(p, catalog, ctx, node))
                .collect::<Result<Vec<_>>>()?;
            let types = children
                .first()
                .ok_or_else(|| Error::Plan("empty UNION ALL".into()))?
                .output_types()
                .to_vec();
            Ok(Box::new(RowUnion {
                inputs: children,
                current: 0,
                types,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemoryCatalog;
    use crate::rules::optimize;
    use cstore_common::{Field, Row, Schema, Value};
    use cstore_delta::{ColumnStoreTable, TableConfig};
    use cstore_exec::ops::collect_rows;
    use cstore_exec::ops::hash_agg::{AggExpr, AggFunc};
    use cstore_storage::pred::CmpOp;

    fn setup() -> MemoryCatalog {
        let mut catalog = MemoryCatalog::new();
        // fact(k, dim_k, amount)
        let fact = ColumnStoreTable::new(
            Schema::new(vec![
                Field::not_null("k", DataType::Int64),
                Field::not_null("dim_k", DataType::Int64),
                Field::not_null("amount", DataType::Int64),
            ]),
            TableConfig {
                bulk_load_threshold: 100,
                max_rowgroup_rows: 2000,
                ..TableConfig::default()
            },
        );
        fact.bulk_insert(
            &(0..5000)
                .map(|i| {
                    Row::new(vec![
                        Value::Int64(i),
                        Value::Int64(i % 50),
                        Value::Int64(i % 7),
                    ])
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        catalog.register("fact", TableRef::ColumnStore(fact));
        // dim(k, name)
        let dim = ColumnStoreTable::new(
            Schema::new(vec![
                Field::not_null("k", DataType::Int64),
                Field::not_null("name", DataType::Utf8),
            ]),
            TableConfig {
                bulk_load_threshold: 10,
                ..TableConfig::default()
            },
        );
        dim.bulk_insert(
            &(0..50)
                .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("d{i}"))]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        catalog.register("dim", TableRef::ColumnStore(dim));
        catalog
    }

    fn star_query() -> LogicalPlan {
        // SELECT dim.name, SUM(fact.amount) FROM fact JOIN dim ON
        // fact.dim_k = dim.k WHERE dim.k < 3 GROUP BY dim.name
        let fact = LogicalPlan::Scan {
            table: "fact".into(),
            schema: Schema::new(vec![
                Field::not_null("k", DataType::Int64),
                Field::not_null("dim_k", DataType::Int64),
                Field::not_null("amount", DataType::Int64),
            ]),
            projection: None,
            pushed: vec![],
        };
        let dim = LogicalPlan::Scan {
            table: "dim".into(),
            schema: Schema::new(vec![
                Field::not_null("k", DataType::Int64),
                Field::not_null("name", DataType::Utf8),
            ]),
            projection: None,
            pushed: vec![],
        };
        let join = LogicalPlan::Join {
            left: Box::new(fact),
            right: Box::new(dim),
            join_type: JoinType::Inner,
            on_left: vec![1],
            on_right: vec![0],
        };
        let filtered = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: Expr::cmp(CmpOp::Lt, Expr::col(3), Expr::lit(3i64)),
        };
        LogicalPlan::Aggregate {
            input: Box::new(filtered),
            group_by: vec![Expr::col(4)],
            aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(2))],
            names: vec!["name".into(), "total".into()],
        }
    }

    fn run(mode: ExecMode) -> Vec<Row> {
        let catalog = setup();
        let plan = optimize(star_query(), &catalog).unwrap();
        let ctx = ExecContext::default();
        let phys = build_physical(&plan, &catalog, &ctx, mode).unwrap();
        collect_rows(phys.root).unwrap()
    }

    #[test]
    fn batch_and_row_agree_on_star_query() {
        let mut batch = run(ExecMode::Batch);
        let mut row = run(ExecMode::Row);
        batch.sort();
        row.sort();
        assert_eq!(batch, row);
        assert_eq!(batch.len(), 3);
        // dim_k = 0: fact rows i % 50 == 0 → i in {0,50,...}; sum of i%7.
        let expect: i64 = (0..5000).filter(|i| i % 50 == 0).map(|i| i % 7).sum();
        let d0 = batch
            .iter()
            .find(|r| r.get(0) == &Value::str("d0"))
            .unwrap();
        assert_eq!(d0.get(1), &Value::Int64(expect));
    }

    #[test]
    fn bitmap_filter_installed_on_star_join() {
        let catalog = setup();
        let plan = optimize(star_query(), &catalog).unwrap();
        let ctx = ExecContext::default();
        let phys = build_physical(&plan, &catalog, &ctx, ExecMode::Batch).unwrap();
        assert_eq!(phys.bitmap_filters, 1);
        let rows = collect_rows(phys.root).unwrap();
        assert_eq!(rows.len(), 3);
        // The filter actually dropped probe rows at the scan.
        let dropped = ctx
            .metrics
            .snapshot()
            .iter()
            .find(|(n, _)| *n == "rows_dropped_by_bitmap")
            .unwrap()
            .1;
        assert!(dropped > 0, "bitmap filter had no effect");
    }

    #[test]
    fn auto_mode_picks_batch_for_big_scan() {
        let catalog = setup();
        let plan = optimize(star_query(), &catalog).unwrap();
        let ctx = ExecContext::default();
        let phys = build_physical(&plan, &catalog, &ctx, ExecMode::Auto).unwrap();
        assert_eq!(phys.mode, ExecMode::Batch);
    }
}
