//! The batch-vs-row execution mode decision.
//!
//! SQL Server's optimizer costs row-mode and batch-mode alternatives and
//! picks the cheaper plan. The dominant effect the paper describes: batch
//! mode amortizes per-row interpretation overhead over ~1000-row batches,
//! so it wins decisively on large inputs, while very small inputs don't
//! recoup the per-batch setup cost. The model here captures exactly that
//! trade-off.

use crate::catalog::CatalogProvider;
use crate::logical::LogicalPlan;
use crate::rules::estimate_rows;

/// Requested execution mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Cost-based choice (the default).
    #[default]
    Auto,
    /// Force batch mode.
    Batch,
    /// Force row mode.
    Row,
}

/// Per-row CPU cost of a row-mode operator (arbitrary units).
const ROW_COST_PER_ROW: f64 = 1.0;
/// Per-row CPU cost of a batch-mode operator.
const BATCH_COST_PER_ROW: f64 = 0.05;
/// Fixed per-batch overhead (dispatch + vector setup), amortized over
/// ~900-row batches.
const BATCH_OVERHEAD_PER_BATCH: f64 = 40.0;
/// Rows per batch assumed by the model.
const MODEL_BATCH_ROWS: f64 = 900.0;

/// Rows each operator consumes: its children's outputs (scans consume the
/// rows they read, approximated by their post-elimination estimate).
fn rows_consumed(plan: &LogicalPlan, catalog: &dyn CatalogProvider) -> f64 {
    let children = plan.children();
    if children.is_empty() {
        estimate_rows(plan, catalog)
    } else {
        children
            .iter()
            .map(|c| estimate_rows(c, catalog))
            .sum::<f64>()
    }
}

/// Estimated cost of running `plan` in row mode: every operator pays a
/// per-row interpretation cost for each row it consumes.
pub fn row_mode_cost(plan: &LogicalPlan, catalog: &dyn CatalogProvider) -> f64 {
    let own = rows_consumed(plan, catalog).max(1.0) * ROW_COST_PER_ROW;
    own + plan
        .children()
        .iter()
        .map(|c| row_mode_cost(c, catalog))
        .sum::<f64>()
}

/// Estimated cost of running `plan` in batch mode: the per-row cost is
/// amortized, but each ~900-row batch pays a fixed dispatch overhead.
pub fn batch_mode_cost(plan: &LogicalPlan, catalog: &dyn CatalogProvider) -> f64 {
    let rows = rows_consumed(plan, catalog).max(1.0);
    let batches = (rows / MODEL_BATCH_ROWS).ceil().max(1.0);
    let own = rows * BATCH_COST_PER_ROW + batches * BATCH_OVERHEAD_PER_BATCH;
    own + plan
        .children()
        .iter()
        .map(|c| batch_mode_cost(c, catalog))
        .sum::<f64>()
}

/// Resolve `Auto` to a concrete mode for this plan.
pub fn choose_mode(mode: ExecMode, plan: &LogicalPlan, catalog: &dyn CatalogProvider) -> ExecMode {
    match mode {
        ExecMode::Auto => {
            if requires_batch(plan) {
                return ExecMode::Batch;
            }
            if batch_mode_cost(plan, catalog) <= row_mode_cost(plan, catalog) {
                ExecMode::Batch
            } else {
                ExecMode::Row
            }
        }
        m => m,
    }
}

/// Plans only batch mode can run (row-mode hash join lacks right/full
/// outer variants — mirroring how the 2012 release's limitations forced
/// mode choices, but in the opposite direction).
fn requires_batch(plan: &LogicalPlan) -> bool {
    use cstore_exec::ops::hash_join::JoinType;
    match plan {
        LogicalPlan::Join {
            join_type,
            left,
            right,
            ..
        } => {
            matches!(join_type, JoinType::RightOuter | JoinType::FullOuter)
                || requires_batch(left)
                || requires_batch(right)
        }
        other => other.children().iter().any(|c| requires_batch(c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemoryCatalog, TableRef};
    use cstore_common::{DataType, Field, Row, Schema, Value};
    use cstore_delta::{ColumnStoreTable, TableConfig};

    fn catalog_with(n: usize) -> (MemoryCatalog, LogicalPlan) {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int64)]);
        let t = ColumnStoreTable::new(
            schema.clone(),
            TableConfig {
                bulk_load_threshold: 1,
                ..TableConfig::default()
            },
        );
        if n > 0 {
            t.bulk_insert(
                &(0..n as i64)
                    .map(|i| Row::new(vec![Value::Int64(i)]))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        }
        let mut c = MemoryCatalog::new();
        c.register("t", TableRef::ColumnStore(t));
        let plan = LogicalPlan::Scan {
            table: "t".into(),
            schema,
            projection: None,
            pushed: vec![],
        };
        (c, plan)
    }

    #[test]
    fn large_inputs_choose_batch() {
        let (c, plan) = catalog_with(100_000);
        assert_eq!(choose_mode(ExecMode::Auto, &plan, &c), ExecMode::Batch);
    }

    #[test]
    fn tiny_inputs_choose_row() {
        let (c, plan) = catalog_with(10);
        assert_eq!(choose_mode(ExecMode::Auto, &plan, &c), ExecMode::Row);
    }

    #[test]
    fn forced_modes_respected() {
        let (c, plan) = catalog_with(100_000);
        assert_eq!(choose_mode(ExecMode::Row, &plan, &c), ExecMode::Row);
        assert_eq!(choose_mode(ExecMode::Batch, &plan, &c), ExecMode::Batch);
    }

    #[test]
    fn full_outer_requires_batch() {
        use cstore_exec::ops::hash_join::JoinType;
        let (c, scan) = catalog_with(10);
        let plan = LogicalPlan::Join {
            left: Box::new(scan.clone()),
            right: Box::new(scan),
            join_type: JoinType::FullOuter,
            on_left: vec![0],
            on_right: vec![0],
        };
        assert_eq!(choose_mode(ExecMode::Auto, &plan, &c), ExecMode::Batch);
    }
}
