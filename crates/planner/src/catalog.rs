//! The planner's view of tables.

use std::sync::Arc;

use cstore_common::{Row, Schema};
use cstore_delta::ColumnStoreTable;
use cstore_rowstore::HeapTable;

/// A read-only table materialized at bind time (the `sys.*` introspection
/// views): the rows are a point-in-time snapshot, so planning and
/// execution never reach back into storage locks.
pub struct VirtualTable {
    pub name: String,
    pub schema: Schema,
    pub rows: Arc<Vec<Row>>,
}

impl VirtualTable {
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> VirtualTable {
        VirtualTable {
            name: name.into(),
            schema,
            rows: Arc::new(rows),
        }
    }
}

/// A table reference the planner can plan against: an updatable clustered
/// columnstore, a classic row-store heap (the baseline), or a virtual
/// table materialized by the introspection layer.
#[derive(Clone)]
pub enum TableRef {
    ColumnStore(ColumnStoreTable),
    Heap(Arc<HeapTable>),
    Virtual(Arc<VirtualTable>),
}

impl TableRef {
    pub fn schema(&self) -> Schema {
        match self {
            TableRef::ColumnStore(t) => t.schema().clone(),
            TableRef::Heap(t) => t.schema().clone(),
            TableRef::Virtual(t) => t.schema.clone(),
        }
    }

    /// Live row count (statistics input).
    pub fn row_count(&self) -> usize {
        match self {
            TableRef::ColumnStore(t) => t.total_rows(),
            TableRef::Heap(t) => t.n_rows(),
            TableRef::Virtual(t) => t.rows.len(),
        }
    }

    pub fn is_columnstore(&self) -> bool {
        matches!(self, TableRef::ColumnStore(_))
    }
}

/// Name → table resolution (implemented by the database catalog).
pub trait CatalogProvider {
    fn table(&self, name: &str) -> Option<TableRef>;

    /// Cached (e.g. ANALYZE-collected) statistics for a table, if any.
    /// The optimizer prefers these over on-the-fly directory scans.
    fn statistics(&self, _name: &str) -> Option<crate::stats::TableStatistics> {
        None
    }
}

/// A trivial map-backed catalog (tests, benches).
#[derive(Default)]
pub struct MemoryCatalog {
    tables: Vec<(String, TableRef)>,
}

impl MemoryCatalog {
    pub fn new() -> Self {
        MemoryCatalog::default()
    }

    pub fn register(&mut self, name: impl Into<String>, table: TableRef) {
        self.tables.push((name.into(), table));
    }
}

impl CatalogProvider for MemoryCatalog {
    fn table(&self, name: &str) -> Option<TableRef> {
        self.tables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.clone())
    }
}
