//! The planner's view of tables.

use std::sync::Arc;

use cstore_common::Schema;
use cstore_delta::ColumnStoreTable;
use cstore_rowstore::HeapTable;

/// A table reference the planner can plan against: either an updatable
/// clustered columnstore or a classic row-store heap (the baseline).
#[derive(Clone)]
pub enum TableRef {
    ColumnStore(ColumnStoreTable),
    Heap(Arc<HeapTable>),
}

impl TableRef {
    pub fn schema(&self) -> Schema {
        match self {
            TableRef::ColumnStore(t) => t.schema().clone(),
            TableRef::Heap(t) => t.schema().clone(),
        }
    }

    /// Live row count (statistics input).
    pub fn row_count(&self) -> usize {
        match self {
            TableRef::ColumnStore(t) => t.total_rows(),
            TableRef::Heap(t) => t.n_rows(),
        }
    }

    pub fn is_columnstore(&self) -> bool {
        matches!(self, TableRef::ColumnStore(_))
    }
}

/// Name → table resolution (implemented by the database catalog).
pub trait CatalogProvider {
    fn table(&self, name: &str) -> Option<TableRef>;

    /// Cached (e.g. ANALYZE-collected) statistics for a table, if any.
    /// The optimizer prefers these over on-the-fly directory scans.
    fn statistics(&self, _name: &str) -> Option<crate::stats::TableStatistics> {
        None
    }
}

/// A trivial map-backed catalog (tests, benches).
#[derive(Default)]
pub struct MemoryCatalog {
    tables: Vec<(String, TableRef)>,
}

impl MemoryCatalog {
    pub fn new() -> Self {
        MemoryCatalog::default()
    }

    pub fn register(&mut self, name: impl Into<String>, table: TableRef) {
        self.tables.push((name.into(), table));
    }
}

impl CatalogProvider for MemoryCatalog {
    fn table(&self, name: &str) -> Option<TableRef> {
        self.tables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.clone())
    }
}
