//! Shared substrate for the `cstore` workspace: scalar types, values,
//! schemas, rows, bitmaps, row identifiers, fast hashing and errors.
//!
//! Every other crate in the workspace depends on this one; it has no
//! runtime dependencies of its own.

pub mod bitmap;
pub mod convert;
pub mod error;
pub mod fault;
pub mod governor;
pub mod hash;
pub mod metrics;
pub mod rid;
pub mod row;
pub mod schema;
pub mod sync;
pub mod testutil;
pub mod trace;
pub mod types;
pub mod value;
pub mod waits;

pub use bitmap::Bitmap;
pub use error::{Error, Result};
pub use fault::{FaultInjector, FaultKind, FaultSpec, KNOWN_FAULT_POINTS};
pub use governor::{
    AdmissionGate, AdmissionPermit, BackpressureGate, Governor, GovernorSnapshot, Health,
    MemoryLedger, QueryReservation,
};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use metrics::{Counter, Histogram, MetricSnapshot, Registry};
pub use rid::{RowGroupId, RowId};
pub use row::Row;
pub use schema::{Field, Schema};
pub use types::DataType;
pub use value::Value;
pub use waits::{WaitClass, WaitProfile, WaitSnapshot};
