//! Engine-wide wait statistics: a wait-class taxonomy, a global
//! accumulator, and a thread-local *current-query wait frame*.
//!
//! Every blocking point in the engine — the WAL group-commit park, the
//! admission gate, memory-grant denials, backpressure slices, contended
//! leveled-lock acquisitions, spill file IO, the tuple mover's idle
//! parks — calls [`observe`] with a [`WaitClass`] and the time spent
//! blocked. Each observation is recorded three ways:
//!
//! 1. **Globally**, into a process-wide accumulator served by
//!    `sys.wait_stats` and the `cstore_wait_*` Prometheus series.
//! 2. **Per query**, into the [`WaitProfile`] installed on the current
//!    thread (if any). `Database::execute` installs the running query's
//!    profile before admission, so queueing *for* admission is charged
//!    to the queued query — never smeared onto whoever happens to be
//!    running. Engine threads with no installed frame (tuple mover,
//!    WAL writer, scan workers that weren't handed a frame) record
//!    globally only.
//! 3. **Per thread**, into a monotone cumulative counter sampled by
//!    trace spans so each span can report the wait time that elapsed
//!    inside it ([`thread_wait_ns`]).
//!
//! Lock discipline: the dynamic `LOCK_<name>` registry and each
//! profile's lock map use **raw** `std::sync::Mutex`es, deliberately
//! outside the leveled-lock system — `observe` is called from
//! `sync::acquire_timed` itself and from code holding arbitrary leveled
//! locks, so it must never participate in lock-order tracking (same
//! exemption as the lockdep registry; see LOCK_ORDER.md).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Where a wait happened. The static variants cover the engine's named
/// blocking subsystems; `Lock` fans out per leveled-lock name at
/// runtime (rendered as `LOCK_<name>`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitClass {
    /// Parked in `Wal::commit` waiting for the group-commit flusher to
    /// make an LSN durable (or leading the flush inline in strict mode).
    WalCommit,
    /// Queued in `AdmissionGate::admit` waiting for a concurrency slot.
    Admission,
    /// `MemoryLedger` reservation denied for lack of budget. The ledger
    /// never blocks, so `total_ns` stays zero — `count` is the number
    /// of denials.
    MemoryGrant,
    /// Parked in `BackpressureGate::wait_slice` behind full delta
    /// stores.
    Backpressure,
    /// Spill-file reads and writes (grace hash join / external sort).
    SpillIo,
    /// The tuple mover thread parked between work (idle interval or
    /// failure backoff).
    Mover,
    /// Contended acquisition of the named leveled lock.
    Lock(&'static str),
}

const STATIC_CLASSES: [(WaitClass, &str); 6] = [
    (WaitClass::WalCommit, "WAL_COMMIT"),
    (WaitClass::Admission, "ADMISSION"),
    (WaitClass::MemoryGrant, "MEMORY_GRANT"),
    (WaitClass::Backpressure, "BACKPRESSURE"),
    (WaitClass::SpillIo, "SPILL_IO"),
    (WaitClass::Mover, "MOVER"),
];

impl WaitClass {
    fn static_index(self) -> Option<usize> {
        match self {
            WaitClass::WalCommit => Some(0),
            WaitClass::Admission => Some(1),
            WaitClass::MemoryGrant => Some(2),
            WaitClass::Backpressure => Some(3),
            WaitClass::SpillIo => Some(4),
            WaitClass::Mover => Some(5),
            WaitClass::Lock(_) => None,
        }
    }

    /// Canonical `SCREAMING_CASE` label (`LOCK_<name>` for locks).
    pub fn label(self) -> String {
        match self {
            WaitClass::Lock(name) => format!("LOCK_{name}"),
            other => match other.static_index() {
                Some(i) => STATIC_CLASSES[i].1.to_string(),
                None => String::new(),
            },
        }
    }
}

/// One accumulator cell: (count, total_ns, max_ns), all lock-free.
#[derive(Default)]
struct WaitCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl WaitCell {
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.total_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

/// A point-in-time reading of one wait class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitSnapshot {
    /// Canonical label, e.g. `WAL_COMMIT` or `LOCK_wal.state`.
    pub class: String,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// Accumulated waits for one scope — the process (global) or one query.
#[derive(Default)]
pub struct WaitProfile {
    cells: [WaitCell; STATIC_CLASSES.len()],
    // Raw mutex on purpose: recorded into from inside the leveled-lock
    // slow path, so it must stay outside lock-order tracking.
    locks: Mutex<BTreeMap<&'static str, WaitCell>>,
}

impl WaitProfile {
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, class: WaitClass, ns: u64) {
        match class.static_index() {
            Some(i) => self.cells[i].record(ns),
            None => {
                if let WaitClass::Lock(name) = class {
                    match self.locks.lock() {
                        Ok(mut map) => map.entry(name).or_default().record(ns),
                        // Poisoned only if a panic unwound mid-record;
                        // dropping one observation is harmless.
                        Err(_) => {}
                    }
                }
            }
        }
    }

    /// Non-zero classes, static taxonomy order first, then locks by
    /// name.
    pub fn snapshot(&self) -> Vec<WaitSnapshot> {
        let mut out = Vec::new();
        for (i, (_, label)) in STATIC_CLASSES.iter().enumerate() {
            let (count, total_ns, max_ns) = self.cells[i].snapshot();
            if count > 0 {
                out.push(WaitSnapshot {
                    class: (*label).to_string(),
                    count,
                    total_ns,
                    max_ns,
                });
            }
        }
        if let Ok(map) = self.locks.lock() {
            for (name, cell) in map.iter() {
                let (count, total_ns, max_ns) = cell.snapshot();
                if count > 0 {
                    out.push(WaitSnapshot {
                        class: format!("LOCK_{name}"),
                        count,
                        total_ns,
                        max_ns,
                    });
                }
            }
        }
        out
    }

    /// Sum of `total_ns` across every class.
    pub fn total_ns(&self) -> u64 {
        self.snapshot().iter().map(|s| s.total_ns).sum()
    }
}

fn global() -> &'static WaitProfile {
    static GLOBAL: OnceLock<WaitProfile> = OnceLock::new();
    GLOBAL.get_or_init(WaitProfile::default)
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<WaitProfile>>> =
        const { std::cell::RefCell::new(None) };
    static THREAD_WAIT_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Record one wait observation: globally, into the current thread's
/// installed query frame (if any), and into the thread's cumulative
/// wait counter.
pub fn observe(class: WaitClass, waited: Duration) {
    let ns = waited.as_nanos().min(u64::MAX as u128) as u64;
    global().record(class, ns);
    CURRENT.with(|cur| {
        if let Some(profile) = cur.borrow().as_ref() {
            profile.record(class, ns);
        }
    });
    THREAD_WAIT_NS.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Monotone cumulative wait nanoseconds observed on this thread.
/// Trace spans diff this across their lifetime.
pub fn thread_wait_ns() -> u64 {
    THREAD_WAIT_NS.with(|c| c.get())
}

/// The wait profile installed on this thread, if a query is running.
pub fn current() -> Option<Arc<WaitProfile>> {
    CURRENT.with(|cur| cur.borrow().clone())
}

/// Install `profile` as this thread's current-query wait frame for the
/// guard's lifetime; restores the previous frame on drop (frames nest).
pub fn install(profile: Arc<WaitProfile>) -> WaitScope {
    let prev = CURRENT.with(|cur| cur.borrow_mut().replace(profile));
    WaitScope { prev }
}

/// RAII guard from [`install`].
pub struct WaitScope {
    prev: Option<Arc<WaitProfile>>,
}

impl Drop for WaitScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|cur| *cur.borrow_mut() = prev);
    }
}

/// Snapshot of the process-wide accumulator (non-zero classes only).
pub fn global_snapshot() -> Vec<WaitSnapshot> {
    global().snapshot()
}

/// `cstore_wait_*` Prometheus series for every non-zero class.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    let snap = global_snapshot();
    if snap.is_empty() {
        return out;
    }
    out.push_str("# TYPE cstore_wait_count counter\n");
    for s in &snap {
        out.push_str(&format!(
            "cstore_wait_count{{class=\"{}\"}} {}\n",
            s.class, s.count
        ));
    }
    out.push_str("# TYPE cstore_wait_total_ns counter\n");
    for s in &snap {
        out.push_str(&format!(
            "cstore_wait_total_ns{{class=\"{}\"}} {}\n",
            s.class, s.total_ns
        ));
    }
    out.push_str("# TYPE cstore_wait_max_ns gauge\n");
    for s in &snap {
        out.push_str(&format!(
            "cstore_wait_max_ns{{class=\"{}\"}} {}\n",
            s.class, s.max_ns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_canonical() {
        assert_eq!(WaitClass::WalCommit.label(), "WAL_COMMIT");
        assert_eq!(WaitClass::Lock("wal.state").label(), "LOCK_wal.state");
    }

    #[test]
    fn profile_records_and_snapshots() {
        let p = WaitProfile::new();
        p.record(WaitClass::WalCommit, 100);
        p.record(WaitClass::WalCommit, 300);
        p.record(WaitClass::Lock("t.inner"), 50);
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].class, "WAL_COMMIT");
        assert_eq!(snap[0].count, 2);
        assert_eq!(snap[0].total_ns, 400);
        assert_eq!(snap[0].max_ns, 300);
        assert_eq!(snap[1].class, "LOCK_t.inner");
        assert_eq!(p.total_ns(), 450);
    }

    #[test]
    fn observe_hits_installed_frame_and_thread_counter() {
        let frame = Arc::new(WaitProfile::new());
        let before = thread_wait_ns();
        {
            let _scope = install(frame.clone());
            observe(WaitClass::Admission, Duration::from_nanos(1234));
        }
        // Frame restored: further observes don't land on `frame`.
        observe(WaitClass::Admission, Duration::from_nanos(1));
        let snap = frame.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].class, "ADMISSION");
        assert_eq!(snap[0].count, 1);
        assert_eq!(snap[0].total_ns, 1234);
        assert!(thread_wait_ns() >= before + 1235);
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = Arc::new(WaitProfile::new());
        let inner = Arc::new(WaitProfile::new());
        let _a = install(outer.clone());
        {
            let _b = install(inner.clone());
            observe(WaitClass::SpillIo, Duration::from_nanos(7));
        }
        observe(WaitClass::Mover, Duration::from_nanos(9));
        assert_eq!(inner.snapshot()[0].class, "SPILL_IO");
        let outer_snap = outer.snapshot();
        assert_eq!(outer_snap.len(), 1, "outer saw only the MOVER wait");
        assert_eq!(outer_snap[0].class, "MOVER");
    }

    #[test]
    fn prometheus_renders_nonzero_classes() {
        observe(WaitClass::Backpressure, Duration::from_nanos(42));
        let text = render_prometheus();
        assert!(text.contains("cstore_wait_count{class=\"BACKPRESSURE\"}"));
        assert!(text.contains("# TYPE cstore_wait_total_ns counter"));
    }
}
