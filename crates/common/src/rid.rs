//! Row identifiers.
//!
//! SQL Server's clustered column store locates a row by (row group id,
//! tuple id); rows in delta stores live in row groups too — a delta store
//! *is* an (uncompressed) row group. We use the same scheme: every row
//! group, compressed or delta, gets an id from one sequence, and a row id
//! is the pair packed into a `u64`.

use std::fmt;

/// Identifier of a row group (compressed or delta).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowGroupId(pub u32);

impl fmt::Display for RowGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RG{}", self.0)
    }
}

/// Locates one row: the row group it lives in and its ordinal within that
/// group ("tuple id").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId {
    pub group: RowGroupId,
    pub tuple: u32,
}

impl RowId {
    pub fn new(group: RowGroupId, tuple: u32) -> Self {
        RowId { group, tuple }
    }

    /// Pack into a single `u64` (group in the high half). Packing preserves
    /// ordering: rows sort by (group, tuple).
    pub fn pack(self) -> u64 {
        ((self.group.0 as u64) << 32) | self.tuple as u64
    }

    pub fn unpack(packed: u64) -> Self {
        RowId {
            group: RowGroupId((packed >> 32) as u32),
            tuple: packed as u32,
        }
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.group, self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let r = RowId::new(RowGroupId(7), 123_456);
        assert_eq!(RowId::unpack(r.pack()), r);
    }

    #[test]
    fn pack_preserves_order() {
        let a = RowId::new(RowGroupId(1), u32::MAX);
        let b = RowId::new(RowGroupId(2), 0);
        assert!(a < b);
        assert!(a.pack() < b.pack());
    }
}
