//! Process-wide metrics registry: named atomic counters and fixed-bucket
//! histograms, dependency-free (the same offline constraint as the rest
//! of the workspace).
//!
//! The registry is the *durable* half of the observability layer: query
//! execution accumulates per-query [`ExecStats`](../../cstore_exec)
//! counters and folds them in here when the query finishes, the tuple
//! mover and recovery paths publish their own counters, and
//! `cstore metrics` / `Database::metrics()` render everything as a
//! Prometheus-style text dump. Handles ([`Counter`], [`Histogram`]) are
//! cheap `Arc`s around atomics — hot paths update them without touching
//! the registry lock; the lock is taken only to register a name or take
//! a snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::sync::Mutex;

/// A monotonic named counter. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive) for query-latency histograms, in microseconds.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
    60_000_000,
];

/// Upper bounds (inclusive) for byte-size histograms (1 KiB … 1 GiB).
pub const BYTES_BUCKETS: [u64; 11] = [
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
    64 << 20,
    256 << 20,
    1 << 30,
];

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram. Cloning shares the underlying atomics.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// `(upper_bound, cumulative_count)` per bucket; the final entry is
    /// the implicit `+Inf` bucket (bound = `u64::MAX`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let inner = &self.0;
        let mut acc = 0;
        let mut out = Vec::with_capacity(inner.buckets.len());
        for (i, b) in inner.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let bound = inner.bounds.get(i).copied().unwrap_or(u64::MAX);
            out.push((bound, acc));
        }
        out
    }

    /// Estimated `q`-quantile (0.0..=1.0), interpolated within buckets.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_cumulative(&self.cumulative_buckets(), q)
    }
}

/// Estimate a quantile from `(upper_bound, cumulative_count)` bucket
/// pairs (as produced by [`Histogram::cumulative_buckets`]), linearly
/// interpolating inside the bucket that contains the target rank. The
/// `+Inf` bucket reports the previous finite bound (the best available
/// upper estimate). Returns 0 when there are no observations.
pub fn quantile_from_cumulative(buckets: &[(u64, u64)], q: f64) -> u64 {
    let total = match buckets.last() {
        Some(&(_, count)) if count > 0 => count,
        _ => return 0,
    };
    let q = q.clamp(0.0, 1.0);
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut prev_bound = 0u64;
    let mut prev_cum = 0u64;
    for &(bound, cum) in buckets {
        if cum >= rank {
            if bound == u64::MAX {
                // Open-ended bucket: report the last finite bound.
                return prev_bound;
            }
            let in_bucket = cum - prev_cum;
            if in_bucket == 0 {
                return bound;
            }
            let frac = (rank - prev_cum) as f64 / in_bucket as f64;
            let width = (bound - prev_bound) as f64;
            return prev_bound + (width * frac).round() as u64;
        }
        prev_bound = bound;
        prev_cum = cum;
    }
    prev_bound
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Histogram(Histogram),
}

/// Snapshot of one registered metric.
#[derive(Clone, Debug)]
pub enum MetricSnapshot {
    Counter {
        name: String,
        value: u64,
    },
    Histogram {
        name: String,
        /// `(upper_bound, cumulative_count)` pairs; the last bound is
        /// `u64::MAX` (the `+Inf` bucket).
        buckets: Vec<(u64, u64)>,
        sum: u64,
        count: u64,
    },
}

impl MetricSnapshot {
    /// The metric's registered name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. } | MetricSnapshot::Histogram { name, .. } => name,
        }
    }
}

/// A registry of named metrics.
///
/// Names follow Prometheus conventions (`snake_case`, `_total` suffix for
/// counters); the registry itself only requires uniqueness. Looking up a
/// name that is already registered with the *other* metric kind returns a
/// fresh detached handle (updates are lost) rather than panicking — a
/// programming error surfaced by the absent series, not by tearing down
/// the process.
#[derive(Debug, Default)]
pub struct Registry {
    metrics_by_name: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics_by_name.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            Metric::Histogram(_) => Counter::default(), // kind mismatch: detached
        }
    }

    /// Add `n` to the counter `name` (get-or-create convenience).
    pub fn add(&self, name: &str, n: u64) {
        if n > 0 {
            self.counter(name).add(n);
        }
    }

    /// Get or create the histogram `name` with the given bucket bounds.
    /// Bounds are fixed at first registration; later callers share them.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.metrics_by_name.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            Metric::Counter(_) => Histogram::new(bounds), // kind mismatch: detached
        }
    }

    /// Record one observation into the histogram `name`.
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        self.histogram(name, bounds).observe(value);
    }

    /// Point-in-time snapshot of every registered metric, name-sorted.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.metrics_by_name.lock();
        map.iter()
            .map(|(name, m)| match m {
                Metric::Counter(c) => MetricSnapshot::Counter {
                    name: name.clone(),
                    value: c.get(),
                },
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    name: name.clone(),
                    buckets: h.cumulative_buckets(),
                    sum: h.sum(),
                    count: h.count(),
                },
            })
            .collect()
    }

    /// Render the registry as Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for m in self.snapshot() {
            match m {
                MetricSnapshot::Counter { name, value } => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
                }
                MetricSnapshot::Histogram {
                    name,
                    buckets,
                    sum,
                    count,
                } => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    for &(bound, cum) in &buckets {
                        if bound == u64::MAX {
                            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                        } else {
                            out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cum}\n"));
                        }
                    }
                    out.push_str(&format!("{name}_sum {sum}\n{name}_count {count}\n"));
                    if count > 0 {
                        for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                            let v = quantile_from_cumulative(&buckets, q);
                            out.push_str(&format!("{name}_{suffix} {v}\n"));
                        }
                    }
                }
            }
        }
        out
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = Registry::new();
        let a = r.counter("cstore_test_total");
        let b = r.counter("cstore_test_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        r.add("cstore_test_total", 6);
        assert_eq!(b.get(), 10);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat", &[10, 100, 1000]);
        for v in [5, 7, 50, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5 + 7 + 50 + 5000);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(10, 2), (100, 3), (1000, 3), (u64::MAX, 4)]
        );
    }

    #[test]
    fn kind_mismatch_is_detached_not_fatal() {
        let r = Registry::new();
        let c = r.counter("x");
        let h = r.histogram("x", &[1]);
        h.observe(1); // goes nowhere visible
        c.add(2);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        match &snap[0] {
            MetricSnapshot::Counter { value, .. } => assert_eq!(*value, 2),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn prometheus_render_shape() {
        let r = Registry::new();
        r.add("cstore_queries_total", 2);
        r.observe("cstore_query_duration_usec", &[100, 1000], 250);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE cstore_queries_total counter"));
        assert!(text.contains("cstore_queries_total 2"));
        assert!(text.contains("cstore_query_duration_usec_bucket{le=\"1000\"} 1"));
        assert!(text.contains("cstore_query_duration_usec_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("cstore_query_duration_usec_count 1"));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = Registry::new();
        let h = r.histogram("q", &[10, 100, 1000]);
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for _ in 0..90 {
            h.observe(5); // bucket le=10
        }
        for _ in 0..10 {
            h.observe(500); // bucket le=1000
        }
        // p50 rank 50 of 100 lands in the first bucket (0..=10].
        assert!(h.quantile(0.50) <= 10, "p50 = {}", h.quantile(0.50));
        // p95 rank 95 lands in (100..=1000].
        let p95 = h.quantile(0.95);
        assert!((100..=1000).contains(&p95), "p95 = {p95}");
        // p99 higher than p95, still within the last finite bucket.
        assert!(h.quantile(0.99) >= p95);
        // Overflow observations report the last finite bound.
        h.observe(u64::MAX / 2);
        for _ in 0..200 {
            h.observe(u64::MAX / 2);
        }
        assert_eq!(h.quantile(0.99), 1000);
    }

    #[test]
    fn prometheus_render_includes_quantiles() {
        let r = Registry::new();
        for v in [100u64, 200, 300, 400, 10_000] {
            r.observe("lat_us", &[1_000, 100_000], v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("lat_us_p50 "), "missing p50 in:\n{text}");
        assert!(text.contains("lat_us_p95 "));
        assert!(text.contains("lat_us_p99 "));
    }

    #[test]
    fn global_registry_is_shared() {
        global().add("cstore_global_smoke_total", 1);
        assert!(global()
            .snapshot()
            .iter()
            .any(|m| m.name() == "cstore_global_smoke_total"));
    }
}
