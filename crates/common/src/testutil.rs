//! Deterministic test utilities, chiefly a tiny seedable PRNG.
//!
//! The container builds offline, so the workspace cannot depend on the
//! `rand` crate outside the excluded `cstore-bench` crate. Workload
//! generators and randomized tests use this xorshift64* generator
//! instead: it is deterministic per seed, fast, and statistically more
//! than good enough for data generation and property-style testing.

/// A seedable xorshift64* pseudo-random generator.
///
/// Not cryptographically secure; intended for workload synthesis and
/// randomized tests only.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from `seed`. Any seed is accepted; zero is
    /// remapped so the xorshift state never sticks at the fixed point.
    pub fn new(seed: u64) -> Rng {
        // SplitMix64 scramble gives well-mixed state even for small seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "Rng::below(0)");
        // Multiply-shift bounding (Lemire); bias is < 2^-64 per draw,
        // immaterial for workloads and tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `i64` in `[lo, hi)` (half-open, like `rand`'s `gen_range`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of `items` (`None` when empty).
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range_usize(0, items.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// An ASCII alphanumeric string of length `len`.
    pub fn alnum_string(&mut self, len: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        (0..len)
            .map(|_| ALPHABET[self.range_usize(0, ALPHABET.len())] as char)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = rng.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn range_i64_handles_negative_bounds() {
        let mut rng = Rng::new(9);
        for _ in 0..10_000 {
            let x = rng.range_i64(-50, 50);
            assert!((-50..50).contains(&x));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Rng::new(11);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = Rng::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
