//! The resource governor: admission control, a process-wide memory
//! ledger, delta-store backpressure, and the health state machine that
//! degrades the engine to read-only under storage failure.
//!
//! A columnstore engine under "heavy traffic from millions of users"
//! fails in one of two ways: it grows without bound (every query assumes
//! the whole machine, a stalled tuple mover lets delta stores pile up),
//! or it falls over with raw I/O errors the moment storage misbehaves.
//! The governor makes both failure modes *governed*:
//!
//! * [`AdmissionGate`] — a configurable max-concurrent-queries gate with
//!   a bounded wait queue and a queue timeout. Unlimited by default, so
//!   an ungoverned embedded database behaves exactly as before.
//! * [`MemoryLedger`] — one process-wide byte ceiling that every query's
//!   blocking operators (hash-join builds, sorts) reserve from and
//!   release to, so N concurrent queries share one budget instead of
//!   each assuming it owns the machine. Over-reservation is a clean
//!   [`Error::ResourceExhausted`]; operators with a spill path spill
//!   first. Delta stores charge the same ledger (non-failing — ingest is
//!   governed by backpressure, not by memory errors).
//! * [`BackpressureGate`] — trickle inserts block (with a deadline) when
//!   the count of closed, un-moved delta stores crosses a high-water
//!   mark, and wake on tuple-mover progress, so a stalled mover can no
//!   longer cause unbounded delta growth. Disabled by default.
//! * [`Health`] — `Healthy → ReadOnly(cause) → Healthy`: a sticky WAL
//!   failure, ENOSPC from a blob/log store, or a parked tuple mover
//!   transitions the database to read-only. Writes are rejected with an
//!   [`Error::ReadOnly`] naming the cause; reads keep serving. Recovery
//!   is probe-based with exponential backoff ([`Health::probe_due`]).
//!
//! All four are observable through [`Governor::snapshot`] (the
//! `sys.resource_governor` view and the `cstore_governor_*` Prometheus
//! series render it) and fault-injectable at the `governor.admit` and
//! `alloc.reserve` points.
//!
//! # Locking
//!
//! The governor's three leveled locks (`governor.admission` at 12,
//! `governor.backpressure` at 13, `governor.health` at 14) sit *above*
//! every engine lock: admission is decided before a statement touches
//! any engine state, backpressure waits park with no table lock held,
//! and health transitions are leaf operations that never call back into
//! the engine. See LOCK_ORDER.md.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{Condvar, Mutex, RwLock};
use crate::waits::{self, WaitClass};
use crate::{Error, FaultInjector, Result};

/// Fault point consulted by [`Governor::admit_query`].
pub const FAULT_POINT_ADMIT: &str = "governor.admit";
/// Fault point consulted by [`MemoryLedger::reserve`].
pub const FAULT_POINT_RESERVE: &str = "alloc.reserve";

// ------------------------------------------------------------- admission

/// Mutable half of the admission gate, behind the `governor.admission`
/// lock (level 12).
#[derive(Debug)]
struct AdmissionState {
    /// Queries currently holding a permit.
    running: u64,
    /// Threads parked waiting for a slot.
    queued: u64,
    /// `SET max_concurrent_queries`; 0 = unlimited (the default).
    max_concurrent: u64,
    /// Waiters allowed in the queue before new arrivals are rejected
    /// outright instead of parked.
    max_queue: u64,
    /// `SET admission_timeout_ms`: how long an arrival may wait for a
    /// slot before failing with [`Error::ResourceExhausted`].
    timeout: Duration,
}

/// The max-concurrent-queries gate. Cheap when unlimited (one mutex
/// round-trip per query); a bounded wait queue plus timeout when not.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<AdmissionState>,
    slot_freed: Condvar,
    admitted_total: AtomicU64,
    rejected_total: AtomicU64,
    timeouts_total: AtomicU64,
}

impl Default for AdmissionGate {
    fn default() -> Self {
        AdmissionGate {
            state: Mutex::new_leveled(
                12,
                "governor.admission",
                AdmissionState {
                    running: 0,
                    queued: 0,
                    max_concurrent: 0,
                    max_queue: 64,
                    timeout: Duration::from_millis(5_000),
                },
            ),
            slot_freed: Condvar::new(),
            admitted_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            timeouts_total: AtomicU64::new(0),
        }
    }
}

impl AdmissionGate {
    /// Acquire a query slot, parking up to the admission timeout when
    /// the gate is saturated. The returned permit releases the slot on
    /// drop. Errors are clean [`Error::ResourceExhausted`]s: queue
    /// overflow rejects immediately, a timeout rejects after waiting.
    pub fn admit(self: &Arc<Self>) -> Result<AdmissionPermit> {
        let mut st = self.state.lock();
        if st.max_concurrent == 0 || st.running < st.max_concurrent {
            st.running += 1;
            drop(st);
            self.admitted_total.fetch_add(1, Ordering::Relaxed);
            return Ok(AdmissionPermit {
                gate: Arc::clone(self),
            });
        }
        if st.queued >= st.max_queue {
            let (queued, max_queue) = (st.queued, st.max_queue);
            drop(st);
            self.rejected_total.fetch_add(1, Ordering::Relaxed);
            return Err(Error::ResourceExhausted(format!(
                "admission queue full: {queued} queries already waiting (limit {max_queue}); \
                 raise SET max_concurrent_queries or retry later"
            )));
        }
        st.queued += 1;
        let queued_at = Instant::now();
        let deadline = queued_at + st.timeout;
        loop {
            if st.max_concurrent == 0 || st.running < st.max_concurrent {
                st.queued = st.queued.saturating_sub(1);
                st.running += 1;
                drop(st);
                self.admitted_total.fetch_add(1, Ordering::Relaxed);
                // Charged to the *queued* query: its wait frame is
                // installed on this thread before admit() is called.
                waits::observe(WaitClass::Admission, queued_at.elapsed());
                return Ok(AdmissionPermit {
                    gate: Arc::clone(self),
                });
            }
            let now = Instant::now();
            if now >= deadline {
                st.queued = st.queued.saturating_sub(1);
                let timeout = st.timeout;
                drop(st);
                self.timeouts_total.fetch_add(1, Ordering::Relaxed);
                self.rejected_total.fetch_add(1, Ordering::Relaxed);
                waits::observe(WaitClass::Admission, queued_at.elapsed());
                return Err(Error::ResourceExhausted(format!(
                    "admission timeout: no query slot freed within {}ms \
                     (SET max_concurrent_queries / SET admission_timeout_ms)",
                    timeout.as_millis()
                )));
            }
            st = self.slot_freed.wait_timeout(st, deadline - now);
        }
    }

    fn release(&self) {
        let mut st = self.state.lock();
        st.running = st.running.saturating_sub(1);
        drop(st);
        self.slot_freed.notify_all();
    }

    /// `SET max_concurrent_queries` (0 = unlimited). Raising the limit
    /// wakes parked waiters.
    pub fn set_max_concurrent(&self, n: u64) {
        self.state.lock().max_concurrent = n;
        self.slot_freed.notify_all();
    }

    /// `SET admission_timeout_ms` for future arrivals.
    pub fn set_timeout(&self, timeout: Duration) {
        self.state.lock().timeout = timeout;
    }

    /// Bound the wait queue (arrivals beyond it are rejected outright).
    pub fn set_max_queue(&self, n: u64) {
        self.state.lock().max_queue = n;
    }
}

/// RAII admission slot; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub struct AdmissionPermit {
    gate: Arc<AdmissionGate>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

// ----------------------------------------------------------- memory ledger

/// The process-wide byte ledger shared by every concurrent query's
/// blocking operators and by delta-store accounting. Lock-free on the
/// reserve/release path (one CAS per call).
#[derive(Debug)]
pub struct MemoryLedger {
    /// Byte ceiling; 0 = unlimited (the default).
    limit: AtomicU64,
    /// Bytes currently reserved or charged.
    reserved: AtomicU64,
    /// High-water mark of `reserved` over the ledger's lifetime.
    peak: AtomicU64,
    /// Reservations refused because they would cross the limit.
    exhausted_total: AtomicU64,
    /// Chaos hook consulted at `alloc.reserve` (see
    /// [`Governor::set_fault_injector`]).
    faults: RwLock<Option<FaultInjector>>,
}

impl Default for MemoryLedger {
    fn default() -> Self {
        MemoryLedger {
            limit: AtomicU64::new(0),
            reserved: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            exhausted_total: AtomicU64::new(0),
            faults: RwLock::new(None),
        }
    }
}

impl MemoryLedger {
    /// Reserve `bytes` against the shared ceiling. Fails with a clean
    /// [`Error::ResourceExhausted`] when the reservation would cross the
    /// limit — callers with a spill path treat that as "spill now".
    pub fn reserve(&self, bytes: u64) -> Result<()> {
        let injected = self.faults.read().as_ref().and_then(|f| {
            f.hit(FAULT_POINT_RESERVE)
                .map(|k| k.to_error(FAULT_POINT_RESERVE))
        });
        if let Some(e) = injected {
            self.exhausted_total.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let limit = self.limit.load(Ordering::Relaxed);
        let result = self
            .reserved
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                let next = cur.saturating_add(bytes);
                (limit == 0 || next <= limit).then_some(next)
            });
        match result {
            Ok(prev) => {
                self.peak
                    .fetch_max(prev.saturating_add(bytes), Ordering::Relaxed);
                Ok(())
            }
            Err(cur) => {
                self.exhausted_total.fetch_add(1, Ordering::Relaxed);
                // The ledger never blocks: a denial is a zero-duration
                // MEMORY_GRANT wait event (count of grants refused).
                waits::observe(WaitClass::MemoryGrant, Duration::ZERO);
                Err(Error::ResourceExhausted(format!(
                    "memory ledger exhausted: reserving {bytes} B on top of {cur} B \
                     would cross the {limit} B shared limit"
                )))
            }
        }
    }

    /// Return `bytes` to the ledger (saturating: never underflows).
    pub fn release(&self, bytes: u64) {
        // lint: allow(discard) — fetch_update with Some(..) cannot fail
        let _ = self
            .reserved
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes))
            });
    }

    /// Non-failing accounting charge (delta-store bytes): ingest is
    /// governed by backpressure, not memory errors, but its footprint
    /// still counts against what queries see as available.
    pub fn charge(&self, bytes: u64) {
        let prev = self.reserved.fetch_add(bytes, Ordering::Relaxed);
        self.peak
            .fetch_max(prev.saturating_add(bytes), Ordering::Relaxed);
    }

    /// Undo a [`MemoryLedger::charge`].
    pub fn uncharge(&self, bytes: u64) {
        self.release(bytes);
    }

    /// Bytes currently reserved or charged.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// The ceiling (0 = unlimited).
    pub fn limit(&self) -> u64 {
        self.limit.load(Ordering::Relaxed)
    }

    /// Set the ceiling (0 = unlimited). Takes effect for future
    /// reservations; existing ones are never clawed back.
    pub fn set_limit(&self, bytes: u64) {
        self.limit.store(bytes, Ordering::Relaxed);
    }

    fn set_fault_injector(&self, f: FaultInjector) {
        *self.faults.write() = Some(f);
    }
}

/// One query's running total against a shared [`MemoryLedger`]: the
/// query reserves and releases through this handle, and whatever is
/// still outstanding when the query ends (including on an error path)
/// is returned to the ledger by `Drop`.
#[derive(Debug)]
pub struct QueryReservation {
    ledger: Arc<MemoryLedger>,
    held: AtomicU64,
}

impl QueryReservation {
    pub fn new(ledger: Arc<MemoryLedger>) -> Self {
        QueryReservation {
            ledger,
            held: AtomicU64::new(0),
        }
    }

    /// Reserve `bytes` for this query (see [`MemoryLedger::reserve`]).
    pub fn reserve(&self, bytes: u64) -> Result<()> {
        self.ledger.reserve(bytes)?;
        self.held.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Release up to `bytes` of this query's outstanding reservation.
    pub fn release(&self, bytes: u64) {
        let mut freed = 0;
        // lint: allow(discard) — fetch_update with Some(..) cannot fail
        let _ = self
            .held
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                freed = cur.min(bytes);
                Some(cur - freed)
            });
        self.ledger.release(freed);
    }

    /// Bytes this query currently holds.
    pub fn held(&self) -> u64 {
        self.held.load(Ordering::Relaxed)
    }
}

impl Drop for QueryReservation {
    fn drop(&mut self) {
        let held = self.held.swap(0, Ordering::Relaxed);
        self.ledger.release(held);
    }
}

// ------------------------------------------------------------ backpressure

/// Wakes trickle inserters parked at the delta high-water mark when the
/// tuple mover makes progress. The gate itself holds no table state: the
/// insert path re-reads its closed-delta count between waits, so a
/// missed notification costs at most one wait slice, never a deadline.
#[derive(Debug)]
pub struct BackpressureGate {
    /// Closed (filled, un-moved) delta stores tolerated per table before
    /// trickle inserts block; 0 = disabled (the default).
    high_water: AtomicU64,
    /// How long a blocked insert waits for mover progress before failing
    /// with [`Error::ResourceExhausted`].
    timeout_ms: AtomicU64,
    /// Progress generation, bumped by [`BackpressureGate::notify_progress`].
    progress: Mutex<u64>,
    moved: Condvar,
    waits_total: AtomicU64,
    rejected_total: AtomicU64,
}

/// Upper bound of one wait slice: even with no notification at all, a
/// parked inserter re-checks its condition this often.
const BACKPRESSURE_WAIT_SLICE: Duration = Duration::from_millis(50);

impl Default for BackpressureGate {
    fn default() -> Self {
        BackpressureGate {
            high_water: AtomicU64::new(0),
            timeout_ms: AtomicU64::new(10_000),
            progress: Mutex::new_leveled(13, "governor.backpressure", 0),
            moved: Condvar::new(),
            waits_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
        }
    }
}

impl BackpressureGate {
    /// The high-water mark (0 = backpressure disabled).
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Enable backpressure at `n` closed delta stores (0 disables).
    pub fn set_high_water(&self, n: u64) {
        self.high_water.store(n, Ordering::Relaxed);
        self.notify_progress();
    }

    /// The per-insert blocking deadline.
    pub fn timeout(&self) -> Duration {
        Duration::from_millis(self.timeout_ms.load(Ordering::Relaxed))
    }

    pub fn set_timeout_ms(&self, ms: u64) {
        self.timeout_ms.store(ms, Ordering::Relaxed);
    }

    /// Signal mover progress (closed delta stores were compressed) and
    /// wake every parked inserter.
    pub fn notify_progress(&self) {
        *self.progress.lock() += 1;
        self.moved.notify_all();
    }

    /// Park for one wait slice (or until progress is signalled, or until
    /// `deadline`, whichever is earliest). The caller re-checks its own
    /// condition after every slice.
    pub fn wait_slice(&self, deadline: Instant) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let slice = BACKPRESSURE_WAIT_SLICE.min(deadline - now);
        let guard = self.progress.lock();
        let parked_at = Instant::now();
        // lint: allow(discard) — wake reason is irrelevant: the caller
        // re-reads its closed-delta count either way
        let _ = self.moved.wait_timeout(guard, slice);
        waits::observe(WaitClass::Backpressure, parked_at.elapsed());
    }

    /// Count one insert that had to block.
    pub fn note_wait(&self) {
        self.waits_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one insert that gave up at the deadline.
    pub fn note_rejected(&self) {
        self.rejected_total.fetch_add(1, Ordering::Relaxed);
    }
}

// ------------------------------------------------------------------ health

/// Mutable half of the health machine, behind the `governor.health` lock
/// (level 14).
#[derive(Debug)]
struct HealthInner {
    /// `Some(cause)` = read-only.
    cause: Option<String>,
    /// Current probe backoff (doubles per failed probe window).
    backoff: Duration,
    /// No probe before this instant.
    next_probe: Option<Instant>,
}

/// `Healthy → ReadOnly(cause) → Healthy`. Degradation is sticky until a
/// recovery probe (rate-limited with exponential backoff) verifies that
/// storage accepts writes again.
#[derive(Debug)]
pub struct Health {
    inner: Mutex<HealthInner>,
    degraded_total: AtomicU64,
    write_rejects_total: AtomicU64,
    probes_total: AtomicU64,
}

const PROBE_BACKOFF_BASE: Duration = Duration::from_millis(100);
const PROBE_BACKOFF_MAX: Duration = Duration::from_secs(5);

impl Default for Health {
    fn default() -> Self {
        Health {
            inner: Mutex::new_leveled(
                14,
                "governor.health",
                HealthInner {
                    cause: None,
                    backoff: PROBE_BACKOFF_BASE,
                    next_probe: None,
                },
            ),
            degraded_total: AtomicU64::new(0),
            write_rejects_total: AtomicU64::new(0),
            probes_total: AtomicU64::new(0),
        }
    }
}

impl Health {
    /// Transition to read-only, naming the cause. Idempotent: an already
    /// degraded database keeps its first cause.
    pub fn degrade(&self, cause: impl Into<String>) {
        let mut inner = self.inner.lock();
        if inner.cause.is_none() {
            inner.cause = Some(cause.into());
            inner.backoff = PROBE_BACKOFF_BASE;
            inner.next_probe = Some(Instant::now() + PROBE_BACKOFF_BASE);
            self.degraded_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Transition back to healthy (a recovery probe succeeded).
    pub fn recover(&self) {
        let mut inner = self.inner.lock();
        inner.cause = None;
        inner.backoff = PROBE_BACKOFF_BASE;
        inner.next_probe = None;
    }

    /// The degradation cause, if read-only.
    pub fn cause(&self) -> Option<String> {
        self.inner.lock().cause.clone()
    }

    pub fn is_read_only(&self) -> bool {
        self.inner.lock().cause.is_some()
    }

    /// Gate a write: `Err(Error::ReadOnly(cause))` while degraded.
    pub fn check_writable(&self) -> Result<()> {
        match self.inner.lock().cause.clone() {
            None => Ok(()),
            Some(cause) => {
                self.write_rejects_total.fetch_add(1, Ordering::Relaxed);
                Err(Error::ReadOnly(cause))
            }
        }
    }

    /// Whether a recovery probe is due. A `true` answer *claims* the
    /// probe window: the backoff doubles and the next window is pushed
    /// out, so concurrent writers do not stampede storage with probes.
    pub fn probe_due(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.cause.is_none() {
            return false;
        }
        let now = Instant::now();
        match inner.next_probe {
            Some(t) if now < t => false,
            _ => {
                inner.backoff = (inner.backoff * 2).min(PROBE_BACKOFF_MAX);
                inner.next_probe = Some(now + inner.backoff);
                true
            }
        }
    }

    /// Count one recovery probe attempt.
    pub fn note_probe(&self) {
        self.probes_total.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------- governor

/// Callback a recovery probe runs to verify the primary blob store
/// accepts writes again (e.g. put-then-delete of a probe key).
pub type StorageProbe = Box<dyn Fn() -> Result<()> + Send + Sync>;

/// The four governance mechanisms plus their chaos and observability
/// wiring, shared engine-wide behind one `Arc`.
pub struct Governor {
    admission: Arc<AdmissionGate>,
    ledger: Arc<MemoryLedger>,
    backpressure: Arc<BackpressureGate>,
    health: Arc<Health>,
    faults: RwLock<Option<FaultInjector>>,
    storage_probe: RwLock<Option<StorageProbe>>,
}

impl std::fmt::Debug for Governor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Governor")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl Default for Governor {
    fn default() -> Self {
        Governor {
            admission: Arc::new(AdmissionGate::default()),
            ledger: Arc::new(MemoryLedger::default()),
            backpressure: Arc::new(BackpressureGate::default()),
            health: Arc::new(Health::default()),
            faults: RwLock::new(None),
            storage_probe: RwLock::new(None),
        }
    }
}

impl Governor {
    pub fn new() -> Governor {
        Governor::default()
    }

    pub fn admission(&self) -> &Arc<AdmissionGate> {
        &self.admission
    }

    pub fn ledger(&self) -> &Arc<MemoryLedger> {
        &self.ledger
    }

    pub fn backpressure(&self) -> &Arc<BackpressureGate> {
        &self.backpressure
    }

    pub fn health(&self) -> &Arc<Health> {
        &self.health
    }

    /// Admit one query, consulting the `governor.admit` fault point
    /// first (chaos tests fail admission deterministically through it).
    pub fn admit_query(&self) -> Result<AdmissionPermit> {
        let injected = self.faults.read().as_ref().and_then(|f| {
            f.hit(FAULT_POINT_ADMIT)
                .map(|k| k.to_error(FAULT_POINT_ADMIT))
        });
        if let Some(e) = injected {
            return Err(e);
        }
        self.admission.admit()
    }

    /// Install a fault injector consulted at `governor.admit` and
    /// `alloc.reserve`.
    pub fn set_fault_injector(&self, f: FaultInjector) {
        self.ledger.set_fault_injector(f.clone());
        *self.faults.write() = Some(f);
    }

    /// Register the storage-side recovery probe (see [`StorageProbe`]).
    pub fn set_storage_probe(&self, probe: impl Fn() -> Result<()> + Send + Sync + 'static) {
        *self.storage_probe.write() = Some(Box::new(probe));
    }

    /// Run the registered storage probe (`Ok` when none is registered —
    /// an in-memory database has no blob store to verify).
    pub fn run_storage_probe(&self) -> Result<()> {
        match self.storage_probe.read().as_ref() {
            Some(p) => p(),
            None => Ok(()),
        }
    }

    /// Point-in-time counters for `sys.resource_governor` and the
    /// `cstore_governor_*` metric series.
    pub fn snapshot(&self) -> GovernorSnapshot {
        let (running, queued, max_concurrent) = {
            let st = self.admission.state.lock();
            (st.running, st.queued, st.max_concurrent)
        };
        GovernorSnapshot {
            admission_running: running,
            admission_queued: queued,
            admission_max_concurrent: max_concurrent,
            admission_admitted_total: self.admission.admitted_total.load(Ordering::Relaxed),
            admission_rejected_total: self.admission.rejected_total.load(Ordering::Relaxed),
            admission_timeouts_total: self.admission.timeouts_total.load(Ordering::Relaxed),
            mem_reserved_bytes: self.ledger.reserved(),
            mem_peak_bytes: self.ledger.peak.load(Ordering::Relaxed),
            mem_limit_bytes: self.ledger.limit(),
            mem_exhausted_total: self.ledger.exhausted_total.load(Ordering::Relaxed),
            backpressure_high_water: self.backpressure.high_water(),
            backpressure_waits_total: self.backpressure.waits_total.load(Ordering::Relaxed),
            backpressure_rejected_total: self.backpressure.rejected_total.load(Ordering::Relaxed),
            health_cause: self.health.cause(),
            degraded_total: self.health.degraded_total.load(Ordering::Relaxed),
            write_rejects_total: self.health.write_rejects_total.load(Ordering::Relaxed),
            recovery_probes_total: self.health.probes_total.load(Ordering::Relaxed),
        }
    }
}

/// Counters exposed by [`Governor::snapshot`].
#[derive(Clone, Debug)]
pub struct GovernorSnapshot {
    pub admission_running: u64,
    pub admission_queued: u64,
    /// 0 = unlimited.
    pub admission_max_concurrent: u64,
    pub admission_admitted_total: u64,
    pub admission_rejected_total: u64,
    pub admission_timeouts_total: u64,
    pub mem_reserved_bytes: u64,
    pub mem_peak_bytes: u64,
    /// 0 = unlimited.
    pub mem_limit_bytes: u64,
    pub mem_exhausted_total: u64,
    /// 0 = disabled.
    pub backpressure_high_water: u64,
    pub backpressure_waits_total: u64,
    pub backpressure_rejected_total: u64,
    /// `Some(cause)` = read-only.
    pub health_cause: Option<String>,
    pub degraded_total: u64,
    pub write_rejects_total: u64,
    pub recovery_probes_total: u64,
}

impl GovernorSnapshot {
    /// `"HEALTHY"` or `"READ_ONLY"`, as rendered by the sys view.
    pub fn health_state(&self) -> &'static str {
        if self.health_cause.is_some() {
            "READ_ONLY"
        } else {
            "HEALTHY"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultSpec};

    #[test]
    fn unlimited_gate_admits_everything() {
        let gate = Arc::new(AdmissionGate::default());
        let permits: Vec<_> = (0..32).map(|_| gate.admit().unwrap()).collect();
        assert_eq!(gate.state.lock().running, 32);
        drop(permits);
        assert_eq!(gate.state.lock().running, 0);
        assert_eq!(gate.admitted_total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn saturated_gate_times_out_cleanly() {
        let gate = Arc::new(AdmissionGate::default());
        gate.set_max_concurrent(1);
        gate.set_timeout(Duration::from_millis(30));
        let held = gate.admit().unwrap();
        let err = gate.admit().unwrap_err();
        assert_eq!(err.code(), "RESOURCE_EXHAUSTED");
        assert!(err.to_string().contains("admission timeout"), "{err}");
        assert_eq!(gate.timeouts_total.load(Ordering::Relaxed), 1);
        drop(held);
        // Slot freed: the next arrival is admitted immediately.
        drop(gate.admit().unwrap());
    }

    #[test]
    fn queued_arrival_wakes_on_release() {
        let gate = Arc::new(AdmissionGate::default());
        gate.set_max_concurrent(1);
        gate.set_timeout(Duration::from_secs(5));
        let held = gate.admit().unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.admit().map(drop));
        // Let the waiter park, then free the slot.
        while gate.state.lock().queued == 0 {
            std::thread::yield_now();
        }
        drop(held);
        waiter.join().unwrap().unwrap();
        assert_eq!(gate.state.lock().running, 0);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let gate = Arc::new(AdmissionGate::default());
        gate.set_max_concurrent(1);
        gate.set_max_queue(0);
        let _held = gate.admit().unwrap();
        let err = gate.admit().unwrap_err();
        assert!(err.to_string().contains("admission queue full"), "{err}");
        assert_eq!(gate.rejected_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ledger_reserves_releases_and_exhausts() {
        let l = MemoryLedger::default();
        l.set_limit(1000);
        l.reserve(600).unwrap();
        l.reserve(400).unwrap();
        let err = l.reserve(1).unwrap_err();
        assert_eq!(err.code(), "RESOURCE_EXHAUSTED");
        assert!(err.to_string().contains("memory ledger exhausted"), "{err}");
        l.release(500);
        l.reserve(400).unwrap();
        assert_eq!(l.reserved(), 900);
        assert_eq!(l.exhausted_total.load(Ordering::Relaxed), 1);
        assert_eq!(l.peak.load(Ordering::Relaxed), 1000);
        // Release never underflows.
        l.release(u64::MAX);
        assert_eq!(l.reserved(), 0);
    }

    #[test]
    fn unlimited_ledger_never_fails() {
        let l = MemoryLedger::default();
        l.reserve(u64::MAX / 2).unwrap();
        l.reserve(u64::MAX / 2).unwrap();
        l.release(u64::MAX);
    }

    #[test]
    fn query_reservation_drop_returns_outstanding_bytes() {
        let ledger = Arc::new(MemoryLedger::default());
        ledger.set_limit(1 << 20);
        {
            let q = QueryReservation::new(Arc::clone(&ledger));
            q.reserve(4096).unwrap();
            q.reserve(4096).unwrap();
            q.release(1000);
            assert_eq!(q.held(), 7192);
            assert_eq!(ledger.reserved(), 7192);
            // Over-release of the query's own holding is clamped.
            q.release(u64::MAX);
            assert_eq!(q.held(), 0);
            q.reserve(123).unwrap();
        } // drop returns the outstanding 123
        assert_eq!(ledger.reserved(), 0);
    }

    #[test]
    fn charge_is_non_failing_past_limit() {
        let l = MemoryLedger::default();
        l.set_limit(10);
        l.charge(100);
        assert_eq!(l.reserved(), 100);
        // But a reservation now fails: delta growth ate the budget.
        assert!(l.reserve(1).is_err());
        l.uncharge(100);
        l.reserve(1).unwrap();
    }

    #[test]
    fn backpressure_wait_wakes_on_progress() {
        let gate = Arc::new(BackpressureGate::default());
        let g2 = Arc::clone(&gate);
        let deadline = Instant::now() + Duration::from_secs(5);
        let start = Instant::now();
        let waiter = std::thread::spawn(move || g2.wait_slice(deadline));
        std::thread::sleep(Duration::from_millis(5));
        gate.notify_progress();
        waiter.join().unwrap();
        // Woke well before the 50ms slice elapsed on its own.
        assert!(start.elapsed() < Duration::from_millis(45));
    }

    #[test]
    fn backpressure_wait_slice_is_bounded() {
        let gate = BackpressureGate::default();
        let start = Instant::now();
        gate.wait_slice(Instant::now() + Duration::from_millis(10));
        assert!(start.elapsed() < Duration::from_secs(1));
        // A deadline in the past returns immediately.
        gate.wait_slice(Instant::now() - Duration::from_millis(1));
    }

    #[test]
    fn health_degrades_sticky_and_recovers() {
        let h = Health::default();
        h.check_writable().unwrap();
        h.degrade("WAL is failed: disk full");
        h.degrade("second cause is ignored");
        let err = h.check_writable().unwrap_err();
        assert_eq!(err.code(), "READ_ONLY");
        assert!(err.to_string().contains("disk full"), "{err}");
        assert!(h.is_read_only());
        assert_eq!(h.degraded_total.load(Ordering::Relaxed), 1);
        assert_eq!(h.write_rejects_total.load(Ordering::Relaxed), 1);
        h.recover();
        h.check_writable().unwrap();
        assert_eq!(h.cause(), None);
    }

    #[test]
    fn probe_windows_back_off() {
        let h = Health::default();
        assert!(!h.probe_due(), "healthy: no probes");
        h.degrade("x");
        // First window opens PROBE_BACKOFF_BASE after degradation.
        assert!(!h.probe_due());
        std::thread::sleep(PROBE_BACKOFF_BASE + Duration::from_millis(20));
        assert!(h.probe_due());
        // The claim pushed the next window out: immediately re-asking is denied.
        assert!(!h.probe_due());
        h.recover();
        assert!(!h.probe_due());
    }

    #[test]
    fn governor_fault_points_fire() {
        let gov = Governor::new();
        let f = FaultInjector::new(11);
        gov.set_fault_injector(f.clone());
        f.arm(FAULT_POINT_ADMIT, FaultSpec::new(FaultKind::IoError));
        let err = gov.admit_query().unwrap_err();
        assert!(err.to_string().contains("governor.admit"), "{err}");
        drop(gov.admit_query().unwrap());
        f.arm(FAULT_POINT_RESERVE, FaultSpec::new(FaultKind::IoError));
        let err = gov.ledger().reserve(1).unwrap_err();
        assert!(err.to_string().contains("alloc.reserve"), "{err}");
        gov.ledger().reserve(1).unwrap();
    }

    #[test]
    fn snapshot_reflects_state() {
        let gov = Governor::new();
        gov.admission().set_max_concurrent(8);
        gov.ledger().set_limit(1 << 20);
        gov.ledger().reserve(4096).unwrap();
        gov.backpressure().set_high_water(4);
        let s = gov.snapshot();
        assert_eq!(s.admission_max_concurrent, 8);
        assert_eq!(s.mem_limit_bytes, 1 << 20);
        assert_eq!(s.mem_reserved_bytes, 4096);
        assert_eq!(s.backpressure_high_water, 4);
        assert_eq!(s.health_state(), "HEALTHY");
        gov.health().degrade("probe");
        assert_eq!(gov.snapshot().health_state(), "READ_ONLY");
        assert_eq!(gov.snapshot().health_cause.as_deref(), Some("probe"));
    }
}
