//! Row representation for slow (non-vectorized) paths.

use crate::value::Value;

/// A single row: an ordered list of values matching some schema.
/// Ordering is lexicographic over [`Value::cmp_sql`] (NULLs first).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// A new row containing only the columns at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Approximate in-memory size in bytes (used for delta-store accounting).
    pub fn approx_bytes(&self) -> usize {
        let mut n = std::mem::size_of::<Value>() * self.values.len();
        for v in &self.values {
            if let Value::Str(s) = v {
                n += s.len();
            }
        }
        n
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_reorders() {
        let r = Row::new(vec![Value::Int64(1), Value::str("x"), Value::Bool(true)]);
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Bool(true), Value::Int64(1)]);
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let short = Row::new(vec![Value::Int64(1)]);
        let long = Row::new(vec![Value::str("a".repeat(100))]);
        assert!(long.approx_bytes() > short.approx_bytes() + 90);
    }
}
