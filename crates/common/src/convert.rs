//! Checked numeric conversions for the storage format.
//!
//! The binary format stores lengths and counts as fixed-width integers;
//! converting between them and `usize` is where silent truncation bugs
//! live. These helpers centralize every such conversion: the lossless
//! ones are plain functions (the `as` is provably value-preserving here,
//! and lives outside the files `cstore-lint` rule L3 patrols precisely so
//! that lossy casts can't hide among them), and the potentially lossy
//! ones return `Result` so corrupt or oversized inputs surface as
//! `Error::Storage` instead of wrapping around.

use crate::{Error, Result};

/// Lossless: every `u32` fits in `usize` on the 32/64-bit targets this
/// engine supports.
#[inline]
pub fn usize_from_u32(v: u32) -> usize {
    const _: () = assert!(usize::BITS >= u32::BITS);
    v as usize
}

/// Checked `u64` → `usize` (would truncate on 32-bit targets).
#[inline]
pub fn usize_from_u64(v: u64) -> Result<usize> {
    usize::try_from(v).map_err(|_| Error::Storage(format!("count {v} exceeds usize::MAX")))
}

/// Checked `usize` → `u32` for serialized length prefixes and counts.
#[inline]
pub fn u32_from_usize(v: usize) -> Result<u32> {
    u32::try_from(v).map_err(|_| Error::Storage(format!("length {v} exceeds u32::MAX")))
}

/// Checked `usize` → `u16` for small serialized counts (e.g. schema arity).
#[inline]
pub fn u16_from_usize(v: usize) -> Result<u16> {
    u16::try_from(v).map_err(|_| Error::Storage(format!("count {v} exceeds u16::MAX")))
}

/// Checked `i64` → `i32` for values deserialized into narrow columns.
#[inline]
pub fn i32_from_i64(v: i64) -> Result<i32> {
    i32::try_from(v).map_err(|_| Error::Storage(format!("value {v} out of i32 range")))
}

/// Checked `u32` → `u8` for serialized bit widths and small tags.
#[inline]
pub fn u8_from_u32(v: u32) -> Result<u8> {
    u8::try_from(v).map_err(|_| Error::Storage(format!("value {v} out of u8 range")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_paths() {
        assert_eq!(usize_from_u32(u32::MAX), u32::MAX as usize);
        assert_eq!(usize_from_u64(7).unwrap(), 7);
        assert_eq!(u32_from_usize(42).unwrap(), 42);
        assert_eq!(u16_from_usize(65_535).unwrap(), u16::MAX);
        assert_eq!(i32_from_i64(-1).unwrap(), -1);
        assert_eq!(u8_from_u32(64).unwrap(), 64);
    }

    #[test]
    fn lossy_inputs_are_rejected_as_storage_errors() {
        assert_eq!(
            u32_from_usize(u32::MAX as usize + 1).unwrap_err().code(),
            "STORAGE"
        );
        assert_eq!(u16_from_usize(70_000).unwrap_err().code(), "STORAGE");
        assert_eq!(i32_from_i64(i64::MAX).unwrap_err().code(), "STORAGE");
        assert_eq!(u8_from_u32(256).unwrap_err().code(), "STORAGE");
    }
}
