//! Dependency-free span tracer: nested, thread-aware spans in a bounded
//! ring, exported as Chrome trace-event JSON (`chrome://tracing`,
//! Perfetto).
//!
//! The tracer is the *ephemeral* half of the observability layer (the
//! [`metrics`](crate::metrics) registry is the durable half): spans are
//! scoped guards created with [`span!`] that record wall-clock intervals
//! into a fixed-capacity ring when tracing is enabled. Disabled tracing
//! costs one relaxed atomic load per span site, so instrumentation stays
//! on permanently in parse/bind/plan/execute, the tuple mover,
//! persistence and segment encode/decode paths.
//!
//! The ring is a `Mutex<Vec<_>>` (documented in `LOCK_ORDER.md` as
//! `trace.ring`, the innermost level): it is only ever locked for a
//! push or a dump, never while calling back into the engine, so it
//! cannot participate in a lock-order inversion.

use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::sync::Mutex;

/// Default ring capacity: enough for a mover-under-load run (a few
/// thousand row-group compressions plus per-query pipeline spans)
/// without unbounded growth. Oldest spans are overwritten first.
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name (static for the common macro path, owned for dynamic
    /// names like `format!("save.g{n}")`).
    pub name: Cow<'static, str>,
    /// Process-unique thread number (assigned on first span per thread).
    pub tid: u64,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: u32,
    /// Start offset from the tracer's epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds (zero-length spans are kept).
    pub dur_us: u64,
    /// Wait time observed on this thread while the span was open
    /// (diffed from [`crate::waits::thread_wait_ns`]), in nanoseconds.
    pub wait_ns: u64,
}

struct Ring {
    events: Vec<SpanEvent>,
    /// Next write position once the ring has wrapped.
    next: usize,
    /// Number of spans overwritten after the ring filled.
    overwritten: u64,
}

/// A bounded span recorder. Most callers use the process-wide instance
/// via [`global()`] and the [`span!`] macro; tests construct their own.
pub struct Tracer {
    enabled: AtomicBool,
    capacity: usize,
    ring: Mutex<Ring>,
    epoch: Instant,
}

impl Tracer {
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                events: Vec::new(),
                next: 0,
                overwritten: 0,
            }),
            epoch: Instant::now(),
        }
    }

    /// Start recording spans.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording spans (already-recorded spans are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Discard all recorded spans.
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.events.clear();
        ring.next = 0;
        ring.overwritten = 0;
    }

    /// Open a span; the returned guard records the interval when dropped.
    /// When tracing is disabled this is a no-op guard (one atomic load,
    /// the name is never materialized into the ring).
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { active: None };
        }
        let depth = THREAD_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth.saturating_add(1));
            depth
        });
        SpanGuard {
            active: Some(ActiveSpan {
                tracer: self,
                name: name.into(),
                depth,
                start: Instant::now(),
                wait_ns_at_open: crate::waits::thread_wait_ns(),
            }),
        }
    }

    fn record(&self, name: Cow<'static, str>, depth: u32, start: Instant, wait_ns: u64) {
        let start_us =
            u64::try_from(start.duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX);
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let event = SpanEvent {
            name,
            tid: thread_number(),
            depth,
            start_us,
            dur_us,
            wait_ns,
        };
        let mut ring = self.ring.lock();
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let at = ring.next;
            ring.events[at] = event;
            ring.next = (at + 1) % self.capacity;
            ring.overwritten += 1;
        }
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans overwritten since the last [`clear`](Tracer::clear).
    pub fn overwritten(&self) -> u64 {
        self.ring.lock().overwritten
    }

    /// Copy out the recorded spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let ring = self.ring.lock();
        let mut out = Vec::with_capacity(ring.events.len());
        out.extend_from_slice(&ring.events[ring.next..]);
        out.extend_from_slice(&ring.events[..ring.next]);
        out
    }

    /// Render the ring as Chrome trace-event JSON (the `traceEvents`
    /// object form): one complete (`"ph":"X"`) event per span, with
    /// microsecond timestamps relative to the tracer's epoch. Nesting is
    /// reconstructed by the viewer from interval containment per thread;
    /// the recorded depth is kept in `args` for tooling.
    pub fn dump_chrome_json(&self) -> String {
        let events = self.snapshot();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"cstore\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"depth\":{},\"wait_ns\":{}}}}}",
                escape_json(&e.name),
                e.tid,
                e.start_us,
                e.dur_us,
                e.depth,
                e.wait_ns,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escape a span name for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct ActiveSpan<'a> {
    tracer: &'a Tracer,
    name: Cow<'static, str>,
    depth: u32,
    start: Instant,
    wait_ns_at_open: u64,
}

/// Scope guard returned by [`Tracer::span`]; records on drop.
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            THREAD_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let wait_ns = crate::waits::thread_wait_ns().saturating_sub(span.wait_ns_at_open);
            span.tracer
                .record(span.name.clone(), span.depth, span.start, wait_ns);
        }
    }
}

thread_local! {
    /// Current span nesting depth on this thread.
    static THREAD_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// This thread's process-unique number (Chrome `tid`).
    static THREAD_NUMBER: Cell<u64> = const { Cell::new(0) };
}

/// Sequential thread numbering: `ThreadId::as_u64` is unstable, so the
/// first span on each thread claims the next number from a process-wide
/// counter (1-based; 0 means "not yet assigned").
fn thread_number() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    THREAD_NUMBER.with(|n| {
        if n.get() == 0 {
            n.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        n.get()
    })
}

/// The process-wide tracer used by [`span!`].
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(DEFAULT_RING_CAPACITY))
}

/// Open a named span on the global tracer for the rest of the enclosing
/// scope: `span!("compress_rowgroup");`. Accepts anything convertible
/// into `Cow<'static, str>`, so dynamic names (`span!(format!(...))`)
/// work too; prefer static names on hot paths.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _cstore_trace_span = $crate::trace::global().span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        {
            let _g = t.span("idle");
        }
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn spans_record_with_nesting_depth() {
        let t = Tracer::new(8);
        t.enable();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        // Guards drop innermost-first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].depth, 0);
        assert_eq!(events[0].tid, events[1].tid);
        // The inner interval is contained in the outer one.
        assert!(events[1].start_us <= events[0].start_us);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new(2);
        t.enable();
        for name in ["a", "b", "c"] {
            let _g = t.span(name);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.overwritten(), 1);
        let names: Vec<_> = t.snapshot().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn clear_resets_the_ring() {
        let t = Tracer::new(2);
        t.enable();
        {
            let _g = t.span("x");
        }
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.overwritten(), 0);
    }

    #[test]
    fn chrome_json_shape() {
        let t = Tracer::new(8);
        t.enable();
        {
            let _g = t.span("parse \"q\"");
        }
        let json = t.dump_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"parse \\\"q\\\"\""));
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"dur\":"));
        // Balanced braces/brackets — parseable by a strict JSON reader.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn spans_annotate_wait_time() {
        let t = Tracer::new(8);
        t.enable();
        {
            let _g = t.span("waits_inside");
            crate::waits::observe(
                crate::waits::WaitClass::WalCommit,
                std::time::Duration::from_nanos(5_000),
            );
        }
        {
            let _g = t.span("no_waits");
        }
        let events = t.snapshot();
        assert!(events[0].wait_ns >= 5_000, "span saw its wait: {events:?}");
        assert_eq!(events[1].wait_ns, 0, "later span starts from zero");
        let json = t.dump_chrome_json();
        assert!(json.contains("\"wait_ns\":"), "{json}");
    }

    #[test]
    fn overflowed_ring_drops_oldest_and_keeps_json_valid() {
        let t = Tracer::new(4);
        t.enable();
        // 3x capacity: spans "s0".."s11"; only the newest 4 survive.
        for i in 0..12 {
            let _g = t.span(format!("s{i}"));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.overwritten(), 8);
        let names: Vec<_> = t.snapshot().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["s8", "s9", "s10", "s11"], "oldest-first drop");
        let json = t.dump_chrome_json();
        // Exactly the surviving spans appear, in order, and the JSON
        // stays structurally sound for a strict reader.
        for survivor in &names {
            assert!(json.contains(&format!("\"name\":\"{survivor}\"")));
        }
        assert!(!json.contains("\"name\":\"s7\""));
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        // No dangling commas around the array.
        assert!(!json.contains(",]") && !json.contains("[,"));
    }

    #[test]
    fn macro_records_on_global() {
        global().enable();
        global().clear();
        {
            span!("macro_span");
        }
        global().disable();
        assert!(global().snapshot().iter().any(|e| e.name == "macro_span"));
    }

    #[test]
    fn dynamic_names_and_threads() {
        let t = std::sync::Arc::new(Tracer::new(64));
        t.enable();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            let _g = t2.span(format!("worker.{}", 1));
        });
        {
            let _g = t.span("main");
        }
        h.join().ok();
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "two threads, two tids: {events:?}");
    }
}
