//! Scalar data types supported by the engine.

use std::fmt;

/// The scalar types a column may have.
///
/// These mirror the types SQL Server's column store indexes supported in the
/// release the paper describes, collapsed to the representations the engine
/// actually needs:
///
/// * fixed-size numerics (`Bool`, `Int32`, `Int64`, `Float64`),
/// * `Date` (days since the Unix epoch, like SQL Server's `date`),
/// * `Decimal` with a fixed per-column scale, stored as a scaled `i64`
///   mantissa (SQL Server stores decimals in column segments the same way:
///   value-based encoding turns them into small integers),
/// * variable-length `Utf8` strings (always dictionary-encoded in segments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int32,
    Int64,
    Float64,
    /// Days since 1970-01-01, stored as `i32`.
    Date,
    /// Fixed-point decimal: `mantissa * 10^-scale`, mantissa stored as `i64`.
    Decimal {
        /// Number of digits to the right of the decimal point (0..=18).
        scale: u8,
    },
    Utf8,
}

impl DataType {
    /// Whether values of this type are stored as integers inside column
    /// segments (and therefore eligible for value-based encoding, RLE and
    /// bit packing directly on the raw value).
    pub fn is_integer_backed(self) -> bool {
        matches!(
            self,
            DataType::Bool
                | DataType::Int32
                | DataType::Int64
                | DataType::Date
                | DataType::Decimal { .. }
        )
    }

    /// Whether this type is numeric for the purposes of arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Int32 | DataType::Int64 | DataType::Float64 | DataType::Decimal { .. }
        )
    }

    /// Size in bytes of one value in its uncompressed, row-store
    /// representation. Strings report the pointer-free average handled by
    /// callers separately, so this returns `None` for `Utf8`.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DataType::Bool => Some(1),
            DataType::Int32 | DataType::Date => Some(4),
            DataType::Int64 | DataType::Float64 | DataType::Decimal { .. } => Some(8),
            DataType::Utf8 => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "BOOL"),
            DataType::Int32 => write!(f, "INT"),
            DataType::Int64 => write!(f, "BIGINT"),
            DataType::Float64 => write!(f, "DOUBLE"),
            DataType::Date => write!(f, "DATE"),
            DataType::Decimal { scale } => write!(f, "DECIMAL({scale})"),
            DataType::Utf8 => write!(f, "VARCHAR"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_backed_classification() {
        assert!(DataType::Int64.is_integer_backed());
        assert!(DataType::Date.is_integer_backed());
        assert!(DataType::Decimal { scale: 2 }.is_integer_backed());
        assert!(!DataType::Float64.is_integer_backed());
        assert!(!DataType::Utf8.is_integer_backed());
    }

    #[test]
    fn widths() {
        assert_eq!(DataType::Bool.fixed_width(), Some(1));
        assert_eq!(DataType::Int32.fixed_width(), Some(4));
        assert_eq!(DataType::Int64.fixed_width(), Some(8));
        assert_eq!(DataType::Utf8.fixed_width(), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Decimal { scale: 4 }.to_string(), "DECIMAL(4)");
        assert_eq!(DataType::Utf8.to_string(), "VARCHAR");
    }
}
