//! Table schemas.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::row::Row;
use crate::types::DataType;

/// One column of a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType, nullable: bool) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable,
        }
    }

    /// Non-nullable convenience constructor.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        Field::new(name, data_type, false)
    }

    /// Nullable convenience constructor.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Field::new(name, data_type, true)
    }
}

/// An ordered list of named, typed columns.
///
/// Cheap to clone (`Arc` inside); column lookup by name is linear, which is
/// fine for the column counts a warehouse schema has.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: fields.into(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Index of the column named `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Like [`Schema::index_of`] but returns a catalog error naming the column.
    pub fn try_index_of(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| Error::Catalog(format!("unknown column '{name}'")))
    }

    /// A new schema containing only the columns at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Validate that `row` matches this schema (arity, types, nullability).
    pub fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.fields.len() {
            return Err(Error::Type(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.fields.len()
            )));
        }
        for (v, f) in row.values().iter().zip(self.fields.iter()) {
            if v.is_null() {
                if !f.nullable {
                    return Err(Error::Type(format!(
                        "NULL in non-nullable column '{}'",
                        f.name
                    )));
                }
            } else if !v.fits(f.data_type) {
                return Err(Error::Type(format!(
                    "value {v:?} does not fit column '{}' of type {}",
                    f.name, f.data_type
                )));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fld.name, fld.data_type)?;
            if !fld.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::nullable("name", DataType::Utf8),
            Field::nullable("price", DataType::Decimal { scale: 2 }),
        ])
    }

    #[test]
    fn lookup_and_project() {
        let s = sample();
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        let p = s.project(&[2, 0]);
        assert_eq!(p.field(0).name, "price");
        assert_eq!(p.field(1).name, "id");
    }

    #[test]
    fn check_row_accepts_matching() {
        let s = sample();
        let row = Row::new(vec![Value::Int64(1), Value::str("a"), Value::Decimal(100)]);
        assert!(s.check_row(&row).is_ok());
        let with_null = Row::new(vec![Value::Int64(1), Value::Null, Value::Null]);
        assert!(s.check_row(&with_null).is_ok());
    }

    #[test]
    fn check_row_rejects_bad_arity_type_null() {
        let s = sample();
        assert!(s.check_row(&Row::new(vec![Value::Int64(1)])).is_err());
        let bad_type = Row::new(vec![Value::str("x"), Value::Null, Value::Null]);
        assert!(s.check_row(&bad_type).is_err());
        let bad_null = Row::new(vec![Value::Null, Value::Null, Value::Null]);
        assert!(s.check_row(&bad_null).is_err());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            sample().to_string(),
            "(id BIGINT NOT NULL, name VARCHAR, price DECIMAL(2))"
        );
    }
}
