//! Fast, non-cryptographic hashing (the FxHash algorithm used by rustc).
//!
//! Hash joins and hash aggregation hash millions of keys per query; SipHash's
//! HashDoS resistance is unnecessary inside a local engine, so the whole
//! workspace uses these aliases instead of the std defaults.

use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash word-at-a-time multiplicative hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let word = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            self.add_to_hash(word);
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let word = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as u64;
            self.add_to_hash(word);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash a single `u64` to a well-mixed `u64` without constructing a hasher.
/// Used by the Bloom filter and hash-partitioning, where the key is already
/// an integer and we want all 64 output bits to be usable.
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    // splitmix64 finalizer: full-avalanche, cheap, well studied.
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash a byte slice (for string keys) to a `u64`.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    // FxHash's raw output is weak in the low bits and maps all-zero inputs
    // of any length to 0; mix in the length and finalize with splitmix.
    hash_u64(h.finish() ^ (bytes.len() as u64) << 56)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hash_u64_distinguishes_sequential_keys() {
        // Sequential keys must not collide in low bits (bucket selection).
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0..4096u64 {
            low_bits.insert(hash_u64(i) & 0xfff);
        }
        // Expect a healthy fraction of the 4096 slots to be hit.
        assert!(
            low_bits.len() > 2500,
            "poor low-bit mixing: {}",
            low_bits.len()
        );
    }

    #[test]
    fn hash_bytes_differs_on_prefix() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_eq!(hash_bytes(b"same"), hash_bytes(b"same"));
    }
}
