//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// The error type shared by every `cstore` crate.
///
/// Variants are intentionally coarse: each names the subsystem that can
/// produce it plus a human-readable message. Call sites that need to react
/// programmatically match on the variant; everything else just propagates.
#[derive(Debug)]
pub enum Error {
    /// A schema/type mismatch (wrong column type, arity mismatch, ...).
    Type(String),
    /// Malformed or unsupported SQL.
    Sql(String),
    /// Catalog problems: unknown table/column, duplicate names, ...
    Catalog(String),
    /// Planner/optimizer failures.
    Plan(String),
    /// Execution-time failures (overflow, division by zero, spill errors).
    Execution(String),
    /// Storage-layer failures: corrupt segment, bad checksum, format version.
    Storage(String),
    /// Underlying I/O error (file-backed blob store, spill files).
    Io(std::io::Error),
    /// An operation is valid but not supported by this build.
    Unsupported(String),
    /// The resource governor refused the operation: admission queue
    /// timeout/overflow, or a memory reservation beyond the shared ledger
    /// that could not be resolved by spilling.
    ResourceExhausted(String),
    /// The database is in read-only degradation; the message names the
    /// cause (sticky WAL failure, blob-store write failure, failed mover).
    ReadOnly(String),
    /// A write-write conflict between concurrent transactions: two
    /// transactions tried to delete/update the same row, and this one lost.
    Conflict(String),
}

impl Error {
    /// Short code naming the variant; stable for tests and log grepping.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Type(_) => "TYPE",
            Error::Sql(_) => "SQL",
            Error::Catalog(_) => "CATALOG",
            Error::Plan(_) => "PLAN",
            Error::Execution(_) => "EXECUTION",
            Error::Storage(_) => "STORAGE",
            Error::Io(_) => "IO",
            Error::Unsupported(_) => "UNSUPPORTED",
            Error::ResourceExhausted(_) => "RESOURCE_EXHAUSTED",
            Error::ReadOnly(_) => "READ_ONLY",
            Error::Conflict(_) => "CONFLICT",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Sql(m) => write!(f, "SQL error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            Error::ReadOnly(m) => write!(f, "database is read-only: {m}"),
            Error::Conflict(m) => write!(f, "write-write conflict: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = Error::Type("expected Int64".into());
        assert_eq!(e.to_string(), "type error: expected Int64");
        assert_eq!(e.code(), "TYPE");
    }

    #[test]
    fn governor_variants_display_and_code() {
        let e = Error::ResourceExhausted("admission queue timeout".into());
        assert_eq!(e.code(), "RESOURCE_EXHAUSTED");
        assert_eq!(e.to_string(), "resource exhausted: admission queue timeout");
        let e = Error::ReadOnly("WAL is failed: disk full".into());
        assert_eq!(e.code(), "READ_ONLY");
        assert!(e.to_string().contains("read-only"));
        assert!(e.to_string().contains("disk full"));
    }

    #[test]
    fn conflict_variant_displays_and_codes() {
        let e = Error::Conflict("row t:42 already written by txn 7".into());
        assert_eq!(e.code(), "CONFLICT");
        assert!(e.to_string().contains("write-write conflict"));
        assert!(e.to_string().contains("txn 7"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert_eq!(e.code(), "IO");
        assert!(std::error::Error::source(&e).is_some());
    }
}
