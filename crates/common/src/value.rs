//! Dynamically-typed scalar values.
//!
//! `Value` is used on slow paths only: trickle inserts, delta-store rows,
//! the row-mode baseline operators and query results. Batch-mode execution
//! works on typed column vectors (`cstore-exec`) and never materializes
//! `Value`s per row.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::types::DataType;

/// A single dynamically-typed scalar value, possibly NULL.
///
/// Strings are `Arc<str>` so cloning rows (which the delta store and the
/// row-mode operators do) does not copy string bytes.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    Int32(i32),
    Int64(i64),
    Float64(f64),
    /// Days since the Unix epoch.
    Date(i32),
    /// Scaled mantissa; the scale lives in the column's `DataType`.
    Decimal(i64),
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The `DataType` this value naturally has, or `None` for NULL
    /// (NULL is typed by its column, not by the value).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Date(_) => Some(DataType::Date),
            Value::Decimal(_) => Some(DataType::Decimal { scale: 0 }),
            Value::Str(_) => Some(DataType::Utf8),
        }
    }

    /// Whether this value can be stored in a column of type `ty`.
    ///
    /// NULL is storable anywhere; `Decimal` carries no scale of its own, so
    /// it matches any decimal column.
    pub fn fits(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Int32(_), DataType::Int32)
                | (Value::Int64(_), DataType::Int64)
                | (Value::Float64(_), DataType::Float64)
                | (Value::Date(_), DataType::Date)
                | (Value::Decimal(_), DataType::Decimal { .. })
                | (Value::Str(_), DataType::Utf8)
        )
    }

    /// The value as an `i64` if it is integer-backed (see
    /// [`DataType::is_integer_backed`]); used by the encoders.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Bool(b) => Some(*b as i64),
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            Value::Decimal(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rebuild an integer-backed value of type `ty` from its `i64` image.
    /// Inverse of [`Value::as_i64`] for integer-backed types.
    pub fn from_i64(ty: DataType, raw: i64) -> Value {
        match ty {
            DataType::Bool => Value::Bool(raw != 0),
            DataType::Int32 => Value::Int32(raw as i32),
            DataType::Int64 => Value::Int64(raw),
            DataType::Date => Value::Date(raw as i32),
            DataType::Decimal { .. } => Value::Decimal(raw),
            // lint: allow(panic) — typed-conversion contract: callers check
            // is_integer_backed first
            _ => panic!("from_i64 called for non-integer-backed type {ty}"),
        }
    }

    /// SQL total ordering used by sort operators and the B+tree:
    /// NULL sorts first; floats use IEEE total ordering so the comparison is
    /// a true total order.
    pub fn cmp_sql(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int32(a), Int32(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            // Mixed integer widths can appear when literals meet columns.
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x.cmp(&y),
                _ => match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => x.total_cmp(&y),
                    // lint: allow(panic) — the binder rejects comparisons
                    // between non-coercible types before execution
                    _ => panic!("cmp_sql on incomparable values {a:?} vs {b:?}"),
                },
            },
        }
    }

    /// SQL equality (NULL equals nothing, not even NULL — callers on
    /// three-valued-logic paths must check for NULL first; this method treats
    /// NULL == NULL as true because storage needs a reflexive equality).
    pub fn eq_storage(&self, other: &Value) -> bool {
        self.cmp_sql(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.eq_storage(other)
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_sql(other)
    }
}

impl std::hash::Hash for Value {
    /// Hash consistent with [`Value::eq_storage`]: floats hash by their
    /// bit pattern (total-order equality), integer-backed values by their
    /// `i64` image so `Int32(5)` and `Int64(5)` — equal under `cmp_sql` —
    /// hash identically.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Float64(f) => {
                state.write_u8(1);
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(2);
                state.write(s.as_bytes());
            }
            _ => {
                state.write_u8(3);
                state.write_u64(self.as_i64().unwrap_or(0) as u64);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Date(d) => write!(f, "DATE({d})"),
            Value::Decimal(m) => write!(f, "{m}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vs = vec![Value::Int64(3), Value::Null, Value::Int64(-1)];
        vs.sort();
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Int64(-1));
    }

    #[test]
    fn i64_roundtrip_all_integer_backed() {
        for (ty, v) in [
            (DataType::Bool, Value::Bool(true)),
            (DataType::Int32, Value::Int32(-7)),
            (DataType::Int64, Value::Int64(1 << 40)),
            (DataType::Date, Value::Date(19000)),
            (DataType::Decimal { scale: 2 }, Value::Decimal(12345)),
        ] {
            let raw = v.as_i64().unwrap();
            assert_eq!(Value::from_i64(ty, raw), v);
        }
    }

    #[test]
    fn fits_checks_type() {
        assert!(Value::Null.fits(DataType::Utf8));
        assert!(Value::Int64(1).fits(DataType::Int64));
        assert!(!Value::Int64(1).fits(DataType::Int32));
        assert!(Value::Decimal(5).fits(DataType::Decimal { scale: 4 }));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let a = Value::Float64(f64::NAN);
        let b = Value::Float64(1.0);
        // total_cmp puts NaN after all numbers; just assert it doesn't panic
        // and is consistent.
        assert_eq!(a.cmp_sql(&b), Ordering::Greater);
        assert_eq!(b.cmp_sql(&a), Ordering::Less);
        assert_eq!(a.cmp_sql(&a), Ordering::Equal);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int32(5).cmp_sql(&Value::Int64(5)), Ordering::Equal);
        assert_eq!(Value::Int64(4).cmp_sql(&Value::Int32(5)), Ordering::Less);
    }

    #[test]
    fn string_sharing_is_cheap() {
        let s = Value::str("hello world");
        let t = s.clone();
        assert_eq!(s.as_str(), t.as_str());
    }
}
