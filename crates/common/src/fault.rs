//! Deterministic fault injection for robustness testing.
//!
//! Production storage engines earn their crash-safety claims by being
//! tortured: SQL Server's columnstore machinery (tuple mover, segment
//! persistence) is validated against injected IO failures and kills at
//! arbitrary points. This module provides the equivalent lever for the
//! reproduction: a seeded [`FaultInjector`] that components consult at
//! named *fault points*. Tests arm faults (`arm`) and the code under test
//! reports reaching a point (`hit`), receiving back the fault to act out —
//! an IO error, a torn write, a flipped bit, or a simulated crash.
//!
//! The injector is deliberately deterministic: randomness (which bit to
//! flip, where to tear a write) comes from the xorshift [`crate::testutil::Rng`]
//! seeded at construction, so a failing chaos run reproduces from its seed.
//! When nothing is armed every `hit` is a cheap no-op returning `None`, so
//! shipping the hooks in library code costs one `Option` check.

use crate::sync::Mutex;
use crate::testutil::Rng;
use crate::{Error, FxHashMap};
use std::sync::Arc;

/// Every fault point the engine consults, with a one-line description —
/// the source of truth behind `cstore faults list` and the shell's
/// `\faults`, so chaos schedules enumerate real names instead of
/// hard-coding strings that drift. Components adding a `hit("...")`
/// call must add the point here (the names are asserted in tests).
///
/// `blob.put` also has a keyed form, `blob.put:<key>`, targeting one
/// specific object; the keyed form is consulted in addition to the
/// plain point.
pub const KNOWN_FAULT_POINTS: &[(&str, &str)] = &[
    (
        "alloc.reserve",
        "memory-ledger reservation (governor); firing fails the reserve",
    ),
    ("blob.delete", "blob-store delete through FaultyBlobStore"),
    ("blob.get", "blob-store read through FaultyBlobStore"),
    (
        "blob.put",
        "blob-store write through FaultyBlobStore (ENOSPC via IoError; keyed form blob.put:<key>)",
    ),
    (
        "governor.admit",
        "query admission in Database::execute; firing rejects the query",
    ),
    (
        "mover.pass",
        "tuple-mover compression pass entry; IoError is transient, others fatal",
    ),
    (
        "wal.append",
        "WAL frame append inside flush_batch (per frame)",
    ),
    ("wal.fsync", "WAL segment fsync after a group-commit batch"),
    ("wal.replay", "WAL record decode during recovery replay"),
    (
        "wal.txn_abort",
        "TxnAbort record logging during ROLLBACK / conflict abort",
    ),
    (
        "wal.txn_begin",
        "TxnBegin record logging at BEGIN of an explicit transaction",
    ),
    (
        "wal.txn_commit",
        "TxnCommit record logging at COMMIT (the atomicity point)",
    ),
];

/// The kinds of fault the injector can order a component to act out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with an IO error (transient class).
    IoError,
    /// Persist only a prefix of the bytes, then report success — the
    /// classic torn write a power cut leaves behind.
    TornWrite,
    /// Flip one bit of the payload, then report success.
    BitFlip,
    /// Simulated crash: the in-flight operation does not happen and every
    /// subsequent operation through the same injector fails.
    Crash,
    /// Crash mid-write: the in-flight write leaves a torn prefix behind,
    /// then the process is considered dead (as [`FaultKind::Crash`]).
    TornCrash,
}

impl FaultKind {
    /// Render this fault as the error a component should surface when it
    /// cannot act the fault out in-band (e.g. an injected IO failure).
    pub fn to_error(self, point: &str) -> Error {
        match self {
            FaultKind::IoError => Error::Io(std::io::Error::other(format!(
                "injected IO fault at '{point}'"
            ))),
            FaultKind::Crash | FaultKind::TornCrash => Error::Io(std::io::Error::other(format!(
                "simulated crash at '{point}'"
            ))),
            FaultKind::TornWrite | FaultKind::BitFlip => {
                Error::Storage(format!("injected {self:?} fault at '{point}'"))
            }
        }
    }
}

/// When an armed fault fires: skip the first `after` hits of the point,
/// then fire on the next `times` hits.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    pub kind: FaultKind,
    /// Hits of the point to let through before firing.
    pub after: u64,
    /// Number of consecutive hits (once reached) that fire; `u64::MAX`
    /// means every subsequent hit.
    pub times: u64,
}

impl FaultSpec {
    pub fn new(kind: FaultKind) -> Self {
        FaultSpec {
            kind,
            after: 0,
            times: 1,
        }
    }

    /// Skip the first `n` hits before firing.
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Fire on `n` consecutive hits (default 1).
    pub fn times(mut self, n: u64) -> Self {
        self.times = n;
        self
    }

    /// Fire on every hit from `after` onward.
    pub fn always(mut self) -> Self {
        self.times = u64::MAX;
        self
    }
}

#[derive(Debug, Default)]
struct PointState {
    /// Times the point was reached.
    hits: u64,
    /// Times a fault actually fired at the point.
    fired: u64,
    /// Armed specs, consulted in arming order.
    specs: Vec<FaultSpec>,
}

#[derive(Debug)]
struct State {
    rng: Rng,
    points: FxHashMap<String, PointState>,
    /// Once a crash fault fires the injector stays "dead": every further
    /// hit reports [`FaultKind::Crash`] until [`FaultInjector::revive`].
    crashed: bool,
    /// Chronological record of fired faults, for test assertions.
    log: Vec<(String, FaultKind)>,
}

/// A seeded, shareable fault injector. Clones share state, so the test
/// arming faults and the component hitting points observe one another.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    state: Arc<Mutex<State>>,
}

impl FaultInjector {
    /// Create an injector whose internal randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            state: Arc::new(Mutex::new(State {
                rng: Rng::new(seed),
                points: FxHashMap::default(),
                crashed: false,
                log: Vec::new(),
            })),
        }
    }

    /// Arm `spec` at `point`. Multiple specs may be armed at one point;
    /// each hit fires at most one (arming order decides ties).
    pub fn arm(&self, point: &str, spec: FaultSpec) {
        let mut st = self.state.lock();
        st.points
            .entry(point.to_owned())
            .or_default()
            .specs
            .push(spec);
    }

    /// Report reaching `point`. Returns the fault to act out, if any.
    pub fn hit(&self, point: &str) -> Option<FaultKind> {
        let mut st = self.state.lock();
        if st.crashed {
            // The "process" is dead: everything fails, nothing persists.
            st.log.push((point.to_owned(), FaultKind::Crash));
            return Some(FaultKind::Crash);
        }
        let entry = st.points.entry(point.to_owned()).or_default();
        let seq = entry.hits;
        entry.hits += 1;
        let mut fired_kind = None;
        for spec in &entry.specs {
            if seq >= spec.after && (spec.times == u64::MAX || seq < spec.after + spec.times) {
                fired_kind = Some(spec.kind);
                break;
            }
        }
        if let Some(kind) = fired_kind {
            entry.fired += 1;
            if matches!(kind, FaultKind::Crash | FaultKind::TornCrash) {
                st.crashed = true;
            }
            st.log.push((point.to_owned(), kind));
            Some(kind)
        } else {
            None
        }
    }

    /// Times `point` was reached (fired or not).
    pub fn hits(&self, point: &str) -> u64 {
        self.state.lock().points.get(point).map_or(0, |p| p.hits)
    }

    /// Times a fault fired at `point`.
    pub fn fired(&self, point: &str) -> u64 {
        self.state.lock().points.get(point).map_or(0, |p| p.fired)
    }

    /// Total faults fired across all points.
    pub fn fired_total(&self) -> u64 {
        self.state.lock().log.len() as u64
    }

    /// Whether a crash fault has fired (the injector is "dead").
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Clear the crash state (the test "restarts the process").
    pub fn revive(&self) {
        self.state.lock().crashed = false;
    }

    /// Disarm every point and clear counters (the seed/RNG stream is kept).
    pub fn disarm_all(&self) {
        let mut st = self.state.lock();
        st.points.clear();
        st.crashed = false;
        st.log.clear();
    }

    /// Chronological `(point, kind)` record of fired faults.
    pub fn fired_log(&self) -> Vec<(String, FaultKind)> {
        self.state.lock().log.clone()
    }

    /// Deterministic uniform draw in `[0, bound)` from the injector's
    /// seeded stream — used by wrappers to pick tear points and bit
    /// positions reproducibly.
    pub fn rng_below(&self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.state.lock().rng.below(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_are_silent() {
        let f = FaultInjector::new(1);
        assert_eq!(f.hit("x"), None);
        assert_eq!(f.hits("x"), 1);
        assert_eq!(f.fired("x"), 0);
        assert!(!f.crashed());
    }

    #[test]
    fn after_and_times_window_fires_exactly() {
        let f = FaultInjector::new(2);
        f.arm("io", FaultSpec::new(FaultKind::IoError).after(2).times(3));
        let fired: Vec<bool> = (0..8).map(|_| f.hit("io").is_some()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, true, true, false, false, false]
        );
        assert_eq!(f.fired("io"), 3);
        assert_eq!(f.hits("io"), 8);
    }

    #[test]
    fn always_fires_forever() {
        let f = FaultInjector::new(3);
        f.arm("p", FaultSpec::new(FaultKind::BitFlip).always());
        for _ in 0..5 {
            assert_eq!(f.hit("p"), Some(FaultKind::BitFlip));
        }
    }

    #[test]
    fn crash_is_sticky_across_points_until_revived() {
        let f = FaultInjector::new(4);
        f.arm("put", FaultSpec::new(FaultKind::Crash).after(1));
        assert_eq!(f.hit("put"), None);
        assert_eq!(f.hit("put"), Some(FaultKind::Crash));
        assert!(f.crashed());
        // Every other point now reports the crash too.
        assert_eq!(f.hit("get"), Some(FaultKind::Crash));
        f.revive();
        assert_eq!(f.hit("get"), None);
    }

    #[test]
    fn clones_share_state() {
        let f = FaultInjector::new(5);
        let g = f.clone();
        g.arm("p", FaultSpec::new(FaultKind::IoError));
        assert_eq!(f.hit("p"), Some(FaultKind::IoError));
        assert_eq!(g.fired("p"), 1);
    }

    #[test]
    fn deterministic_rng_per_seed() {
        let a = FaultInjector::new(42);
        let b = FaultInjector::new(42);
        let xs: Vec<u64> = (0..10).map(|_| a.rng_below(1000)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.rng_below(1000)).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.rng_below(0), 0);
    }

    #[test]
    fn known_points_are_sorted_unique_and_described() {
        let names: Vec<&str> = KNOWN_FAULT_POINTS.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            names, sorted,
            "KNOWN_FAULT_POINTS must be sorted and unique"
        );
        for (name, desc) in KNOWN_FAULT_POINTS {
            assert!(!name.is_empty() && !desc.is_empty());
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "point name '{name}' must be lowercase dotted"
            );
        }
    }

    #[test]
    fn to_error_classifies() {
        assert_eq!(FaultKind::IoError.to_error("p").code(), "IO");
        assert_eq!(FaultKind::Crash.to_error("p").code(), "IO");
        assert_eq!(FaultKind::BitFlip.to_error("p").code(), "STORAGE");
    }
}
