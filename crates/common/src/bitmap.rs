//! A growable bitset.
//!
//! Used for NULL masks in column vectors, qualifying-row vectors in batches,
//! and as the building block of the delete bitmap.

/// A growable bitset over `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap of logical length 0.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// A bitmap of `len` bits, all clear.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap of `len` bits, all set.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Build from a bool slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Bitmap::zeros(bits.len());
        for (i, &x) in bits.iter().enumerate() {
            if x {
                b.set(i);
            }
        }
        b
    }

    /// Logical number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clear bits past `len` in the last word so popcounts stay correct.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Grow to at least `len` bits (new bits clear).
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.words.resize(len.div_ceil(64), 0);
            self.len = len;
        }
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let i = self.len;
        self.grow(self.len + 1);
        if bit {
            self.set(i);
        }
    }

    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bitmap index {idx} out of {}", self.len);
        (self.words[idx >> 6] >> (idx & 63)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, idx: usize) {
        debug_assert!(idx < self.len);
        self.words[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    pub fn clear(&mut self, idx: usize) {
        debug_assert!(idx < self.len);
        self.words[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// Set bit `idx`, growing the bitmap if needed. Returns whether the bit
    /// was previously set (used by the delete bitmap to detect double
    /// deletes).
    pub fn set_grow(&mut self, idx: usize) -> bool {
        if idx >= self.len {
            self.grow(idx + 1);
        }
        let was = self.get(idx);
        self.set(idx);
        was
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Whether all bits are set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// In-place union with `other` (lengths must match).
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection with `other` (lengths must match).
    pub fn intersect_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// In-place set difference: clear every bit set in `other`.
    pub fn subtract(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Flip every bit.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Iterate over indices of set bits in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collect set-bit indices into a `Vec<u32>` (selection-vector form).
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        out.extend(self.iter_ones().map(|i| i as u32));
        out
    }

    /// Raw words (read-only), for serialization.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw words + logical length (for deserialization).
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert!(words.len() == len.div_ceil(64), "word count mismatch");
        let mut b = Bitmap { words, len };
        b.mask_tail();
        b
    }
}

/// Iterator over set-bit positions.
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_get() {
        let mut b = Bitmap::zeros(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_respects_tail() {
        let b = Bitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.all());
    }

    #[test]
    fn negate_respects_tail() {
        let mut b = Bitmap::zeros(70);
        b.negate();
        assert_eq!(b.count_ones(), 70);
        b.negate();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn iter_ones_matches_naive() {
        let bools: Vec<bool> = (0..300).map(|i| i % 7 == 0 || i % 11 == 3).collect();
        let b = Bitmap::from_bools(&bools);
        let expect: Vec<usize> = bools
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| x.then_some(i))
            .collect();
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, expect);
        assert_eq!(
            b.to_indices(),
            expect.iter().map(|&i| i as u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_grow_reports_previous_state() {
        let mut b = Bitmap::new();
        assert!(!b.set_grow(100));
        assert!(b.set_grow(100));
        assert_eq!(b.len(), 101);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, Bitmap::from_bools(&[true, true, true, false]));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, Bitmap::from_bools(&[true, false, false, false]));
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d, Bitmap::from_bools(&[false, true, false, false]));
    }

    #[test]
    fn words_roundtrip() {
        let b = Bitmap::from_bools(&[true, false, true]);
        let c = Bitmap::from_words(b.words().to_vec(), b.len());
        assert_eq!(b, c);
    }

    #[test]
    fn push_appends() {
        let mut b = Bitmap::new();
        for i in 0..100 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 34);
    }
}
