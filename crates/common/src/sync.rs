//! Workspace synchronization primitives.
//!
//! Thin wrappers over [`std::sync::Mutex`] / [`std::sync::RwLock`] with a
//! `parking_lot`-style API: acquiring a lock returns the guard directly
//! instead of a `LockResult`. Poisoning is deliberately transparent — a
//! panicked writer leaves data that the engine's invariants must already
//! tolerate (every mutation is staged and installed atomically), so the
//! guard is recovered via [`std::sync::PoisonError::into_inner`] rather
//! than propagating an unrecoverable secondary panic through every reader.
//!
//! Keeping lock acquisition behind this module also gives `cstore-lint`
//! a single surface to scan when enforcing the lock hierarchy declared in
//! `LOCK_ORDER.md` (rule L5).

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose `read()` / `write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable paired with [`Mutex`]: `wait` consumes and
/// returns the wrapper's [`MutexGuard`] (which *is* the std guard), with
/// the same poison-transparent recovery as the locks above.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> MutexGuard<'a, T> {
        self.0
            .wait_timeout(guard, timeout)
            .map(|(g, _)| g)
            .unwrap_or_else(|p| p.into_inner().0)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned mutex still hands out its guard.
        assert_eq!(*m.lock(), 7);
    }
}
