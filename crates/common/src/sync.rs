//! Workspace synchronization primitives.
//!
//! Thin wrappers over [`std::sync::Mutex`] / [`std::sync::RwLock`] with a
//! `parking_lot`-style API: acquiring a lock returns the guard directly
//! instead of a `LockResult`. Poisoning is deliberately transparent — a
//! panicked writer leaves data that the engine's invariants must already
//! tolerate (every mutation is staged and installed atomically), so the
//! guard is recovered via [`std::sync::PoisonError::into_inner`] rather
//! than propagating an unrecoverable secondary panic through every reader.
//!
//! # Lockdep
//!
//! Locks constructed with [`Mutex::new_leveled`] / [`RwLock::new_leveled`]
//! participate in runtime lock-order validation against the hierarchy
//! declared in `LOCK_ORDER.md`. Every leveled acquisition:
//!
//! * checks the thread-local stack of currently-held levels — blocking on
//!   a level less than or equal to one already held is an inversion. Under
//!   `cfg(test)` or the `lockdep` cargo feature the inversion panics with
//!   both lock names; in release builds it bumps the lock's `violations`
//!   counter instead so production keeps running;
//! * records acquisition, contention (had to block), wait-time and
//!   max-hold-time counters into a process-wide registry, surfaced through
//!   [`lock_stats`] (the `sys.lock_stats` view) and
//!   [`render_lock_stats_prometheus`] (the `/metrics` text).
//!
//! `try_*` acquisitions never block, so they are exempt from the order
//! check; a failed `try_lock` leaves the held stack untouched.
//! [`Condvar::wait`] atomically releases its mutex, so the held entry is
//! popped for the duration of the wait and re-pushed on wake-up.
//!
//! Locks built with the plain constructors (`Mutex::new`) are untracked —
//! they stay `const`-constructible and pay no lockdep overhead. Engine
//! locks must use the leveled constructors; `cstore-lint` (L8) diffs the
//! declared table against the fields in the lock-bearing crates.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError};
use std::time::Instant;

// ---------------------------------------------------------------- lockdep

/// Live counters of one declared (leveled) lock. Instances that share a
/// name — e.g. every table's `table.inner` — share one entry.
#[derive(Debug)]
pub struct LockStats {
    pub level: u32,
    pub name: &'static str,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    total_wait_ns: AtomicU64,
    max_hold_ns: AtomicU64,
    violations: AtomicU64,
}

/// Point-in-time copy of one lock's counters, for `sys.lock_stats`.
#[derive(Debug, Clone)]
pub struct LockStatsSnapshot {
    pub level: u32,
    pub name: &'static str,
    pub acquisitions: u64,
    pub contended: u64,
    pub total_wait_ns: u64,
    pub max_hold_ns: u64,
    pub violations: u64,
}

/// The process-wide registry of leveled locks. Guarded by a raw std mutex
/// so lockdep bookkeeping can never recurse through the leveled path.
fn registry() -> &'static std::sync::Mutex<Vec<Arc<LockStats>>> {
    static REGISTRY: OnceLock<std::sync::Mutex<Vec<Arc<LockStats>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// Register (or look up) the shared stats entry for `name`.
fn register(level: u32, name: &'static str) -> Arc<LockStats> {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = reg.iter().find(|s| s.name == name) {
        return Arc::clone(existing);
    }
    let stats = Arc::new(LockStats {
        level,
        name,
        acquisitions: AtomicU64::new(0),
        contended: AtomicU64::new(0),
        total_wait_ns: AtomicU64::new(0),
        max_hold_ns: AtomicU64::new(0),
        violations: AtomicU64::new(0),
    });
    reg.push(Arc::clone(&stats));
    stats
}

/// Snapshot every registered lock's counters, sorted by level then name.
pub fn lock_stats() -> Vec<LockStatsSnapshot> {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out: Vec<LockStatsSnapshot> = reg
        .iter()
        .map(|s| LockStatsSnapshot {
            level: s.level,
            name: s.name,
            acquisitions: s.acquisitions.load(Ordering::Relaxed),
            contended: s.contended.load(Ordering::Relaxed),
            total_wait_ns: s.total_wait_ns.load(Ordering::Relaxed),
            max_hold_ns: s.max_hold_ns.load(Ordering::Relaxed),
            violations: s.violations.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| (a.level, a.name).cmp(&(b.level, b.name)));
    out
}

/// Render the lock registry as Prometheus exposition text (appended to
/// `Database::metrics()` output).
pub fn render_lock_stats_prometheus() -> String {
    let stats = lock_stats();
    if stats.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let series: [(&str, &str, fn(&LockStatsSnapshot) -> u64); 5] = [
        ("cstore_lock_acquisitions_total", "counter", |s| {
            s.acquisitions
        }),
        ("cstore_lock_contended_total", "counter", |s| s.contended),
        ("cstore_lock_wait_ns_total", "counter", |s| s.total_wait_ns),
        ("cstore_lock_max_hold_ns", "gauge", |s| s.max_hold_ns),
        ("cstore_lock_violations_total", "counter", |s| s.violations),
    ];
    for (metric, kind, value) in series {
        out.push_str(&format!("# TYPE {metric} {kind}\n"));
        for s in &stats {
            out.push_str(&format!(
                "{metric}{{lock=\"{}\",level=\"{}\"}} {}\n",
                s.name,
                s.level,
                value(s)
            ));
        }
    }
    out
}

/// One entry of the thread-local held-lock stack.
struct HeldEntry {
    level: u32,
    name: &'static str,
    /// Unique acquisition token: guards can drop out of stack order, so
    /// release removes by token, not by popping the top.
    seq: u64,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
}

fn next_seq() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Order check for a *blocking* acquisition: a level at or below the most
/// recently acquired held level is an inversion. (`try_*` cannot
/// deadlock and skips this.)
fn check_order(stats: &LockStats) {
    HELD.with(|held| {
        if let Some(top) = held.borrow().last() {
            if stats.level <= top.level {
                stats.violations.fetch_add(1, Ordering::Relaxed);
                report_violation(stats.name, stats.level, top.name, top.level);
            }
        }
    });
}

#[cfg(any(test, feature = "lockdep"))]
fn report_violation(acq_name: &str, acq_level: u32, held_name: &str, held_level: u32) {
    // lint: allow(panic) — lockdep's whole point: inversions must abort
    // loudly in test/lockdep builds; release builds only count them.
    panic!(
        "lock-order violation: acquiring `{acq_name}` (level {acq_level}) \
         while holding `{held_name}` (level {held_level}) — see LOCK_ORDER.md"
    );
}

#[cfg(not(any(test, feature = "lockdep")))]
fn report_violation(_acq_name: &str, _acq_level: u32, _held_name: &str, _held_level: u32) {}

fn push_held(stats: &LockStats) -> u64 {
    let seq = next_seq();
    HELD.with(|held| {
        held.borrow_mut().push(HeldEntry {
            level: stats.level,
            name: stats.name,
            seq,
        });
    });
    seq
}

fn pop_held(seq: u64) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|e| e.seq == seq) {
            held.remove(pos);
        }
    });
}

/// Number of leveled guards the current thread holds (test hook).
pub fn held_count() -> usize {
    HELD.with(|held| held.borrow().len())
}

/// Lockdep bookkeeping carried by a guard of a leveled lock.
struct Dep {
    stats: Arc<LockStats>,
    seq: u64,
    acquired: Instant,
}

impl Dep {
    /// Record a completed blocking-or-try acquisition.
    fn acquired(stats: &Arc<LockStats>) -> Dep {
        stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        Dep {
            stats: Arc::clone(stats),
            seq: push_held(stats),
            acquired: Instant::now(),
        }
    }

    /// Re-push after a condvar wait: no order check, no acquisition count.
    fn reacquired(stats: &Arc<LockStats>) -> Dep {
        Dep {
            stats: Arc::clone(stats),
            seq: push_held(stats),
            acquired: Instant::now(),
        }
    }

    fn release(self) {
        let ns = u64::try_from(self.acquired.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stats.max_hold_ns.fetch_max(ns, Ordering::Relaxed);
        pop_held(self.seq);
    }
}

/// Run the blocking acquisition `block` with contention/wait accounting:
/// a cheap `try_` probe first (provided by `probe`), falling back to the
/// timed blocking path when the lock is contended.
fn acquire_timed<G>(
    stats: &LockStats,
    probe: impl FnOnce() -> Option<G>,
    block: impl FnOnce() -> G,
) -> G {
    if let Some(g) = probe() {
        return g;
    }
    stats.contended.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let g = block();
    let elapsed = start.elapsed();
    let waited = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    stats.total_wait_ns.fetch_add(waited, Ordering::Relaxed);
    crate::waits::observe(crate::waits::WaitClass::Lock(stats.name), elapsed);
    g
}

// ------------------------------------------------------------------ Mutex

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    stats: Option<Arc<LockStats>>,
    inner: std::sync::Mutex<T>,
}

/// Guard of a [`Mutex`]; releases lockdep state on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    dep: Option<Dep>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new untracked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            stats: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Create a mutex registered with the lockdep under `name` at `level`
    /// of the LOCK_ORDER.md hierarchy.
    pub fn new_leveled(level: u32, name: &'static str, value: T) -> Self {
        Mutex {
            stats: Some(register(level, name)),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let dep = self.stats.as_ref().map(|stats| {
            check_order(stats);
            Dep::acquired(stats)
        });
        let inner = match &self.stats {
            None => self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            Some(stats) => acquire_timed(
                stats,
                || match self.inner.try_lock() {
                    Ok(g) => Some(g),
                    Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                    Err(std::sync::TryLockError::WouldBlock) => None,
                },
                || self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            ),
        };
        MutexGuard {
            dep,
            inner: Some(inner),
        }
    }

    /// Try to acquire the lock without blocking. A failed attempt leaves
    /// the lockdep held-stack untouched.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            dep: self.stats.as_ref().map(Dep::acquired),
            inner: Some(inner),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            // lint: allow(panic) — unreachable: `inner` is only None
            // transiently inside Condvar::wait, which owns the guard.
            None => unreachable!("MutexGuard used after being dismantled"),
        }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            // lint: allow(panic) — unreachable, as above.
            None => unreachable!("MutexGuard used after being dismantled"),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(dep) = self.dep.take() {
            dep.release();
        }
    }
}

// ----------------------------------------------------------------- RwLock

/// A reader-writer lock whose `read()` / `write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    stats: Option<Arc<LockStats>>,
    inner: std::sync::RwLock<T>,
}

/// Shared guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    dep: Option<Dep>,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    dep: Option<Dep>,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new untracked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            stats: None,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Create a lock registered with the lockdep under `name` at `level`
    /// of the LOCK_ORDER.md hierarchy.
    pub fn new_leveled(level: u32, name: &'static str, value: T) -> Self {
        RwLock {
            stats: Some(register(level, name)),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let dep = self.stats.as_ref().map(|stats| {
            check_order(stats);
            Dep::acquired(stats)
        });
        let inner = match &self.stats {
            None => self.inner.read().unwrap_or_else(PoisonError::into_inner),
            Some(stats) => acquire_timed(
                stats,
                || match self.inner.try_read() {
                    Ok(g) => Some(g),
                    Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                    Err(std::sync::TryLockError::WouldBlock) => None,
                },
                || self.inner.read().unwrap_or_else(PoisonError::into_inner),
            ),
        };
        RwLockReadGuard { dep, inner }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let dep = self.stats.as_ref().map(|stats| {
            check_order(stats);
            Dep::acquired(stats)
        });
        let inner = match &self.stats {
            None => self.inner.write().unwrap_or_else(PoisonError::into_inner),
            Some(stats) => acquire_timed(
                stats,
                || match self.inner.try_write() {
                    Ok(g) => Some(g),
                    Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                    Err(std::sync::TryLockError::WouldBlock) => None,
                },
                || self.inner.write().unwrap_or_else(PoisonError::into_inner),
            ),
        };
        RwLockWriteGuard { dep, inner }
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            dep: self.stats.as_ref().map(Dep::acquired),
            inner,
        })
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockWriteGuard {
            dep: self.stats.as_ref().map(Dep::acquired),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(dep) = self.dep.take() {
            dep.release();
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(dep) = self.dep.take() {
            dep.release();
        }
    }
}

// ---------------------------------------------------------------- Condvar

/// A condition variable paired with [`Mutex`]: `wait` consumes and
/// returns the wrapper's [`MutexGuard`], with the same poison-transparent
/// recovery as the locks above. While parked the mutex is released, so
/// the lockdep held-entry is popped for the duration of the wait and
/// re-pushed on wake-up (without a fresh order check — the levels below
/// it on this thread's stack cannot have changed while it was blocked).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (std_guard, stats) = dismantle(guard);
        let woke = self
            .0
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        reassemble(woke, stats)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> MutexGuard<'a, T> {
        let (std_guard, stats) = dismantle(guard);
        let woke = self
            .0
            .wait_timeout(std_guard, timeout)
            .map(|(g, _)| g)
            .unwrap_or_else(|p| p.into_inner().0);
        reassemble(woke, stats)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Take a wrapper guard apart for a condvar wait: the held entry is
/// popped (hold time recorded) because the mutex is about to be released.
fn dismantle<'a, T: ?Sized>(
    mut guard: MutexGuard<'a, T>,
) -> (std::sync::MutexGuard<'a, T>, Option<Arc<LockStats>>) {
    let stats = guard.dep.take().map(|dep| {
        let stats = Arc::clone(&dep.stats);
        dep.release();
        stats
    });
    let inner = guard.inner.take();
    match inner {
        Some(g) => (g, stats),
        // lint: allow(panic) — unreachable: every constructed guard holds
        // its std guard until dismantled exactly once, right here.
        None => unreachable!("MutexGuard dismantled twice"),
    }
}

/// Rebuild the wrapper guard after a condvar wait re-acquired the mutex.
/// The held entry is re-pushed without an order check or acquisition
/// count — logically this is the same acquisition resuming.
fn reassemble<'a, T: ?Sized>(
    inner: std::sync::MutexGuard<'a, T>,
    stats: Option<Arc<LockStats>>,
) -> MutexGuard<'a, T> {
    MutexGuard {
        dep: stats.map(|s| Dep::reacquired(&s)),
        inner: Some(inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned mutex still hands out its guard.
        assert_eq!(*m.lock(), 7);
    }

    /// Run `f` on its own thread (each thread gets a clean held stack)
    /// and return its panic message, if it panicked.
    fn panic_message(f: impl FnOnce() + Send + 'static) -> Option<String> {
        let err = std::thread::spawn(f).join().err()?;
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()));
        Some(msg.unwrap_or_else(|| "<non-string panic>".into()))
    }

    #[test]
    fn increasing_leveled_acquisition_is_clean() {
        let ok = std::thread::spawn(|| {
            let low = Mutex::new_leveled(101, "t.ok.low", 0);
            let high = Mutex::new_leveled(102, "t.ok.high", 0);
            let _a = low.lock();
            let _b = high.lock();
            held_count()
        })
        .join()
        .expect("increasing order must not panic");
        assert_eq!(ok, 2);
    }

    #[test]
    fn inversion_panics_with_both_lock_names() {
        let msg = panic_message(|| {
            let low = Mutex::new_leveled(111, "t.inv.low", 0);
            let high = Mutex::new_leveled(112, "t.inv.high", 0);
            let _b = high.lock();
            let _a = low.lock(); // 111 <= 112: inversion
        })
        .expect("inversion must panic under cfg(test)");
        assert!(msg.contains("t.inv.low"), "{msg}");
        assert!(msg.contains("t.inv.high"), "{msg}");
        assert!(msg.contains("level 111"), "{msg}");
        assert!(msg.contains("level 112"), "{msg}");
        // The violation was counted before the panic.
        let snap = lock_stats();
        let s = snap.iter().find(|s| s.name == "t.inv.low").unwrap();
        assert_eq!(s.violations, 1);
    }

    #[test]
    fn rwlock_inversion_panics_too() {
        let msg = panic_message(|| {
            let low = RwLock::new_leveled(121, "t.rwinv.low", 0);
            let high = Mutex::new_leveled(122, "t.rwinv.high", 0);
            let _b = high.lock();
            let _a = low.read();
        })
        .expect("read-side inversion must panic");
        assert!(msg.contains("t.rwinv.low"), "{msg}");
    }

    #[test]
    fn same_level_reacquisition_is_reported() {
        let msg = panic_message(|| {
            let a = Mutex::new_leveled(131, "t.same.a", 0);
            let b = Mutex::new_leveled(131, "t.same.b", 0);
            let _a = a.lock();
            let _b = b.lock(); // equal level: self-deadlock class
        })
        .expect("same-level re-entry must be reported");
        assert!(msg.contains("t.same.a"), "{msg}");
        assert!(msg.contains("t.same.b"), "{msg}");
    }

    #[test]
    fn drop_order_release_keeps_stack_consistent() {
        std::thread::spawn(|| {
            let a = Mutex::new_leveled(141, "t.ooo.a", 0);
            let b = Mutex::new_leveled(142, "t.ooo.b", 0);
            let ga = a.lock();
            let gb = b.lock();
            drop(ga); // out-of-stack-order release
            assert_eq!(held_count(), 1);
            drop(gb);
            assert_eq!(held_count(), 0);
            // With the stack empty, level 141 is acquirable again.
            let _ = a.lock();
        })
        .join()
        .expect("out-of-order guard drops must not corrupt the stack");
    }

    #[test]
    fn failed_try_lock_leaves_held_stack_clean() {
        let m = Arc::new(Mutex::new_leveled(151, "t.try.m", 0));
        let m2 = Arc::clone(&m);
        let (locked_tx, locked_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            let _g = m2.lock();
            locked_tx.send(()).unwrap();
            done_rx.recv().unwrap();
        });
        locked_rx.recv().unwrap();
        std::thread::spawn(move || {
            assert!(m.try_lock().is_none(), "lock is held elsewhere");
            assert_eq!(held_count(), 0, "failed try_lock must not push");
            // Stack is clean: a *lower* level than the failed attempt's
            // acquires without tripping the order check.
            let low = Mutex::new_leveled(150, "t.try.low", 0);
            let _g = low.lock();
        })
        .join()
        .expect("failed try_lock must leave the held stack clean");
        done_tx.send(()).unwrap();
        holder.join().unwrap();
    }

    #[test]
    fn successful_try_lock_pushes_and_pops() {
        std::thread::spawn(|| {
            let m = Mutex::new_leveled(161, "t.tryok.m", 0);
            let g = m.try_lock().unwrap();
            assert_eq!(held_count(), 1);
            drop(g);
            assert_eq!(held_count(), 0);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn condvar_wait_pops_and_repushes_held_entry() {
        let m = Arc::new(Mutex::new_leveled(171, "t.cv.m", false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(g);
            }
            // Re-pushed after the wait: still counted as held.
            assert_eq!(held_count(), 1);
            drop(g);
            assert_eq!(held_count(), 0);
        });
        // Let the waiter park, then flip the flag.
        std::thread::sleep(std::time::Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        waiter
            .join()
            .expect("condvar waiter must see clean lockdep");
    }

    #[test]
    fn stats_record_acquisitions_and_contention() {
        let m = Arc::new(Mutex::new_leveled(181, "t.stats.m", 0u64));
        {
            let _g = m.lock();
        }
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let blocked = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g += 1;
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(g);
        blocked.join().unwrap();
        let snap = lock_stats();
        let s = snap.iter().find(|s| s.name == "t.stats.m").unwrap();
        assert!(s.acquisitions >= 3, "{s:?}");
        assert!(s.contended >= 1, "{s:?}");
        assert!(s.total_wait_ns > 0, "{s:?}");
        assert!(s.max_hold_ns > 0, "{s:?}");
        assert_eq!(s.violations, 0, "{s:?}");
        assert_eq!(s.level, 181);
    }

    #[test]
    fn instances_sharing_a_name_share_one_stats_entry() {
        let a = Mutex::new_leveled(191, "t.shared.name", 0);
        let b = Mutex::new_leveled(191, "t.shared.name", 0);
        let before = lock_stats()
            .iter()
            .find(|s| s.name == "t.shared.name")
            .map(|s| s.acquisitions)
            .unwrap_or(0);
        drop(a.lock());
        drop(b.lock());
        let after = lock_stats()
            .iter()
            .find(|s| s.name == "t.shared.name")
            .map(|s| s.acquisitions)
            .unwrap();
        assert_eq!(after, before + 2);
        assert_eq!(
            lock_stats()
                .iter()
                .filter(|s| s.name == "t.shared.name")
                .count(),
            1
        );
    }

    #[test]
    fn prometheus_rendering_has_lock_series() {
        let m = Mutex::new_leveled(201, "t.prom.m", 0);
        drop(m.lock());
        let text = render_lock_stats_prometheus();
        assert!(text.contains("# TYPE cstore_lock_acquisitions_total counter"));
        assert!(text.contains("cstore_lock_acquisitions_total{lock=\"t.prom.m\",level=\"201\"}"));
        assert!(text.contains("cstore_lock_violations_total{lock=\"t.prom.m\",level=\"201\"} 0"));
    }
}
