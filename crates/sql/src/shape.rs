//! Query-shape normalization for the Query Store.
//!
//! Two statements have the same *shape* when they differ only in literal
//! values: `SELECT a FROM t WHERE x = 5` and `select a from t where
//! x = 17` normalize to the identical template `select a from t where
//! x = ?`, and therefore the same 64-bit shape hash. Normalization works
//! at the lexer level — no parse or bind is needed, so even statements
//! the parser rejects still get a stable hash (from their raw text) and
//! can be aggregated as failures.

use crate::lexer::{tokenize, Token};
use cstore_common::hash::hash_bytes;

/// Longest normalized text kept for display; the hash always covers the
/// full text, so truncation never merges distinct shapes.
const MAX_SHAPE_TEXT: usize = 256;

/// A normalized query shape: the stable 64-bit hash plus the
/// parameterized template text it was computed from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryShape {
    pub hash: u64,
    pub text: String,
}

fn push_token(out: &mut String, t: &Token) {
    if !out.is_empty() {
        out.push(' ');
    }
    match t {
        Token::Ident(s) => out.push_str(&s.to_ascii_lowercase()),
        Token::Int(_) | Token::Float(_) | Token::Str(_) => out.push('?'),
        Token::LParen => out.push('('),
        Token::RParen => out.push(')'),
        Token::Comma => out.push(','),
        Token::Dot => out.push('.'),
        Token::Star => out.push('*'),
        Token::Plus => out.push('+'),
        Token::Minus => out.push('-'),
        Token::Slash => out.push('/'),
        Token::Eq => out.push('='),
        Token::Ne => out.push_str("<>"),
        Token::Lt => out.push('<'),
        Token::Le => out.push_str("<="),
        Token::Gt => out.push('>'),
        Token::Ge => out.push_str(">="),
        Token::Semi => out.push(';'),
    }
}

/// Normalize `sql` to its shape: literals become `?` placeholders,
/// identifiers and keywords are lowercased, whitespace and comments
/// vanish. Statements the lexer rejects fall back to hashing the
/// trimmed, lowercased raw text (still deterministic, still groupable).
pub fn query_shape(sql: &str) -> QueryShape {
    let text = match tokenize(sql) {
        Ok(tokens) => {
            let mut out = String::with_capacity(sql.len());
            for t in &tokens {
                push_token(&mut out, t);
            }
            out
        }
        Err(_) => {
            let collapsed: Vec<&str> = sql.split_whitespace().collect();
            collapsed.join(" ").to_ascii_lowercase()
        }
    };
    let hash = hash_bytes(text.as_bytes());
    let mut display = text;
    if display.len() > MAX_SHAPE_TEXT {
        display.truncate(MAX_SHAPE_TEXT);
        display.push('…');
    }
    QueryShape {
        hash,
        text: display,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_case_do_not_change_the_shape() {
        let a = query_shape("SELECT a FROM t WHERE x = 5 AND s = 'abc'");
        let b = query_shape("select  a from T where X = 99 and s='zz' -- c");
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.text, "select a from t where x = ? and s = ?");
    }

    #[test]
    fn different_structure_different_shape() {
        let a = query_shape("SELECT a FROM t WHERE x = 5");
        let b = query_shape("SELECT a FROM t WHERE y = 5");
        let c = query_shape("SELECT a FROM t");
        assert_ne!(a.hash, b.hash);
        assert_ne!(a.hash, c.hash);
    }

    #[test]
    fn float_and_int_literals_normalize_alike() {
        let a = query_shape("SELECT * FROM t WHERE x > 1.5");
        let b = query_shape("SELECT * FROM t WHERE x > 2");
        assert_eq!(a.hash, b.hash, "both are `x > ?`");
    }

    #[test]
    fn unlexable_text_still_hashes_deterministically() {
        let a = query_shape("SELECT # broken");
        let b = query_shape("select   # BROKEN");
        assert_eq!(a.hash, b.hash);
        assert!(!a.text.is_empty());
    }

    #[test]
    fn long_shapes_truncate_display_but_not_hash() {
        let cols: Vec<String> = (0..100).map(|i| format!("col_{i}")).collect();
        let q1 = format!("SELECT {} FROM t WHERE a = 1", cols.join(", "));
        let q2 = format!("SELECT {} FROM t WHERE a = 2", cols.join(", "));
        let s1 = query_shape(&q1);
        let s2 = query_shape(&q2);
        assert!(s1.text.chars().count() <= MAX_SHAPE_TEXT + 1);
        assert_eq!(s1.hash, s2.hash);
    }
}
