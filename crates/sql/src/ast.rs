//! Abstract syntax tree for the supported SQL subset.

use cstore_common::{DataType, Value};
use cstore_exec::ops::hash_join::JoinType;
use cstore_storage::pred::CmpOp;

/// Binary operators in expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Cmp(CmpOp),
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

/// An unbound expression.
#[derive(Clone, Debug, PartialEq)]
pub enum AstExpr {
    /// `[table.]column`
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Lit(Value),
    Binary {
        op: BinaryOp,
        lhs: Box<AstExpr>,
        rhs: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    Neg(Box<AstExpr>),
    Between {
        expr: Box<AstExpr>,
        negated: bool,
        lo: Box<AstExpr>,
        hi: Box<AstExpr>,
    },
    InList {
        expr: Box<AstExpr>,
        negated: bool,
        list: Vec<AstExpr>,
    },
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    Like {
        expr: Box<AstExpr>,
        negated: bool,
        pattern: String,
    },
    /// `FUNC(arg)` / `COUNT(*)` / `COUNT(DISTINCT arg)`
    FuncCall {
        name: String,
        arg: Option<Box<AstExpr>>,
        star: bool,
        distinct: bool,
    },
}

/// An item in the SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    Wildcard,
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// A base table reference with optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table binds to in scopes.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One JOIN clause.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinClause {
    pub join_type: JoinType,
    pub table: TableRef,
    pub on: AstExpr,
}

/// A SELECT statement.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
    pub offset: usize,
}

/// One ORDER BY item: an output-column reference and direction.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    pub expr: AstExpr,
    pub descending: bool,
}

/// A column definition in CREATE TABLE.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

/// Storage organization of a created table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TableOrganization {
    /// Clustered columnstore index (the default, as in the paper's release
    /// for warehouse tables).
    #[default]
    Columnstore,
    /// Row-store heap (the baseline).
    Heap,
}

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `SELECT … UNION ALL SELECT …` — ORDER BY/LIMIT of the final branch
    /// apply to the whole union (standard SQL).
    UnionAll(Vec<SelectStmt>),
    Insert {
        table: String,
        rows: Vec<Vec<AstExpr>>,
    },
    Delete {
        table: String,
        selection: Option<AstExpr>,
    },
    Update {
        table: String,
        assignments: Vec<(String, AstExpr)>,
        selection: Option<AstExpr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        organization: TableOrganization,
    },
    /// `ANALYZE <table>`: sample rows and cache histogram statistics.
    Analyze {
        table: String,
    },
    /// `SET <option> = <value>`: session options. Numeric options take
    /// an integer (e.g. `SET query_timeout_ms = 500`; `0` clears);
    /// enumerated options take a bare name (e.g. `SET wal_sync = group`).
    Set {
        option: String,
        value: SetValue,
    },
    /// `EXPLAIN [ANALYZE] <statement>`: with ANALYZE the statement is
    /// executed and the plan is annotated with per-operator actuals.
    Explain {
        analyze: bool,
        stmt: Box<Statement>,
    },
    /// `BEGIN [TRANSACTION | WORK]`: open an explicit transaction.
    Begin,
    /// `COMMIT [TRANSACTION | WORK]`: commit the open transaction.
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]`: abort the open transaction.
    Rollback,
}

/// A `SET` option value: an integer, or a bare name for enumerated
/// options (`SET wal_sync = group`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetValue {
    Int(i64),
    Name(String),
}
