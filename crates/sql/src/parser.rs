//! Recursive-descent SQL parser.

use cstore_common::{DataType, Error, Result, Value};
use cstore_exec::ops::hash_join::JoinType;
use cstore_storage::pred::CmpOp;

use crate::ast::*;
use crate::lexer::{tokenize, Token};

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let stmt = p.statement()?;
    p.eat_if(|t| *t == Token::Semi);
    if !p.at_end() {
        return Err(Error::Sql(format!(
            "unexpected trailing tokens at {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

/// Maximum expression nesting depth. Recursive-descent parsing uses a
/// stack frame chain per nesting level; unbounded input could otherwise
/// overflow the thread stack.
const MAX_EXPR_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Sql("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Sql(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_if(&mut self, f: impl Fn(&Token) -> bool) -> bool {
        if self.peek().is_some_and(f) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        if self.eat_if(|x| *x == t) {
            Ok(())
        } else {
            Err(Error::Sql(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(Error::Sql(format!("expected identifier, found {other:?}"))),
        }
    }

    // ------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            // `EXPLAIN ANALYZE <ident>` is the statistics command
            // `ANALYZE <table>` being explained, not EXPLAIN ANALYZE —
            // keywords lex as idents, so exclude statement starters.
            let starts_statement = ["SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "EXPLAIN"]
                .iter()
                .any(|kw| self.peek().is_some_and(|t| t.is_kw(kw)));
            if analyze && !starts_statement && matches!(self.peek(), Some(Token::Ident(_))) {
                return Ok(Statement::Explain {
                    analyze: false,
                    stmt: Box::new(Statement::Analyze {
                        table: self.ident()?,
                    }),
                });
            }
            return Ok(Statement::Explain {
                analyze,
                stmt: Box::new(self.statement()?),
            });
        }
        if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
            let first = self.select()?;
            if !self.peek().is_some_and(|t| t.is_kw("UNION")) {
                return Ok(Statement::Select(first));
            }
            let mut branches = vec![first];
            while self.eat_kw("UNION") {
                self.expect_kw("ALL")?;
                branches.push(self.select()?);
            }
            // Non-final branches must not carry their own ordering.
            for b in &branches[..branches.len() - 1] {
                if !b.order_by.is_empty() || b.limit.is_some() || b.offset != 0 {
                    return Err(Error::Sql(
                        "ORDER BY/LIMIT must follow the final UNION ALL branch".into(),
                    ));
                }
            }
            return Ok(Statement::UnionAll(branches));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("CREATE") {
            return self.create_table();
        }
        if self.eat_kw("ANALYZE") {
            let table = self.ident()?;
            return Ok(Statement::Analyze { table });
        }
        if self.eat_kw("SET") {
            let option = self.ident()?;
            self.expect(Token::Eq)?;
            let value = match self.next()? {
                Token::Int(n) => SetValue::Int(n),
                Token::Ident(name) => SetValue::Name(name),
                other => {
                    return Err(Error::Sql(format!(
                        "SET {option} expects an integer or name value, found {other:?}"
                    )))
                }
            };
            return Ok(Statement::Set { option, value });
        }
        if self.eat_kw("BEGIN") {
            self.eat_txn_noise();
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            self.eat_txn_noise();
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            self.eat_txn_noise();
            return Ok(Statement::Rollback);
        }
        Err(Error::Sql(format!(
            "expected a statement, found {:?}",
            self.peek()
        )))
    }

    /// Optional `TRANSACTION` / `WORK` noise word after BEGIN/COMMIT/
    /// ROLLBACK, per the usual SQL grammars.
    fn eat_txn_noise(&mut self) {
        if !self.eat_kw("TRANSACTION") {
            // lint: allow(discard) — pure noise word, present or not
            let _ = self.eat_kw("WORK");
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut stmt = SelectStmt {
            distinct: self.eat_kw("DISTINCT"),
            ..SelectStmt::default()
        };
        loop {
            if self.eat_if(|t| *t == Token::Star) {
                stmt.items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                self.eat_kw("AS");
                let alias = if matches!(self.peek(), Some(Token::Ident(s)) if !is_keyword(s)) {
                    Some(self.ident()?)
                } else {
                    None
                };
                stmt.items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(|t| *t == Token::Comma) {
                break;
            }
        }
        if self.eat_kw("FROM") {
            stmt.from = Some(self.table_ref()?);
            loop {
                let join_type = if self.eat_kw("JOIN") || {
                    let inner = self.eat_kw("INNER");
                    if inner {
                        self.expect_kw("JOIN")?;
                    }
                    inner
                } {
                    JoinType::Inner
                } else if self.eat_kw("LEFT") {
                    self.eat_kw("OUTER");
                    if self.eat_kw("SEMI") {
                        self.expect_kw("JOIN")?;
                        JoinType::LeftSemi
                    } else if self.eat_kw("ANTI") {
                        self.expect_kw("JOIN")?;
                        JoinType::LeftAnti
                    } else {
                        self.expect_kw("JOIN")?;
                        JoinType::LeftOuter
                    }
                } else if self.eat_kw("RIGHT") {
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinType::RightOuter
                } else if self.eat_kw("FULL") {
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinType::FullOuter
                } else {
                    break;
                };
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                stmt.joins.push(JoinClause {
                    join_type,
                    table,
                    on,
                });
            }
        }
        if self.eat_kw("WHERE") {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat_if(|t| *t == Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                stmt.order_by.push(OrderItem { expr, descending });
                if !self.eat_if(|t| *t == Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => stmt.limit = Some(n as usize),
                other => return Err(Error::Sql(format!("bad LIMIT {other:?}"))),
            }
        }
        if self.eat_kw("OFFSET") {
            match self.next()? {
                Token::Int(n) if n >= 0 => stmt.offset = n as usize,
                other => return Err(Error::Sql(format!("bad OFFSET {other:?}"))),
            }
        }
        Ok(stmt)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut name = self.ident()?;
        // Schema-qualified names (`sys.row_groups`) resolve as a single
        // dotted catalog name.
        if self.eat_if(|t| *t == Token::Dot) {
            name = format!("{name}.{}", self.ident()?);
        }
        self.eat_kw("AS");
        let alias = if matches!(self.peek(), Some(Token::Ident(s)) if !is_keyword(s)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_if(|t| *t == Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            rows.push(row);
            if !self.eat_if(|t| *t == Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, selection })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(Token::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_if(|t| *t == Token::Comma) {
                break;
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            selection,
        })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let data_type = self.data_type()?;
            let nullable = if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                false
            } else {
                self.eat_kw("NULL");
                true
            };
            columns.push(ColumnDef {
                name: col,
                data_type,
                nullable,
            });
            if !self.eat_if(|t| *t == Token::Comma) {
                break;
            }
        }
        self.expect(Token::RParen)?;
        let organization = if self.eat_kw("USING") {
            let org = self.ident()?;
            match org.to_ascii_uppercase().as_str() {
                "COLUMNSTORE" => TableOrganization::Columnstore,
                "HEAP" => TableOrganization::Heap,
                other => {
                    return Err(Error::Sql(format!(
                        "unknown table organization '{other}' (expected COLUMNSTORE or HEAP)"
                    )))
                }
            }
        } else {
            TableOrganization::default()
        };
        Ok(Statement::CreateTable {
            name,
            columns,
            organization,
        })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?.to_ascii_uppercase();
        Ok(match name.as_str() {
            "BOOL" | "BOOLEAN" => DataType::Bool,
            "INT" | "INTEGER" => DataType::Int32,
            "BIGINT" => DataType::Int64,
            "DOUBLE" | "FLOAT" | "REAL" => DataType::Float64,
            "DATE" => DataType::Date,
            "VARCHAR" | "TEXT" | "STRING" => {
                // Optional length: VARCHAR(40) — parsed and ignored.
                if self.eat_if(|t| *t == Token::LParen) {
                    self.next()?;
                    self.expect(Token::RParen)?;
                }
                DataType::Utf8
            }
            "DECIMAL" | "NUMERIC" => {
                let mut scale = 2u8;
                if self.eat_if(|t| *t == Token::LParen) {
                    // DECIMAL(precision, scale) — precision ignored.
                    let first = self.next()?;
                    if self.eat_if(|t| *t == Token::Comma) {
                        match self.next()? {
                            Token::Int(s) if (0..=18).contains(&s) => scale = s as u8,
                            other => {
                                return Err(Error::Sql(format!("bad decimal scale {other:?}")))
                            }
                        }
                    } else if let Token::Int(s) = first {
                        if (0..=18).contains(&s) {
                            scale = s as u8;
                        }
                    }
                    self.expect(Token::RParen)?;
                }
                DataType::Decimal { scale }
            }
            other => return Err(Error::Sql(format!("unknown type '{other}'"))),
        })
    }

    // ------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<AstExpr> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(Error::Sql(format!(
                "expression nesting deeper than {MAX_EXPR_DEPTH} levels"
            )));
        }
        let out = self.or_expr();
        self.depth -= 1;
        out
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = AstExpr::Binary {
                op: BinaryOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = AstExpr::Binary {
                op: BinaryOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw("NOT") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<AstExpr> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] BETWEEN / IN
        let negated = self.eat_kw("NOT");
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            return Ok(AstExpr::Between {
                expr: Box::new(lhs),
                negated,
                lo: Box::new(lo),
                hi: Box::new(hi),
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.next()? {
                Token::Str(p) => p,
                other => {
                    return Err(Error::Sql(format!(
                        "LIKE expects a string pattern, found {other:?}"
                    )))
                }
            };
            return Ok(AstExpr::Like {
                expr: Box::new(lhs),
                negated,
                pattern,
            });
        }
        if self.eat_kw("IN") {
            self.expect(Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_if(|t| *t == Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(lhs),
                negated,
                list,
            });
        }
        if negated {
            return Err(Error::Sql("expected BETWEEN, IN or LIKE after NOT".into()));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Ne) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(AstExpr::Binary {
                op: BinaryOp::Cmp(op),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = AstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = AstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr> {
        if self.eat_if(|t| *t == Token::Minus) {
            return Ok(AstExpr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.next()? {
            Token::Int(n) => Ok(AstExpr::Lit(Value::Int64(n))),
            Token::Float(f) => Ok(AstExpr::Lit(Value::Float64(f))),
            Token::Str(s) => Ok(AstExpr::Lit(Value::str(s))),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(AstExpr::Lit(Value::Null)),
                    "TRUE" => return Ok(AstExpr::Lit(Value::Bool(true))),
                    "FALSE" => return Ok(AstExpr::Lit(Value::Bool(false))),
                    "DATE" => {
                        // DATE n → Date literal from day number.
                        if let Some(Token::Int(_)) = self.peek() {
                            if let Token::Int(d) = self.next()? {
                                return Ok(AstExpr::Lit(Value::Date(d as i32)));
                            }
                        }
                    }
                    _ => {}
                }
                // Function call?
                if self.peek() == Some(&Token::LParen)
                    && matches!(upper.as_str(), "COUNT" | "SUM" | "MIN" | "MAX" | "AVG")
                {
                    self.pos += 1; // (
                    if upper == "COUNT" && self.eat_if(|t| *t == Token::Star) {
                        self.expect(Token::RParen)?;
                        return Ok(AstExpr::FuncCall {
                            name: upper,
                            arg: None,
                            star: true,
                            distinct: false,
                        });
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    if distinct && upper != "COUNT" {
                        return Err(Error::Sql(format!(
                            "DISTINCT is only supported in COUNT(DISTINCT …), not {upper}()"
                        )));
                    }
                    let arg = self.expr()?;
                    self.expect(Token::RParen)?;
                    return Ok(AstExpr::FuncCall {
                        name: upper,
                        arg: Some(Box::new(arg)),
                        star: false,
                        distinct,
                    });
                }
                // Reserved words cannot start a column reference.
                if is_keyword(&name) {
                    return Err(Error::Sql(format!(
                        "unexpected keyword '{name}' in expression"
                    )));
                }
                // Qualified column?
                if self.eat_if(|t| *t == Token::Dot) {
                    let col = self.ident()?;
                    return Ok(AstExpr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(AstExpr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(Error::Sql(format!("unexpected token {other:?}"))),
        }
    }
}

/// Keywords that terminate alias positions.
fn is_keyword(s: &str) -> bool {
    const KEYWORDS: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "LIMIT",
        "OFFSET",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "OUTER",
        "SEMI",
        "ANTI",
        "ON",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "BETWEEN",
        "INSERT",
        "INTO",
        "VALUES",
        "DELETE",
        "UPDATE",
        "SET",
        "CREATE",
        "TABLE",
        "USING",
        "EXPLAIN",
        "ASC",
        "DESC",
        "UNION",
        "ALL",
        "DISTINCT",
        "ANALYZE",
        "LIKE",
        "BEGIN",
        "COMMIT",
        "ROLLBACK",
        "TRANSACTION",
        "WORK",
    ];
    KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse("SELECT a, b AS bee FROM t WHERE a > 5 ORDER BY bee DESC LIMIT 10 OFFSET 2")
            .unwrap();
        let Statement::Select(s) = s else { panic!() };
        assert_eq!(s.items.len(), 2);
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].descending);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, 2);
    }

    #[test]
    fn parses_joins() {
        let s = parse(
            "SELECT * FROM fact f \
             JOIN dim1 ON f.k1 = dim1.k \
             LEFT JOIN dim2 d2 ON f.k2 = d2.k \
             RIGHT OUTER JOIN dim3 ON f.k3 = dim3.k \
             LEFT SEMI JOIN dim4 ON f.k4 = dim4.k",
        )
        .unwrap();
        let Statement::Select(s) = s else { panic!() };
        assert_eq!(s.from.as_ref().unwrap().binding(), "f");
        let kinds: Vec<JoinType> = s.joins.iter().map(|j| j.join_type).collect();
        assert_eq!(
            kinds,
            vec![
                JoinType::Inner,
                JoinType::LeftOuter,
                JoinType::RightOuter,
                JoinType::LeftSemi
            ]
        );
    }

    #[test]
    fn parses_aggregates_and_groups() {
        let s = parse("SELECT cat, COUNT(*), SUM(x + 1) FROM t GROUP BY cat HAVING COUNT(*) > 2")
            .unwrap();
        let Statement::Select(s) = s else { panic!() };
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr {
                expr: AstExpr::FuncCall { star: true, .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_predicates() {
        let s = parse(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IN ('x', 'y') \
             AND c IS NOT NULL AND NOT d = 4",
        )
        .unwrap();
        let Statement::Select(s) = s else { panic!() };
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_dml_and_ddl() {
        let s = parse("INSERT INTO t VALUES (1, 'a'), (2, NULL)").unwrap();
        let Statement::Insert { rows, .. } = s else {
            panic!()
        };
        assert_eq!(rows.len(), 2);

        let s = parse("DELETE FROM t WHERE a = 1").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                selection: Some(_),
                ..
            }
        ));

        let s = parse("UPDATE t SET a = a + 1, b = 'x' WHERE c < 0").unwrap();
        let Statement::Update { assignments, .. } = s else {
            panic!()
        };
        assert_eq!(assignments.len(), 2);

        let s = parse(
            "CREATE TABLE sales (id BIGINT NOT NULL, qty INT, price DECIMAL(10, 2), \
             note VARCHAR(40)) USING COLUMNSTORE",
        )
        .unwrap();
        let Statement::CreateTable {
            columns,
            organization,
            ..
        } = s
        else {
            panic!()
        };
        assert_eq!(columns.len(), 4);
        assert_eq!(columns[2].data_type, DataType::Decimal { scale: 2 });
        assert!(!columns[0].nullable);
        assert!(columns[1].nullable);
        assert_eq!(organization, TableOrganization::Columnstore);
    }

    #[test]
    fn parses_explain() {
        let s = parse("EXPLAIN SELECT 1").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: false, .. }));
        let s = parse("EXPLAIN ANALYZE SELECT 1").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
    }

    #[test]
    fn precedence_is_sane() {
        // a + b * 2 parses as a + (b * 2)
        let s = parse("SELECT a + b * 2 FROM t").unwrap();
        let Statement::Select(s) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        let AstExpr::Binary {
            op: BinaryOp::Add,
            rhs,
            ..
        } = expr
        else {
            panic!("expected +, got {expr:?}")
        };
        assert!(matches!(
            rhs.as_ref(),
            AstExpr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELEC 1").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("SELECT 1 extra garbage ,").is_err());
        assert!(parse("CREATE TABLE t (a WIDGET)").is_err());
    }

    #[test]
    fn parses_transaction_statements() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("begin transaction").unwrap(), Statement::Begin);
        assert_eq!(parse("BEGIN WORK").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("commit work").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
        assert_eq!(parse("rollback transaction").unwrap(), Statement::Rollback);
    }

    #[test]
    fn rejects_malformed_transaction_statements() {
        // Trailing junk after the optional noise word must not parse.
        assert!(parse("BEGIN TRANSACTION NOW").is_err());
        assert!(parse("COMMIT 5").is_err());
        assert!(parse("ROLLBACK TO SAVEPOINT s").is_err());
    }
}
