//! Binding: names → ordinals, AST → logical plan.

use cstore_common::{DataType, Error, Result, Schema, Value};
use cstore_exec::ops::hash_agg::{AggExpr, AggFunc};
use cstore_exec::ops::hash_join::JoinType;
use cstore_exec::{ArithOp, Expr};
use cstore_planner::logical::{LogicalPlan, LogicalSortKey};
use cstore_planner::CatalogProvider;
use cstore_storage::pred::CmpOp;

use crate::ast::*;

/// One visible column while binding: `(qualifier, name)`.
#[derive(Clone, Debug)]
struct ScopeCol {
    qualifier: String,
    name: String,
}

/// The set of visible columns (aligned with plan output ordinals).
struct Scope {
    cols: Vec<ScopeCol>,
    types: Vec<DataType>,
}

impl Scope {
    fn from_schema(qualifier: &str, schema: &Schema) -> Scope {
        Scope {
            cols: schema
                .fields()
                .iter()
                .map(|f| ScopeCol {
                    qualifier: qualifier.to_owned(),
                    name: f.name.clone(),
                })
                .collect(),
            types: schema.fields().iter().map(|f| f.data_type).collect(),
        }
    }

    fn concat(mut self, other: Scope) -> Scope {
        self.cols.extend(other.cols);
        self.types.extend(other.types);
        self
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name.eq_ignore_ascii_case(name)
                    && qualifier.is_none_or(|q| c.qualifier.eq_ignore_ascii_case(q))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [one] => Ok(*one),
            [] => Err(Error::Catalog(format!(
                "unknown column '{}{name}'",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            _ => Err(Error::Sql(format!("ambiguous column '{name}'"))),
        }
    }
}

/// Bind a SELECT statement to a logical plan.
pub fn bind_select(stmt: &SelectStmt, catalog: &dyn CatalogProvider) -> Result<LogicalPlan> {
    let from = stmt
        .from
        .as_ref()
        .ok_or_else(|| Error::Unsupported("SELECT without FROM".into()))?;
    let (mut plan, mut scope) = bind_table(from, catalog)?;

    // Joins.
    for join in &stmt.joins {
        let (right_plan, right_scope) = bind_table(&join.table, catalog)?;
        let _left_arity = scope.cols.len();
        // Split ON into equi-key pairs and residual conjuncts.
        let mut conjuncts = Vec::new();
        split_ast_conjuncts(&join.on, &mut conjuncts);
        let mut on_left = Vec::new();
        let mut on_right = Vec::new();
        let mut residual = Vec::new();
        for c in conjuncts {
            if let AstExpr::Binary {
                op: BinaryOp::Cmp(CmpOp::Eq),
                lhs,
                rhs,
            } = &c
            {
                let l_in_left = try_resolve(lhs, &scope);
                let r_in_right = try_resolve(rhs, &right_scope);
                if let (Some(l), Some(r)) = (l_in_left, r_in_right) {
                    on_left.push(l);
                    on_right.push(r);
                    continue;
                }
                let l_in_right = try_resolve(lhs, &right_scope);
                let r_in_left = try_resolve(rhs, &scope);
                if let (Some(r), Some(l)) = (l_in_right, r_in_left) {
                    on_left.push(l);
                    on_right.push(r);
                    continue;
                }
            }
            residual.push(c);
        }
        if on_left.is_empty() {
            return Err(Error::Unsupported(
                "join requires at least one equality condition".into(),
            ));
        }
        if !residual.is_empty() && join.join_type != JoinType::Inner {
            return Err(Error::Unsupported(
                "non-equality ON conditions are only supported for INNER JOIN".into(),
            ));
        }
        let joined_scope = match join.join_type {
            JoinType::LeftSemi | JoinType::LeftAnti => Scope {
                cols: scope.cols.clone(),
                types: scope.types.clone(),
            },
            _ => Scope {
                cols: scope.cols.clone(),
                types: scope.types.clone(),
            }
            .concat(right_scope),
        };
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right_plan),
            join_type: join.join_type,
            on_left,
            on_right,
        };
        scope = joined_scope;
        if !residual.is_empty() {
            let pred = bind_conjunction(&residual, &scope)?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: pred,
            };
        }
    }

    // WHERE.
    if let Some(w) = &stmt.where_clause {
        let predicate = bind_expr(w, &scope)?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    // Aggregation?
    let has_aggs = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => contains_agg(expr),
        SelectItem::Wildcard => false,
    }) || stmt.having.as_ref().is_some_and(contains_agg);
    if !stmt.group_by.is_empty() || has_aggs {
        return bind_grouped(stmt, plan, scope, catalog);
    }

    // Plain projection.
    let (exprs, names) = bind_select_items(&stmt.items, &scope)?;
    plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        names: names.clone(),
    };
    if stmt.distinct {
        plan = distinct_over(plan, &names)?;
    }
    bind_order_limit(stmt, plan, &names)
}

/// `SELECT DISTINCT`: group by every output column, no aggregates.
fn distinct_over(plan: LogicalPlan, names: &[String]) -> Result<LogicalPlan> {
    let arity = plan.arity()?;
    Ok(LogicalPlan::Aggregate {
        input: Box::new(plan),
        group_by: (0..arity).map(Expr::col).collect(),
        aggs: vec![],
        names: names.to_vec(),
    })
}

/// Bind a UNION ALL chain; the final branch's ORDER BY/LIMIT apply to the
/// whole union.
pub fn bind_union(branches: &[SelectStmt], catalog: &dyn CatalogProvider) -> Result<LogicalPlan> {
    assert!(branches.len() >= 2, "parser guarantees ≥2 branches");
    let (last, init) = branches.split_last().expect("non-empty");
    // Bind the last branch without its ordering, then re-apply it on top.
    let mut bare_last = last.clone();
    bare_last.order_by = vec![];
    bare_last.limit = None;
    bare_last.offset = 0;
    let mut inputs = Vec::with_capacity(branches.len());
    for b in init {
        inputs.push(bind_select(b, catalog)?);
    }
    inputs.push(bind_select(&bare_last, catalog)?);
    let first_fields = inputs[0].output_fields()?;
    let names: Vec<String> = first_fields.iter().map(|f| f.name.clone()).collect();
    let first_types: Vec<DataType> = first_fields.iter().map(|f| f.data_type).collect();
    for (i, p) in inputs.iter().enumerate().skip(1) {
        let types = p.output_types()?;
        if types != first_types {
            return Err(Error::Type(format!(
                "UNION ALL branch {} has column types {types:?}, expected {first_types:?}",
                i + 1
            )));
        }
    }
    let plan = LogicalPlan::UnionAll { inputs };
    bind_order_limit(last, plan, &names)
}

/// Bind FROM/JOIN table reference.
fn bind_table(t: &TableRef, catalog: &dyn CatalogProvider) -> Result<(LogicalPlan, Scope)> {
    let table = catalog
        .table(&t.name)
        .ok_or_else(|| Error::Catalog(format!("unknown table '{}'", t.name)))?;
    let schema = table.schema();
    let scope = Scope::from_schema(t.binding(), &schema);
    Ok((
        LogicalPlan::Scan {
            table: t.name.clone(),
            schema,
            projection: None,
            pushed: vec![],
        },
        scope,
    ))
}

fn split_ast_conjuncts(e: &AstExpr, out: &mut Vec<AstExpr>) {
    if let AstExpr::Binary {
        op: BinaryOp::And,
        lhs,
        rhs,
    } = e
    {
        split_ast_conjuncts(lhs, out);
        split_ast_conjuncts(rhs, out);
    } else {
        out.push(e.clone());
    }
}

fn try_resolve(e: &AstExpr, scope: &Scope) -> Option<usize> {
    if let AstExpr::Column { qualifier, name } = e {
        scope.resolve(qualifier.as_deref(), name).ok()
    } else {
        None
    }
}

fn bind_conjunction(conjuncts: &[AstExpr], scope: &Scope) -> Result<Expr> {
    let mut bound = conjuncts
        .iter()
        .map(|c| bind_expr(c, scope))
        .collect::<Result<Vec<_>>>()?;
    let mut acc = bound.pop().expect("non-empty conjunction");
    while let Some(e) = bound.pop() {
        acc = Expr::and(e, acc);
    }
    Ok(acc)
}

/// Coerce a comparison literal to the column type it is compared against.
/// Decimal columns need their literals rescaled to mantissas; genuinely
/// incompatible comparisons (string vs number) are rejected at bind time
/// instead of failing mid-query.
fn coerce_cmp_literal(v: &Value, col_ty: DataType) -> Result<Value> {
    if v.is_null() || v.fits(col_ty) {
        return Ok(v.clone());
    }
    if matches!(col_ty, DataType::Decimal { .. }) {
        return coerce(v.clone(), col_ty);
    }
    // Mixed numeric comparisons (int literal vs float column etc.) are
    // handled by the comparison kernels directly.
    let lit_numeric = matches!(
        v,
        Value::Int32(_) | Value::Int64(_) | Value::Float64(_) | Value::Decimal(_)
    );
    if lit_numeric && (col_ty.is_numeric() || col_ty == DataType::Date) {
        return Ok(v.clone());
    }
    Err(Error::Type(format!(
        "cannot compare a {col_ty} column with literal {v}"
    )))
}

/// If `bound` is a bare column, the type to coerce its comparands to.
fn col_type(bound: &Expr, scope: &Scope) -> Option<DataType> {
    match bound {
        Expr::Col(c) => scope.types.get(*c).copied(),
        _ => None,
    }
}

/// Bind an expression against a scope. Aggregate calls are rejected here;
/// grouped queries go through [`bind_grouped`].
fn bind_expr(e: &AstExpr, scope: &Scope) -> Result<Expr> {
    Ok(match e {
        AstExpr::Column { qualifier, name } => {
            Expr::col(scope.resolve(qualifier.as_deref(), name)?)
        }
        AstExpr::Lit(v) => Expr::Lit(v.clone()),
        AstExpr::Binary { op, lhs, rhs } => {
            let mut l = bind_expr(lhs, scope)?;
            let mut r = bind_expr(rhs, scope)?;
            if let BinaryOp::Cmp(_) = op {
                // Rescale literals compared against typed columns.
                if let (Some(ty), Expr::Lit(v)) = (col_type(&l, scope), &r) {
                    r = Expr::Lit(coerce_cmp_literal(v, ty)?);
                } else if let (Expr::Lit(v), Some(ty)) = (&l, col_type(&r, scope)) {
                    l = Expr::Lit(coerce_cmp_literal(v, ty)?);
                }
            }
            match op {
                BinaryOp::Cmp(c) => Expr::cmp(*c, l, r),
                BinaryOp::And => Expr::and(l, r),
                BinaryOp::Or => Expr::or(l, r),
                BinaryOp::Add => Expr::arith(ArithOp::Add, l, r),
                BinaryOp::Sub => Expr::arith(ArithOp::Sub, l, r),
                BinaryOp::Mul => Expr::arith(ArithOp::Mul, l, r),
                BinaryOp::Div => Expr::arith(ArithOp::Div, l, r),
            }
        }
        AstExpr::Not(inner) => Expr::Not(Box::new(bind_expr(inner, scope)?)),
        AstExpr::Neg(inner) => match bind_expr(inner, scope)? {
            // Fold literal negation so `-5` stays a literal.
            Expr::Lit(Value::Int64(n)) => Expr::Lit(Value::Int64(-n)),
            Expr::Lit(Value::Float64(f)) => Expr::Lit(Value::Float64(-f)),
            other => Expr::arith(ArithOp::Sub, Expr::lit(0i64), other),
        },
        AstExpr::Between {
            expr,
            negated,
            lo,
            hi,
        } => {
            let x = bind_expr(expr, scope)?;
            let fix = |e: Expr| -> Result<Expr> {
                match (col_type(&x, scope), &e) {
                    (Some(ty), Expr::Lit(v)) => Ok(Expr::Lit(coerce_cmp_literal(v, ty)?)),
                    _ => Ok(e),
                }
            };
            let lo = fix(bind_expr(lo, scope)?)?;
            let hi = fix(bind_expr(hi, scope)?)?;
            let b = Expr::and(
                Expr::cmp(CmpOp::Ge, x.clone(), lo),
                Expr::cmp(CmpOp::Le, x, hi),
            );
            if *negated {
                Expr::Not(Box::new(b))
            } else {
                b
            }
        }
        AstExpr::InList {
            expr,
            negated,
            list,
        } => {
            let x = bind_expr(expr, scope)?;
            let values = list
                .iter()
                .map(|item| match item {
                    AstExpr::Lit(v) => Ok(v.clone()),
                    AstExpr::Neg(inner) => match inner.as_ref() {
                        AstExpr::Lit(Value::Int64(n)) => Ok(Value::Int64(-n)),
                        AstExpr::Lit(Value::Float64(f)) => Ok(Value::Float64(-f)),
                        _ => Err(Error::Unsupported("IN list items must be literals".into())),
                    },
                    _ => Err(Error::Unsupported("IN list items must be literals".into())),
                })
                .collect::<Result<Vec<_>>>()?;
            let values = match col_type(&x, scope) {
                Some(ty) => values
                    .iter()
                    .map(|v| coerce_cmp_literal(v, ty))
                    .collect::<Result<Vec<_>>>()?,
                None => values,
            };
            let e = Expr::InList {
                expr: Box::new(x),
                list: values,
            };
            if *negated {
                Expr::Not(Box::new(e))
            } else {
                e
            }
        }
        AstExpr::IsNull { expr, negated } => {
            let x = Box::new(bind_expr(expr, scope)?);
            if *negated {
                Expr::IsNotNull(x)
            } else {
                Expr::IsNull(x)
            }
        }
        AstExpr::Like {
            expr,
            negated,
            pattern,
        } => {
            let x = bind_expr(expr, scope)?;
            if let Some(ty) = col_type(&x, scope) {
                if ty != DataType::Utf8 {
                    return Err(Error::Type(format!(
                        "LIKE applies to VARCHAR columns, not {ty}"
                    )));
                }
            }
            let like = Expr::Like {
                expr: Box::new(x.clone()),
                pattern: pattern.clone(),
            };
            if *negated {
                Expr::Not(Box::new(like))
            } else {
                // Prefix patterns additionally get a *redundant* sargable
                // range (`col >= 'abc' AND col < 'abd'`) so the scan can
                // push it onto encoded data and eliminate segments; the
                // LIKE itself stays for exactness.
                match prefix_range(pattern) {
                    Some((lo, hi)) => {
                        let mut e = Expr::cmp(CmpOp::Ge, x.clone(), Expr::Lit(Value::str(lo)));
                        if let Some(hi) = hi {
                            e = Expr::and(e, Expr::cmp(CmpOp::Lt, x, Expr::Lit(Value::str(hi))));
                        }
                        Expr::and(e, like)
                    }
                    None => like,
                }
            }
        }
        AstExpr::FuncCall { name, .. } => {
            return Err(Error::Sql(format!(
                "aggregate {name}() is not allowed here"
            )))
        }
    })
}

/// For a pattern with a non-empty literal prefix (e.g. `abc%`), the
/// sargable range `[prefix, successor)`. `None` when the pattern starts
/// with a wildcard; the upper bound is `None` when no successor string
/// exists (prefix of all `char::MAX`).
fn prefix_range(pattern: &str) -> Option<(String, Option<String>)> {
    let prefix: String = pattern
        .chars()
        .take_while(|&c| c != '%' && c != '_')
        .collect();
    if prefix.is_empty() {
        return None;
    }
    // Successor: bump the last char that has a successor.
    let mut chars: Vec<char> = prefix.chars().collect();
    let hi = loop {
        match chars.pop() {
            None => break None,
            Some(c) => {
                if let Some(next) = char::from_u32(c as u32 + 1).filter(|n| *n > c) {
                    chars.push(next);
                    break Some(chars.iter().collect::<String>());
                }
                // No successor char (surrogate boundary etc.): drop it and
                // bump the previous one.
            }
        }
    };
    Some((prefix, hi))
}

fn contains_agg(e: &AstExpr) -> bool {
    match e {
        AstExpr::FuncCall { .. } => true,
        AstExpr::Binary { lhs, rhs, .. } => contains_agg(lhs) || contains_agg(rhs),
        AstExpr::Not(x) | AstExpr::Neg(x) => contains_agg(x),
        AstExpr::Between { expr, lo, hi, .. } => {
            contains_agg(expr) || contains_agg(lo) || contains_agg(hi)
        }
        AstExpr::InList { expr, .. } => contains_agg(expr),
        AstExpr::IsNull { expr, .. } | AstExpr::Like { expr, .. } => contains_agg(expr),
        AstExpr::Column { .. } | AstExpr::Lit(_) => false,
    }
}

fn collect_aggs(e: &AstExpr, out: &mut Vec<AstExpr>) {
    match e {
        AstExpr::FuncCall { .. } => {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        AstExpr::Binary { lhs, rhs, .. } => {
            collect_aggs(lhs, out);
            collect_aggs(rhs, out);
        }
        AstExpr::Not(x) | AstExpr::Neg(x) => collect_aggs(x, out),
        AstExpr::Between { expr, lo, hi, .. } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        AstExpr::InList { expr, .. } => collect_aggs(expr, out),
        AstExpr::IsNull { expr, .. } | AstExpr::Like { expr, .. } => collect_aggs(expr, out),
        AstExpr::Column { .. } | AstExpr::Lit(_) => {}
    }
}

/// Bind a grouped (or scalar-aggregate) SELECT.
fn bind_grouped(
    stmt: &SelectStmt,
    input: LogicalPlan,
    scope: Scope,
    _catalog: &dyn CatalogProvider,
) -> Result<LogicalPlan> {
    // Collect distinct aggregate calls from items + HAVING + ORDER BY.
    let mut agg_asts: Vec<AstExpr> = Vec::new();
    for item in &stmt.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggs(expr, &mut agg_asts);
        } else {
            return Err(Error::Sql(
                "SELECT * cannot be combined with GROUP BY".into(),
            ));
        }
    }
    if let Some(h) = &stmt.having {
        collect_aggs(h, &mut agg_asts);
    }
    for o in &stmt.order_by {
        collect_aggs(&o.expr, &mut agg_asts);
    }
    // Bind aggregates and group keys against the input scope.
    let aggs: Vec<AggExpr> = agg_asts
        .iter()
        .map(|a| bind_agg(a, &scope))
        .collect::<Result<Vec<_>>>()?;
    let group_exprs: Vec<Expr> = stmt
        .group_by
        .iter()
        .map(|g| bind_expr(g, &scope))
        .collect::<Result<Vec<_>>>()?;
    let n_groups = group_exprs.len();
    // Names for the Aggregate node's raw output.
    let mut agg_names: Vec<String> = (0..n_groups).map(|i| format!("group{i}")).collect();
    agg_names.extend((0..aggs.len()).map(|i| format!("agg{i}")));
    let agg_plan = LogicalPlan::Aggregate {
        input: Box::new(input),
        group_by: group_exprs,
        aggs,
        names: agg_names,
    };
    // Rewriting context: an expression over the aggregate output replaces
    // group-by subtrees with Col(i) and aggregate subtrees with
    // Col(n_groups + j).
    let rewrite = |e: &AstExpr| -> Result<Expr> {
        rewrite_grouped(e, &stmt.group_by, &agg_asts, n_groups, &scope)
    };
    // HAVING.
    let mut plan = agg_plan;
    if let Some(h) = &stmt.having {
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: rewrite(h)?,
        };
    }
    // SELECT list.
    let mut exprs = Vec::with_capacity(stmt.items.len());
    let mut names = Vec::with_capacity(stmt.items.len());
    for (i, item) in stmt.items.iter().enumerate() {
        let SelectItem::Expr { expr, alias } = item else {
            // lint: allow(panic) — wildcards were expanded into Expr items
            // earlier in bind_select
            unreachable!("wildcard rejected above");
        };
        exprs.push(rewrite(expr)?);
        names.push(alias.clone().unwrap_or_else(|| display_name(expr, i)));
    }
    plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        names: names.clone(),
    };
    bind_order_limit(stmt, plan, &names)
}

/// Rewrite an expression over the aggregate's output.
#[allow(clippy::only_used_in_recursion)]
fn rewrite_grouped(
    e: &AstExpr,
    group_by: &[AstExpr],
    agg_asts: &[AstExpr],
    n_groups: usize,
    scope: &Scope,
) -> Result<Expr> {
    // Whole-subtree matches first.
    if let Some(i) = group_by.iter().position(|g| g == e) {
        return Ok(Expr::col(i));
    }
    if let Some(j) = agg_asts.iter().position(|a| a == e) {
        return Ok(Expr::col(n_groups + j));
    }
    Ok(match e {
        AstExpr::Lit(v) => Expr::Lit(v.clone()),
        AstExpr::Binary { op, lhs, rhs } => {
            let l = rewrite_grouped(lhs, group_by, agg_asts, n_groups, scope)?;
            let r = rewrite_grouped(rhs, group_by, agg_asts, n_groups, scope)?;
            match op {
                BinaryOp::Cmp(c) => Expr::cmp(*c, l, r),
                BinaryOp::And => Expr::and(l, r),
                BinaryOp::Or => Expr::or(l, r),
                BinaryOp::Add => Expr::arith(ArithOp::Add, l, r),
                BinaryOp::Sub => Expr::arith(ArithOp::Sub, l, r),
                BinaryOp::Mul => Expr::arith(ArithOp::Mul, l, r),
                BinaryOp::Div => Expr::arith(ArithOp::Div, l, r),
            }
        }
        AstExpr::Not(x) => Expr::Not(Box::new(rewrite_grouped(
            x, group_by, agg_asts, n_groups, scope,
        )?)),
        AstExpr::Neg(x) => Expr::arith(
            ArithOp::Sub,
            Expr::lit(0i64),
            rewrite_grouped(x, group_by, agg_asts, n_groups, scope)?,
        ),
        AstExpr::IsNull { expr, negated } => {
            let x = Box::new(rewrite_grouped(expr, group_by, agg_asts, n_groups, scope)?);
            if *negated {
                Expr::IsNotNull(x)
            } else {
                Expr::IsNull(x)
            }
        }
        AstExpr::Between {
            expr,
            negated,
            lo,
            hi,
        } => {
            let x = rewrite_grouped(expr, group_by, agg_asts, n_groups, scope)?;
            let b = Expr::and(
                Expr::cmp(
                    CmpOp::Ge,
                    x.clone(),
                    rewrite_grouped(lo, group_by, agg_asts, n_groups, scope)?,
                ),
                Expr::cmp(
                    CmpOp::Le,
                    x,
                    rewrite_grouped(hi, group_by, agg_asts, n_groups, scope)?,
                ),
            );
            if *negated {
                Expr::Not(Box::new(b))
            } else {
                b
            }
        }
        AstExpr::InList {
            expr,
            negated,
            list,
        } => {
            let x = rewrite_grouped(expr, group_by, agg_asts, n_groups, scope)?;
            let values = list
                .iter()
                .map(|item| match item {
                    AstExpr::Lit(v) => Ok(v.clone()),
                    _ => Err(Error::Unsupported("IN list items must be literals".into())),
                })
                .collect::<Result<Vec<_>>>()?;
            let e = Expr::InList {
                expr: Box::new(x),
                list: values,
            };
            if *negated {
                Expr::Not(Box::new(e))
            } else {
                e
            }
        }
        AstExpr::Like {
            expr,
            negated,
            pattern,
        } => {
            let x = rewrite_grouped(expr, group_by, agg_asts, n_groups, scope)?;
            let e = Expr::Like {
                expr: Box::new(x),
                pattern: pattern.clone(),
            };
            if *negated {
                Expr::Not(Box::new(e))
            } else {
                e
            }
        }
        AstExpr::Column { name, qualifier } => {
            return Err(Error::Sql(format!(
                "column '{}{name}' must appear in GROUP BY or inside an aggregate",
                qualifier
                    .as_ref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default()
            )))
        }
        other => {
            return Err(Error::Unsupported(format!(
                "expression {other:?} not supported over GROUP BY output"
            )))
        }
    })
}

fn bind_agg(e: &AstExpr, scope: &Scope) -> Result<AggExpr> {
    let AstExpr::FuncCall {
        name,
        arg,
        star,
        distinct,
    } = e
    else {
        // lint: allow(panic) — collect_aggs only yields Func expressions
        unreachable!("collect_aggs only collects calls");
    };
    let func = match name.as_str() {
        "COUNT" if *star => return Ok(AggExpr::count_star()),
        "COUNT" if *distinct => AggFunc::CountDistinct,
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        "AVG" => AggFunc::Avg,
        other => return Err(Error::Sql(format!("unknown aggregate '{other}'"))),
    };
    let arg = arg
        .as_ref()
        .ok_or_else(|| Error::Sql(format!("{name}() requires an argument")))?;
    if contains_agg(arg) {
        return Err(Error::Sql("nested aggregates are not allowed".into()));
    }
    Ok(AggExpr::new(func, bind_expr(arg, scope)?))
}

/// Bind SELECT items (non-grouped path).
fn bind_select_items(items: &[SelectItem], scope: &Scope) -> Result<(Vec<Expr>, Vec<String>)> {
    let mut exprs = Vec::new();
    let mut names = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (ord, col) in scope.cols.iter().enumerate() {
                    exprs.push(Expr::col(ord));
                    names.push(col.name.clone());
                }
            }
            SelectItem::Expr { expr, alias } => {
                exprs.push(bind_expr(expr, scope)?);
                names.push(alias.clone().unwrap_or_else(|| display_name(expr, i)));
            }
        }
    }
    Ok((exprs, names))
}

fn display_name(e: &AstExpr, ordinal: usize) -> String {
    match e {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::FuncCall { name, star, .. } => {
            if *star {
                format!("{}_star", name.to_ascii_lowercase())
            } else {
                name.to_ascii_lowercase()
            }
        }
        _ => format!("col{ordinal}"),
    }
}

/// Attach ORDER BY / LIMIT / OFFSET over the final projection.
fn bind_order_limit(
    stmt: &SelectStmt,
    plan: LogicalPlan,
    output_names: &[String],
) -> Result<LogicalPlan> {
    if stmt.order_by.is_empty() && stmt.limit.is_none() && stmt.offset == 0 {
        return Ok(plan);
    }
    let mut keys = Vec::with_capacity(stmt.order_by.len());
    for o in &stmt.order_by {
        let ordinal = match &o.expr {
            AstExpr::Lit(Value::Int64(n)) if (1..=output_names.len() as i64).contains(n) => {
                (*n - 1) as usize
            }
            AstExpr::Column {
                qualifier: None,
                name,
            } => output_names
                .iter()
                .position(|x| x.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    Error::Sql(format!(
                        "ORDER BY column '{name}' is not in the SELECT list"
                    ))
                })?,
            AstExpr::FuncCall { .. } => {
                return Err(Error::Unsupported(
                    "ORDER BY aggregate: give it an alias in the SELECT list".into(),
                ))
            }
            other => {
                return Err(Error::Unsupported(format!(
                    "ORDER BY expression {other:?}; use an output column name or ordinal"
                )))
            }
        };
        keys.push(LogicalSortKey {
            expr: Expr::col(ordinal),
            descending: o.descending,
        });
    }
    Ok(LogicalPlan::Sort {
        input: Box::new(plan),
        keys,
        limit: stmt.limit,
        offset: stmt.offset,
    })
}

/// Bind an expression against one table's schema (UPDATE/DELETE WHERE).
pub fn bind_expr_on_schema(e: &AstExpr, schema: &Schema, table: &str) -> Result<Expr> {
    let scope = Scope::from_schema(table, schema);
    bind_expr(e, &scope)
}

/// Evaluate a literal-only expression (INSERT values).
pub fn literal_value(e: &AstExpr, target: DataType) -> Result<Value> {
    let v = match e {
        AstExpr::Lit(v) => v.clone(),
        AstExpr::Neg(inner) => match literal_value(inner, target)? {
            Value::Int64(n) => Value::Int64(-n),
            Value::Int32(n) => Value::Int32(-n),
            Value::Float64(f) => Value::Float64(-f),
            Value::Decimal(m) => Value::Decimal(-m),
            other => return Err(Error::Type(format!("cannot negate {other:?}"))),
        },
        other => {
            return Err(Error::Unsupported(format!(
                "INSERT values must be literals, got {other:?}"
            )))
        }
    };
    coerce(v, target)
}

/// Coerce a literal to a column type (integer widths, decimal mantissas).
pub fn coerce(v: Value, target: DataType) -> Result<Value> {
    if v.is_null() || v.fits(target) {
        return Ok(v);
    }
    let coerced = match (&v, target) {
        (Value::Int64(n), DataType::Int32) if i32::try_from(*n).is_ok() => {
            Some(Value::Int32(*n as i32))
        }
        (Value::Int32(n), DataType::Int64) => Some(Value::Int64(*n as i64)),
        (Value::Int64(n), DataType::Date) if i32::try_from(*n).is_ok() => {
            Some(Value::Date(*n as i32))
        }
        (Value::Int64(n), DataType::Float64) => Some(Value::Float64(*n as f64)),
        (Value::Int64(n), DataType::Decimal { scale }) => {
            n.checked_mul(10i64.pow(scale as u32)).map(Value::Decimal)
        }
        (Value::Float64(f), DataType::Decimal { scale }) => {
            Some(Value::Decimal((f * 10f64.powi(scale as i32)).round() as i64))
        }
        (Value::Bool(b), DataType::Bool) => Some(Value::Bool(*b)),
        _ => None,
    };
    coerced.ok_or_else(|| Error::Type(format!("cannot store {v:?} in a {target} column")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use cstore_common::{Field, Row};
    use cstore_delta::{ColumnStoreTable, TableConfig};
    use cstore_planner::catalog::{MemoryCatalog, TableRef as CatTable};

    fn catalog() -> MemoryCatalog {
        let mut c = MemoryCatalog::new();
        let mk = |fields: Vec<Field>, rows: Vec<Row>| {
            let t = ColumnStoreTable::new(
                Schema::new(fields),
                TableConfig {
                    bulk_load_threshold: 1,
                    ..TableConfig::default()
                },
            );
            if !rows.is_empty() {
                t.bulk_insert(&rows).unwrap();
            }
            CatTable::ColumnStore(t)
        };
        c.register(
            "sales",
            mk(
                vec![
                    Field::not_null("id", DataType::Int64),
                    Field::not_null("cust_id", DataType::Int64),
                    Field::nullable("amount", DataType::Float64),
                ],
                (0..100)
                    .map(|i| {
                        Row::new(vec![
                            Value::Int64(i),
                            Value::Int64(i % 10),
                            Value::Float64(i as f64),
                        ])
                    })
                    .collect(),
            ),
        );
        c.register(
            "customers",
            mk(
                vec![
                    Field::not_null("id", DataType::Int64),
                    Field::not_null("name", DataType::Utf8),
                ],
                (0..10)
                    .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("c{i}"))]))
                    .collect(),
            ),
        );
        c
    }

    fn bind(sql: &str) -> Result<LogicalPlan> {
        let Statement::Select(s) = parse(sql)? else {
            panic!("not a select")
        };
        bind_select(&s, &catalog())
    }

    #[test]
    fn binds_simple_select() {
        let plan = bind("SELECT id, amount FROM sales WHERE amount > 10").unwrap();
        let fields = plan.output_fields().unwrap();
        assert_eq!(fields[0].name, "id");
        assert_eq!(fields[1].name, "amount");
    }

    #[test]
    fn binds_wildcard_and_alias() {
        let plan = bind("SELECT * FROM sales s").unwrap();
        assert_eq!(plan.arity().unwrap(), 3);
        let plan = bind("SELECT s.id AS key FROM sales s").unwrap();
        assert_eq!(plan.output_fields().unwrap()[0].name, "key");
    }

    #[test]
    fn binds_join_with_keys() {
        let plan =
            bind("SELECT s.id, c.name FROM sales s JOIN customers c ON s.cust_id = c.id").unwrap();
        // Find the join and check its keys.
        fn find_join(p: &LogicalPlan) -> Option<(&Vec<usize>, &Vec<usize>)> {
            match p {
                LogicalPlan::Join {
                    on_left, on_right, ..
                } => Some((on_left, on_right)),
                _ => p.children().iter().find_map(|c| find_join(c)),
            }
        }
        let (l, r) = find_join(&plan).unwrap();
        assert_eq!(l, &vec![1]);
        assert_eq!(r, &vec![0]);
    }

    #[test]
    fn rejects_unknown_and_ambiguous() {
        assert!(bind("SELECT nope FROM sales").is_err());
        assert!(
            bind("SELECT id FROM sales s JOIN customers c ON s.cust_id = c.id").is_err(),
            "id is ambiguous"
        );
        assert!(bind("SELECT * FROM missing").is_err());
    }

    #[test]
    fn binds_grouped_query() {
        let plan = bind(
            "SELECT cust_id, COUNT(*) AS n, SUM(amount) AS total \
             FROM sales GROUP BY cust_id HAVING COUNT(*) > 5 \
             ORDER BY total DESC LIMIT 3",
        )
        .unwrap();
        let fields = plan.output_fields().unwrap();
        // Sort is at the root.
        assert!(matches!(plan, LogicalPlan::Sort { .. }));
        assert_eq!(
            fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["cust_id", "n", "total"]
        );
    }

    #[test]
    fn grouped_rejects_loose_columns() {
        let err = bind("SELECT id, COUNT(*) FROM sales GROUP BY cust_id").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn agg_expression_over_aggregates() {
        let plan = bind("SELECT SUM(amount) / COUNT(*) AS mean FROM sales").unwrap();
        assert_eq!(plan.output_fields().unwrap()[0].name, "mean");
    }

    #[test]
    fn order_by_ordinal() {
        let plan = bind("SELECT id, amount FROM sales ORDER BY 2 DESC").unwrap();
        let LogicalPlan::Sort { keys, .. } = &plan else {
            panic!()
        };
        assert!(matches!(keys[0].expr, Expr::Col(1)));
        assert!(keys[0].descending);
    }

    #[test]
    fn coerce_literals() {
        assert_eq!(
            coerce(Value::Int64(5), DataType::Decimal { scale: 2 }).unwrap(),
            Value::Decimal(500)
        );
        assert_eq!(
            coerce(Value::Int64(5), DataType::Int32).unwrap(),
            Value::Int32(5)
        );
        assert!(coerce(Value::str("x"), DataType::Int64).is_err());
        assert!(coerce(Value::Int64(1 << 40), DataType::Int32).is_err());
    }
}
