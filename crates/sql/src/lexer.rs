//! SQL lexer.

use cstore_common::{Error, Result};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords matched by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, '' unescaped).
    Str(String),
    // Punctuation / operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semi,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(Error::Sql("unterminated string literal".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        Error::Sql(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        Error::Sql(format!("bad integer literal '{text}'"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_owned()));
            }
            other => {
                return Err(Error::Sql(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 1.5 AND y <> 'it''s'").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Str("it's".into())));
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let toks = tokenize("SELECT -- comment\n 1").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Int(1));
    }

    #[test]
    fn operators() {
        let toks = tokenize("< <= > >= = <> != + - * /").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash
            ]
        );
    }

    #[test]
    fn errors_on_junk() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("'unterminated").is_err());
    }
}
