//! SQL front end: lexer, parser and binder for a warehouse-oriented SQL
//! subset (SELECT with joins/aggregation/ordering, INSERT, UPDATE, DELETE,
//! CREATE TABLE, EXPLAIN).

pub mod ast;
pub mod bind;
pub mod lexer;
pub mod parser;
pub mod shape;

pub use ast::{Statement, TableOrganization};
pub use bind::{bind_expr_on_schema, bind_select, bind_union, coerce, literal_value};
pub use parser::parse;
pub use shape::{query_shape, QueryShape};
