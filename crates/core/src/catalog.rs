//! The database catalog.

use std::sync::Arc;

use cstore_common::sync::RwLock;

use cstore_common::{Error, Result, Schema};
use cstore_delta::{ColumnStoreTable, TableConfig};
use cstore_planner::{CatalogProvider, TableRef};
use cstore_rowstore::HeapTable;

/// A cataloged table.
#[derive(Clone)]
pub enum TableEntry {
    ColumnStore(ColumnStoreTable),
    /// Heap tables mutate through `Arc::make_mut`: reads share the Arc,
    /// a write while a reader holds a snapshot clones (rare; DML on the
    /// baseline tables is not on any measured path).
    Heap(Arc<HeapTable>),
}

impl TableEntry {
    pub fn schema(&self) -> Schema {
        match self {
            TableEntry::ColumnStore(t) => t.schema().clone(),
            TableEntry::Heap(t) => t.schema().clone(),
        }
    }

    fn as_planner_ref(&self) -> TableRef {
        match self {
            TableEntry::ColumnStore(t) => TableRef::ColumnStore(t.clone()),
            TableEntry::Heap(t) => TableRef::Heap(t.clone()),
        }
    }
}

/// Thread-safe name → table map (plus an ANALYZE statistics cache).
#[derive(Clone)]
pub struct Catalog {
    tables: Arc<RwLock<Vec<(String, TableEntry)>>>,
    stats: Arc<RwLock<Vec<(String, cstore_planner::stats::TableStatistics)>>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            tables: Arc::new(RwLock::new_leveled(1, "catalog.tables", Vec::new())),
            stats: Arc::new(RwLock::new_leveled(2, "catalog.stats", Vec::new())),
        }
    }

    /// Register a new table; errors if the name is taken.
    pub fn create(&self, name: &str, entry: TableEntry) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.iter().any(|(n, _)| n.eq_ignore_ascii_case(name)) {
            return Err(Error::Catalog(format!("table '{name}' already exists")));
        }
        tables.push((name.to_owned(), entry));
        Ok(())
    }

    /// Create a columnstore table with the given config.
    pub fn create_columnstore(
        &self,
        name: &str,
        schema: Schema,
        config: TableConfig,
    ) -> Result<ColumnStoreTable> {
        let t = ColumnStoreTable::new(schema, config);
        self.create(name, TableEntry::ColumnStore(t.clone()))?;
        Ok(t)
    }

    /// Create a heap (row-store) table.
    pub fn create_heap(&self, name: &str, schema: Schema) -> Result<()> {
        self.create(name, TableEntry::Heap(Arc::new(HeapTable::new(schema))))
    }

    pub fn get(&self, name: &str) -> Option<TableEntry> {
        self.tables
            .read()
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, e)| e.clone())
    }

    pub fn try_get(&self, name: &str) -> Result<TableEntry> {
        self.get(name)
            .ok_or_else(|| Error::Catalog(format!("unknown table '{name}'")))
    }

    /// Run `f` with mutable access to a heap table.
    pub fn with_heap_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut HeapTable) -> Result<R>,
    ) -> Result<R> {
        let mut tables = self.tables.write();
        let entry = tables
            .iter_mut()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, e)| e)
            .ok_or_else(|| Error::Catalog(format!("unknown table '{name}'")))?;
        match entry {
            TableEntry::Heap(arc) => f(Arc::make_mut(arc)),
            TableEntry::ColumnStore(_) => Err(Error::Catalog(format!(
                "table '{name}' is a columnstore, not a heap"
            ))),
        }
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().iter().map(|(n, _)| n.clone()).collect()
    }

    pub fn drop_table(&self, name: &str) -> bool {
        let mut tables = self.tables.write();
        let before = tables.len();
        tables.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.stats
            .write()
            .retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        tables.len() != before
    }

    /// Install ANALYZE-collected statistics for `name`.
    pub fn put_statistics(&self, name: &str, stats: cstore_planner::stats::TableStatistics) {
        let mut cache = self.stats.write();
        cache.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        cache.push((name.to_owned(), stats));
    }
}

impl CatalogProvider for Catalog {
    fn table(&self, name: &str) -> Option<TableRef> {
        self.get(name).map(|e| e.as_planner_ref())
    }

    fn statistics(&self, name: &str) -> Option<cstore_planner::stats::TableStatistics> {
        self.stats
            .read()
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, s)| s.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::not_null("a", DataType::Int64)])
    }

    #[test]
    fn create_lookup_drop() {
        let c = Catalog::new();
        c.create_heap("t", schema()).unwrap();
        assert!(c.get("t").is_some());
        assert!(c.get("T").is_some(), "names are case-insensitive");
        assert!(c.create_heap("T", schema()).is_err(), "duplicate rejected");
        assert!(c.drop_table("t"));
        assert!(!c.drop_table("t"));
    }

    #[test]
    fn heap_mutation_through_make_mut() {
        use cstore_common::{Row, Value};
        let c = Catalog::new();
        c.create_heap("h", schema()).unwrap();
        // A reader holds the old Arc...
        let TableEntry::Heap(snapshot) = c.get("h").unwrap() else {
            panic!()
        };
        c.with_heap_mut("h", |t| {
            t.insert(&Row::new(vec![Value::Int64(1)]))?;
            Ok(())
        })
        .unwrap();
        // ... and still sees the empty version; new readers see the row.
        assert_eq!(snapshot.n_rows(), 0);
        let TableEntry::Heap(now) = c.get("h").unwrap() else {
            panic!()
        };
        assert_eq!(now.n_rows(), 1);
    }
}
