//! The `sys.*` introspection views (DMV-style virtual tables).
//!
//! Columnstore internals — row-group lifecycle, per-segment encodings,
//! dictionary sizes, tuple-mover progress, the recent-query ring — are
//! exposed as ordinary tables queryable through the normal SQL pipeline:
//!
//! ```sql
//! SELECT table_name, state, total_rows, deleted_rows FROM sys.row_groups;
//! SELECT s.column_name, s.encoding, d.entries
//!   FROM sys.column_segments s JOIN sys.dictionaries d
//!     ON s.dictionary_id = d.dictionary_id;
//! ```
//!
//! Each view is **materialized at bind time** from a point-in-time
//! snapshot ([`ColumnStoreTable::introspect`] holds one read lock per
//! table; mover/query-log state is copied under its own short lock), so
//! planning and execution never hold storage locks. Within one query,
//! [`SysCatalog`] memoizes each view, so every reference to the same view
//! in a join sees the same snapshot.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

use cstore_common::{DataType, Field, FxHashMap, Row, Schema, Value};
use cstore_delta::{ColumnStoreTable, TableIntrospection};
use cstore_planner::catalog::{CatalogProvider, TableRef, VirtualTable};
use cstore_storage::encode::{PayloadKind, PrimaryEncoding};
use cstore_storage::{CompressedRowGroup, CompressionLevel, QuarantinedKind};

use crate::catalog::TableEntry;
use crate::database::Database;

/// The names the binder recognizes as virtual tables.
pub const SYS_VIEW_NAMES: [&str; 11] = [
    "sys.row_groups",
    "sys.column_segments",
    "sys.dictionaries",
    "sys.tuple_mover",
    "sys.query_log",
    "sys.wal",
    "sys.lock_stats",
    "sys.resource_governor",
    "sys.wait_stats",
    "sys.query_store",
    "sys.transactions",
];

/// Snapshot-materializer for the `sys.*` views: implemented by
/// [`Database`], consumed by [`SysCatalog`]. Implementations must not
/// return tables that keep storage locks alive — views are plain
/// materialized rows.
pub trait Introspection {
    /// Materialize the named view, or `None` if the name is not a view.
    /// `name` is already lower-cased.
    fn sys_view(&self, name: &str) -> Option<VirtualTable>;
}

/// A [`CatalogProvider`] that resolves `sys.`-prefixed names through an
/// [`Introspection`] source and everything else through the base catalog.
/// One instance lives per query; materialized views are memoized so a
/// self-join of a view sees a single consistent snapshot.
pub struct SysCatalog<'a> {
    base: &'a dyn CatalogProvider,
    sys: &'a dyn Introspection,
    materialized: RefCell<FxHashMap<String, TableRef>>,
}

impl<'a> SysCatalog<'a> {
    pub fn new(base: &'a dyn CatalogProvider, sys: &'a dyn Introspection) -> SysCatalog<'a> {
        SysCatalog {
            base,
            sys,
            materialized: RefCell::new(FxHashMap::default()),
        }
    }
}

impl CatalogProvider for SysCatalog<'_> {
    fn table(&self, name: &str) -> Option<TableRef> {
        let lower = name.to_ascii_lowercase();
        if !lower.starts_with("sys.") {
            return self.base.table(name);
        }
        if let Some(t) = self.materialized.borrow().get(&lower) {
            return Some(t.clone());
        }
        let view = self.sys.sys_view(&lower)?;
        let t = TableRef::Virtual(Arc::new(view));
        self.materialized.borrow_mut().insert(lower, t.clone());
        Some(t)
    }

    fn statistics(&self, name: &str) -> Option<cstore_planner::stats::TableStatistics> {
        if name.to_ascii_lowercase().starts_with("sys.") {
            return None; // virtual tables: row counts come from the rows
        }
        self.base.statistics(name)
    }
}

// ------------------------------------------------------------ query log

/// Outcome of a logged query.
#[derive(Clone, Debug)]
pub enum QueryOutcome {
    Ok {
        rows: usize,
        batches: u64,
        plan_root: Option<String>,
    },
    /// The error string; errored queries stay in the ring.
    Error(String),
    /// A successful `ROLLBACK` (distinct from errors: nothing failed,
    /// but the transaction's work was discarded).
    RolledBack,
    /// A write-write conflict aborted the statement or transaction;
    /// carries the conflict message.
    Conflict(String),
}

/// One entry of the recent-query ring.
#[derive(Clone, Debug)]
pub struct QueryLogEntry {
    pub id: u64,
    pub text: String,
    /// Normalized shape hash (literals → `?`), joinable against
    /// `sys.query_store.query_hash`.
    pub query_hash: u64,
    pub duration: Duration,
    pub outcome: QueryOutcome,
}

/// Bounded ring of the last N queries (successes *and* errors).
#[derive(Debug)]
pub struct QueryLog {
    entries: std::collections::VecDeque<QueryLogEntry>,
    capacity: usize,
    next_id: u64,
}

/// Queries retained by `sys.query_log`.
pub const QUERY_LOG_CAPACITY: usize = 128;

impl Default for QueryLog {
    fn default() -> Self {
        QueryLog {
            entries: std::collections::VecDeque::new(),
            capacity: QUERY_LOG_CAPACITY,
            next_id: 1,
        }
    }
}

impl QueryLog {
    pub fn record(
        &mut self,
        text: &str,
        query_hash: u64,
        duration: Duration,
        outcome: QueryOutcome,
    ) {
        while self.entries.len() >= self.capacity.max(1) {
            self.entries.pop_front();
        }
        self.entries.push_back(QueryLogEntry {
            id: self.next_id,
            text: text.to_owned(),
            query_hash,
            duration,
            outcome,
        });
        self.next_id += 1;
    }

    /// `SET query_log_size`: resize the ring, evicting oldest entries
    /// immediately if it shrinks below the current length.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn entries(&self) -> impl Iterator<Item = &QueryLogEntry> {
        self.entries.iter()
    }
}

// ------------------------------------------------------- value plumbing

fn int(v: usize) -> Value {
    Value::Int64(i64::try_from(v).unwrap_or(i64::MAX))
}

fn int_u64(v: u64) -> Value {
    Value::Int64(i64::try_from(v).unwrap_or(i64::MAX))
}

fn opt_str(v: Option<String>) -> Value {
    match v {
        Some(s) => Value::str(s),
        None => Value::Null,
    }
}

fn field(name: &str, ty: DataType, nullable: bool) -> Field {
    Field::new(name, ty, nullable)
}

/// Deterministic dictionary ids, stable across views so
/// `sys.column_segments.dictionary_id` joins against
/// `sys.dictionaries.dictionary_id` without cross-table collisions
/// (both views enumerate tables in the same catalog order, so the
/// table ordinal is consistent): global (per-column, shared across
/// groups) dictionaries get `-(table * 65536 + column + 1)`;
/// group-local dictionaries get
/// `(table << 40) + group_id * 65536 + column`.
fn global_dict_id(table: usize, col: usize) -> i64 {
    -((table as i64) * 65_536 + col as i64 + 1)
}

fn local_dict_id(table: usize, group: u32, col: usize) -> i64 {
    ((table as i64) << 40) + i64::from(group) * 65_536 + col as i64
}

fn encoding_name(primary: PrimaryEncoding, payload: PayloadKind) -> &'static str {
    match (primary, payload) {
        (PrimaryEncoding::Dictionary, PayloadKind::Rle) => "DICT_RLE",
        (PrimaryEncoding::Dictionary, PayloadKind::BitPacked) => "DICT_BITPACK",
        (PrimaryEncoding::ValueBased, PayloadKind::Rle) => "VALUE_RLE",
        (PrimaryEncoding::ValueBased, PayloadKind::BitPacked) => "VALUE_BITPACK",
    }
}

/// Uncompressed size estimate of one segment (the denominator of the
/// per-segment compression ratio): fixed-width types are exact; strings
/// decode the segment and sum actual lengths (+2-byte length prefix),
/// falling back to the encoded size if an archived segment cannot be
/// opened.
fn segment_raw_bytes(g: &CompressedRowGroup, col: usize) -> usize {
    let m = g.seg_meta(col);
    if let Some(w) = m.data_type.fixed_width() {
        return w * m.row_count as usize;
    }
    match g.open_segment(col) {
        Ok(seg) => match seg.decode() {
            cstore_storage::SegmentValues::Str { codes, dict, nulls } => codes
                .iter()
                .enumerate()
                .filter(|(i, _)| !nulls.as_ref().is_some_and(|n| n.get(*i)))
                .map(|(_, &c)| dict.str_at(c).len() + 2)
                .sum(),
            _ => (m.payload_bytes + m.dict_bytes) as usize,
        },
        Err(_) => (m.payload_bytes + m.dict_bytes) as usize,
    }
}

/// The dictionary a segment uses, resolved to a deterministic id, or
/// `Value::Null`: value-encoded segments have no dictionary, and archived
/// segments do not expose one without decompressing.
fn segment_dict_id(
    intro: &TableIntrospection,
    table: usize,
    g: &CompressedRowGroup,
    col: usize,
) -> Value {
    if g.seg_meta(col).primary != PrimaryEncoding::Dictionary
        || g.level() == CompressionLevel::Archive
    {
        return Value::Null;
    }
    let Ok(seg) = g.open_segment(col) else {
        return Value::Null;
    };
    match seg.dictionary() {
        Some(d) => {
            let is_global = intro
                .global_dicts
                .get(col)
                .and_then(|o| o.as_ref())
                .is_some_and(|gd| Arc::ptr_eq(gd, d));
            if is_global {
                Value::Int64(global_dict_id(table, col))
            } else {
                Value::Int64(local_dict_id(table, g.id().0, col))
            }
        }
        None => Value::Null,
    }
}

// ------------------------------------------------------------ the views

fn columnstores(db: &Database) -> Vec<(String, ColumnStoreTable)> {
    let mut out = Vec::new();
    for name in db.catalog().table_names() {
        if let Some(TableEntry::ColumnStore(t)) = db.catalog().get(&name) {
            out.push((name, t));
        }
    }
    out
}

pub(crate) fn row_groups_view(db: &Database) -> VirtualTable {
    let schema = Schema::new(vec![
        field("table_name", DataType::Utf8, false),
        field("group_id", DataType::Int64, true),
        field("state", DataType::Utf8, false),
        field("total_rows", DataType::Int64, true),
        field("deleted_rows", DataType::Int64, true),
        field("bytes", DataType::Int64, true),
        field("generation", DataType::Int64, false),
    ]);
    let generation = int_u64(db.open_report().generation);
    let mut rows = Vec::new();
    for (name, t) in columnstores(db) {
        let intro = t.introspect();
        let delta_row = |d: &cstore_delta::DeltaStoreIntrospection, state: &str| {
            Row::new(vec![
                Value::str(name.clone()),
                Value::Int64(i64::from(d.id.0)),
                Value::str(state),
                int(d.rows),
                Value::Int64(0),
                int(d.approx_bytes),
                generation.clone(),
            ])
        };
        for d in &intro.closed {
            rows.push(delta_row(d, "CLOSED"));
        }
        if let Some(d) = &intro.open {
            rows.push(delta_row(d, "OPEN"));
        }
        for (g, &deleted) in intro.groups.iter().zip(&intro.deleted_rows) {
            let state = match g.level() {
                CompressionLevel::Columnstore => "COMPRESSED",
                CompressionLevel::Archive => "ARCHIVED",
            };
            rows.push(Row::new(vec![
                Value::str(name.clone()),
                Value::Int64(i64::from(g.id().0)),
                Value::str(state),
                int(g.n_rows()),
                int(deleted),
                int(g.encoded_bytes()),
                generation.clone(),
            ]));
        }
    }
    // Quarantined blobs surface with null sizes instead of vanishing.
    for table in &db.open_report().tables {
        for q in &table.quarantined {
            let group_id = match q.kind {
                QuarantinedKind::RowGroup(id) => Value::Int64(i64::from(id.0)),
                _ => Value::Null,
            };
            rows.push(Row::new(vec![
                Value::str(table.table.clone()),
                group_id,
                Value::str("QUARANTINED"),
                Value::Null,
                Value::Null,
                Value::Null,
                generation.clone(),
            ]));
        }
    }
    VirtualTable::new("sys.row_groups", schema, rows)
}

pub(crate) fn column_segments_view(db: &Database) -> VirtualTable {
    let schema = Schema::new(vec![
        field("table_name", DataType::Utf8, false),
        field("group_id", DataType::Int64, false),
        field("column_id", DataType::Int64, false),
        field("column_name", DataType::Utf8, false),
        field("encoding", DataType::Utf8, false),
        field("row_count", DataType::Int64, false),
        field("null_count", DataType::Int64, false),
        field("min_value", DataType::Utf8, true),
        field("max_value", DataType::Utf8, true),
        field("dictionary_id", DataType::Int64, true),
        field("encoded_bytes", DataType::Int64, false),
        field("raw_bytes", DataType::Int64, false),
        field("compression_ratio", DataType::Float64, false),
    ]);
    let mut rows = Vec::new();
    for (t_ord, (name, t)) in columnstores(db).into_iter().enumerate() {
        let intro = t.introspect();
        for g in &intro.groups {
            for col in 0..g.n_columns() {
                let m = g.seg_meta(col);
                let encoded = (m.payload_bytes + m.dict_bytes) as usize
                    + m.row_count.div_ceil(64) as usize * 8 * usize::from(m.null_count > 0);
                let raw = segment_raw_bytes(g, col);
                let ratio = raw as f64 / encoded.max(1) as f64;
                rows.push(Row::new(vec![
                    Value::str(name.clone()),
                    Value::Int64(i64::from(g.id().0)),
                    int(col),
                    Value::str(intro.schema.field(col).name.clone()),
                    Value::str(encoding_name(m.primary, m.payload)),
                    int_u64(u64::from(m.row_count)),
                    int_u64(u64::from(m.null_count)),
                    opt_str(m.min.as_ref().map(|v| v.to_string())),
                    opt_str(m.max.as_ref().map(|v| v.to_string())),
                    segment_dict_id(&intro, t_ord, g, col),
                    int(encoded),
                    int(raw),
                    Value::Float64(ratio),
                ]));
            }
        }
    }
    VirtualTable::new("sys.column_segments", schema, rows)
}

pub(crate) fn dictionaries_view(db: &Database) -> VirtualTable {
    let schema = Schema::new(vec![
        field("table_name", DataType::Utf8, false),
        field("dictionary_id", DataType::Int64, false),
        field("column_id", DataType::Int64, false),
        field("column_name", DataType::Utf8, false),
        field("scope", DataType::Utf8, false),
        field("entries", DataType::Int64, false),
        field("bytes", DataType::Int64, false),
    ]);
    let mut rows = Vec::new();
    for (t_ord, (name, t)) in columnstores(db).into_iter().enumerate() {
        let intro = t.introspect();
        for (col, dict) in intro.global_dicts.iter().enumerate() {
            if let Some(d) = dict {
                rows.push(Row::new(vec![
                    Value::str(name.clone()),
                    Value::Int64(global_dict_id(t_ord, col)),
                    int(col),
                    Value::str(intro.schema.field(col).name.clone()),
                    Value::str("GLOBAL"),
                    int(d.len()),
                    int(d.heap_bytes()),
                ]));
            }
        }
        for g in &intro.groups {
            if g.level() == CompressionLevel::Archive {
                continue; // archived groups fold dictionaries into payload
            }
            for col in 0..g.n_columns() {
                let Ok(seg) = g.open_segment(col) else {
                    continue;
                };
                let Some(d) = seg.dictionary() else {
                    continue;
                };
                let is_global = intro
                    .global_dicts
                    .get(col)
                    .and_then(|o| o.as_ref())
                    .is_some_and(|gd| Arc::ptr_eq(gd, d));
                if is_global {
                    continue; // already listed once, table-wide
                }
                rows.push(Row::new(vec![
                    Value::str(name.clone()),
                    Value::Int64(local_dict_id(t_ord, g.id().0, col)),
                    int(col),
                    Value::str(intro.schema.field(col).name.clone()),
                    Value::str("LOCAL"),
                    int(d.len()),
                    int(d.heap_bytes()),
                ]));
            }
        }
    }
    VirtualTable::new("sys.dictionaries", schema, rows)
}

pub(crate) fn tuple_mover_view(db: &Database) -> VirtualTable {
    let schema = Schema::new(vec![
        field("table_name", DataType::Utf8, false),
        field("state", DataType::Utf8, false),
        field("passes", DataType::Int64, false),
        field("stores_moved", DataType::Int64, false),
        field("rows_moved", DataType::Int64, false),
        field("transient_retries", DataType::Int64, false),
        field("restarts", DataType::Int64, false),
        field("consecutive_failures", DataType::Int64, false),
        field("last_error", DataType::Utf8, true),
    ]);
    let mut rows = Vec::new();
    for (table, status) in db.mover_statuses() {
        rows.push(Row::new(vec![
            Value::str(table),
            Value::str(format!("{:?}", status.state).to_ascii_uppercase()),
            int_u64(status.passes),
            int_u64(status.stores_moved),
            int_u64(status.rows_moved),
            int_u64(status.transient_retries),
            int_u64(u64::from(status.restarts)),
            int_u64(u64::from(status.consecutive_failures)),
            opt_str(status.last_error),
        ]));
    }
    VirtualTable::new("sys.tuple_mover", schema, rows)
}

pub(crate) fn query_log_view(db: &Database) -> VirtualTable {
    let schema = Schema::new(vec![
        field("query_id", DataType::Int64, false),
        field("query", DataType::Utf8, false),
        field("query_hash", DataType::Utf8, false),
        field("status", DataType::Utf8, false),
        field("error", DataType::Utf8, true),
        field("duration_us", DataType::Int64, false),
        field("rows", DataType::Int64, true),
        field("batches", DataType::Int64, true),
        field("plan_root", DataType::Utf8, true),
    ]);
    let mut rows = Vec::new();
    db.with_query_log(|log| {
        for e in log.entries() {
            let duration = int_u64(u64::try_from(e.duration.as_micros()).unwrap_or(u64::MAX));
            let hash = Value::str(format!("{:016x}", e.query_hash));
            let row = match &e.outcome {
                QueryOutcome::Ok {
                    rows: n,
                    batches,
                    plan_root,
                } => Row::new(vec![
                    int_u64(e.id),
                    Value::str(e.text.clone()),
                    hash,
                    Value::str("OK"),
                    Value::Null,
                    duration,
                    int(*n),
                    int_u64(*batches),
                    opt_str(plan_root.clone()),
                ]),
                QueryOutcome::Error(err) => Row::new(vec![
                    int_u64(e.id),
                    Value::str(e.text.clone()),
                    hash,
                    Value::str("ERROR"),
                    Value::str(err.clone()),
                    duration,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ]),
                QueryOutcome::RolledBack => Row::new(vec![
                    int_u64(e.id),
                    Value::str(e.text.clone()),
                    hash,
                    Value::str("ROLLBACK"),
                    Value::Null,
                    duration,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ]),
                QueryOutcome::Conflict(err) => Row::new(vec![
                    int_u64(e.id),
                    Value::str(e.text.clone()),
                    hash,
                    Value::str("CONFLICT"),
                    Value::str(err.clone()),
                    duration,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ]),
            };
            rows.push(row);
        }
    });
    VirtualTable::new("sys.query_log", schema, rows)
}

/// One row per wait class with any recorded waits (process-wide
/// accumulator, cumulative since start — the engine's
/// `sys.dm_os_wait_stats`).
pub(crate) fn wait_stats_view() -> VirtualTable {
    let schema = Schema::new(vec![
        field("wait_class", DataType::Utf8, false),
        field("wait_count", DataType::Int64, false),
        field("total_wait_ns", DataType::Int64, false),
        field("max_wait_ns", DataType::Int64, false),
        field("avg_wait_us", DataType::Float64, false),
    ]);
    let rows = cstore_common::waits::global_snapshot()
        .into_iter()
        .map(|s| {
            let avg_us = if s.count > 0 {
                s.total_ns as f64 / s.count as f64 / 1e3
            } else {
                0.0
            };
            Row::new(vec![
                Value::str(s.class),
                int_u64(s.count),
                int_u64(s.total_ns),
                int_u64(s.max_ns),
                Value::Float64(avg_us),
            ])
        })
        .collect();
    VirtualTable::new("sys.wait_stats", schema, rows)
}

/// One row per (interval, query shape): the Query Store surface.
/// `query_hash` is the same hex form `sys.query_log.query_hash` uses,
/// so the two views join directly.
pub(crate) fn query_store_view(db: &Database) -> VirtualTable {
    let schema = Schema::new(vec![
        field("interval_start_ms", DataType::Int64, false),
        field("query_hash", DataType::Utf8, false),
        field("query_shape", DataType::Utf8, false),
        field("executions", DataType::Int64, false),
        field("failures", DataType::Int64, false),
        field("timeouts", DataType::Int64, false),
        field("rows_returned", DataType::Int64, false),
        field("avg_elapsed_us", DataType::Float64, false),
        field("p50_elapsed_us", DataType::Int64, false),
        field("p99_elapsed_us", DataType::Int64, false),
        field("max_elapsed_us", DataType::Int64, false),
        field("total_wait_ns", DataType::Int64, false),
        field("waits", DataType::Utf8, true),
        field("spill_partitions", DataType::Int64, false),
        field("spill_bytes", DataType::Int64, false),
    ]);
    let mut rows = Vec::new();
    for interval in db.query_store().snapshot() {
        for shape in interval.shapes.values() {
            let avg = if shape.executions > 0 {
                shape.total_elapsed_us as f64 / shape.executions as f64
            } else {
                0.0
            };
            let total_wait_ns: u64 = shape.waits.values().map(|w| w.total_ns).sum();
            let summary = shape.waits_summary();
            rows.push(Row::new(vec![
                int_u64(interval.start_unix_ms),
                Value::str(format!("{:016x}", shape.shape_hash)),
                Value::str(shape.shape_text.clone()),
                int_u64(shape.executions),
                int_u64(shape.failures),
                int_u64(shape.timeouts),
                int_u64(shape.rows_returned),
                Value::Float64(avg),
                int_u64(shape.elapsed_quantile_us(0.50)),
                int_u64(shape.elapsed_quantile_us(0.99)),
                int_u64(shape.max_elapsed_us),
                int_u64(total_wait_ns),
                if summary.is_empty() {
                    Value::Null
                } else {
                    Value::str(summary)
                },
                int_u64(shape.spill_partitions),
                int_u64(shape.spill_bytes),
            ]));
        }
    }
    VirtualTable::new("sys.query_store", schema, rows)
}

/// One row per transaction: active ones first (by id), then the
/// recently finished ring (newest last). `commit_lsn` is null for
/// anything but a committed transaction; `abort_reason` records why an
/// aborted one ended (ROLLBACK, conflict, or the poisoning error).
pub(crate) fn transactions_view(db: &Database) -> VirtualTable {
    let schema = Schema::new(vec![
        field("txn_id", DataType::Int64, false),
        field("state", DataType::Utf8, false),
        field("statements", DataType::Int64, false),
        field("write_ops", DataType::Int64, false),
        field("snapshot_lsn", DataType::Int64, false),
        field("commit_lsn", DataType::Int64, true),
        field("abort_reason", DataType::Utf8, true),
    ]);
    let rows = db
        .txns()
        .view_rows()
        .into_iter()
        .map(|t| {
            Row::new(vec![
                int_u64(t.id),
                Value::str(t.state.as_str()),
                int_u64(t.statements),
                int_u64(t.write_ops),
                int_u64(t.snapshot_lsn),
                t.commit_lsn.map_or(Value::Null, int_u64),
                opt_str(t.abort_reason),
            ])
        })
        .collect();
    VirtualTable::new("sys.transactions", schema, rows)
}

/// One row per attached WAL (zero rows when the database runs without
/// one): segment layout, LSN watermarks, the last checkpoint and the
/// cumulative durability counters.
pub(crate) fn wal_view(db: &Database) -> VirtualTable {
    let schema = Schema::new(vec![
        field("segment_count", DataType::Int64, false),
        field("active_segment", DataType::Int64, false),
        field("tail_lsn", DataType::Int64, false),
        field("durable_lsn", DataType::Int64, false),
        field("sync_mode", DataType::Utf8, false),
        field("checkpoint_generation", DataType::Int64, true),
        field("checkpoint_lsn", DataType::Int64, true),
        field("records_appended", DataType::Int64, false),
        field("bytes_appended", DataType::Int64, false),
        field("fsyncs", DataType::Int64, false),
        field("flushes", DataType::Int64, false),
        field("checkpoints", DataType::Int64, false),
        field("segments_retired", DataType::Int64, false),
        field("records_replayed", DataType::Int64, false),
        field("records_truncated", DataType::Int64, false),
        field("segments_quarantined", DataType::Int64, false),
        field("failed", DataType::Utf8, true),
        field("state", DataType::Utf8, false),
        field("last_error", DataType::Utf8, true),
    ]);
    let mut rows = Vec::new();
    if let Some(s) = db.wal_status() {
        let opt_lsn = |v: Option<u64>| v.map_or(Value::Null, int_u64);
        let state = if s.failed.is_some() { "FAILED" } else { "OK" };
        rows.push(Row::new(vec![
            int_u64(s.segment_count),
            int_u64(s.active_segment),
            int_u64(s.tail_lsn),
            int_u64(s.durable_lsn),
            Value::str(s.sync_mode.as_str()),
            opt_lsn(s.last_checkpoint.map(|(g, _)| g)),
            opt_lsn(s.last_checkpoint.map(|(_, lsn)| lsn)),
            int_u64(s.counters.records_appended),
            int_u64(s.counters.bytes_appended),
            int_u64(s.counters.fsyncs),
            int_u64(s.counters.flushes),
            int_u64(s.counters.checkpoints),
            int_u64(s.counters.segments_retired),
            int_u64(s.counters.records_replayed),
            int_u64(s.counters.records_truncated),
            int_u64(s.counters.segments_quarantined),
            opt_str(s.failed.clone()),
            Value::str(state),
            opt_str(s.failed),
        ]));
    }
    VirtualTable::new("sys.wal", schema, rows)
}

/// One row per leveled lock registered with the runtime lockdep layer
/// (`cstore_common::sync`), ordered by declared level: acquisition and
/// contention counters, cumulative wait time, the longest observed hold,
/// and the count of lock-order violations observed at runtime (always 0
/// under `cfg(test)`/the `lockdep` feature, where a violation panics).
pub(crate) fn lock_stats_view() -> VirtualTable {
    let schema = Schema::new(vec![
        field("level", DataType::Int64, false),
        field("name", DataType::Utf8, false),
        field("acquisitions", DataType::Int64, false),
        field("contended", DataType::Int64, false),
        field("total_wait_ns", DataType::Int64, false),
        field("max_hold_ns", DataType::Int64, false),
        field("violations", DataType::Int64, false),
    ]);
    let rows = cstore_common::sync::lock_stats()
        .into_iter()
        .map(|s| {
            Row::new(vec![
                int_u64(u64::from(s.level)),
                Value::str(s.name),
                int_u64(s.acquisitions),
                int_u64(s.contended),
                int_u64(s.total_wait_ns),
                int_u64(s.max_hold_ns),
                int_u64(s.violations),
            ])
        })
        .collect();
    VirtualTable::new("sys.lock_stats", schema, rows)
}

/// A single row summarizing the resource governor: admission-gate
/// occupancy, the shared memory ledger, delta backpressure counters and
/// the health state machine. Counters are cumulative since process start.
pub(crate) fn resource_governor_view(db: &Database) -> VirtualTable {
    let schema = Schema::new(vec![
        field("admission_running", DataType::Int64, false),
        field("admission_queued", DataType::Int64, false),
        field("max_concurrent_queries", DataType::Int64, false),
        field("admitted_total", DataType::Int64, false),
        field("admission_rejected_total", DataType::Int64, false),
        field("admission_timeouts_total", DataType::Int64, false),
        field("mem_reserved_bytes", DataType::Int64, false),
        field("mem_peak_bytes", DataType::Int64, false),
        field("mem_limit_bytes", DataType::Int64, false),
        field("mem_exhausted_total", DataType::Int64, false),
        field("delta_high_water_mark", DataType::Int64, false),
        field("backpressure_waits_total", DataType::Int64, false),
        field("backpressure_rejected_total", DataType::Int64, false),
        field("health_state", DataType::Utf8, false),
        field("health_cause", DataType::Utf8, true),
        field("degraded_total", DataType::Int64, false),
        field("write_rejects_total", DataType::Int64, false),
        field("recovery_probes_total", DataType::Int64, false),
    ]);
    let s = db.governor().snapshot();
    let rows = vec![Row::new(vec![
        int_u64(s.admission_running),
        int_u64(s.admission_queued),
        int_u64(s.admission_max_concurrent),
        int_u64(s.admission_admitted_total),
        int_u64(s.admission_rejected_total),
        int_u64(s.admission_timeouts_total),
        int_u64(s.mem_reserved_bytes),
        int_u64(s.mem_peak_bytes),
        int_u64(s.mem_limit_bytes),
        int_u64(s.mem_exhausted_total),
        int_u64(s.backpressure_high_water),
        int_u64(s.backpressure_waits_total),
        int_u64(s.backpressure_rejected_total),
        Value::str(s.health_state()),
        opt_str(s.health_cause.clone()),
        int_u64(s.degraded_total),
        int_u64(s.write_rejects_total),
        int_u64(s.recovery_probes_total),
    ])];
    VirtualTable::new("sys.resource_governor", schema, rows)
}

impl Introspection for Database {
    fn sys_view(&self, name: &str) -> Option<VirtualTable> {
        match name {
            "sys.row_groups" => Some(row_groups_view(self)),
            "sys.column_segments" => Some(column_segments_view(self)),
            "sys.dictionaries" => Some(dictionaries_view(self)),
            "sys.tuple_mover" => Some(tuple_mover_view(self)),
            "sys.query_log" => Some(query_log_view(self)),
            "sys.wal" => Some(wal_view(self)),
            "sys.lock_stats" => Some(lock_stats_view()),
            "sys.resource_governor" => Some(resource_governor_view(self)),
            "sys.wait_stats" => Some(wait_stats_view()),
            "sys.query_store" => Some(query_store_view(self)),
            "sys.transactions" => Some(transactions_view(self)),
            _ => None,
        }
    }
}
