//! The user-facing database facade.
//!
//! [`Database`] ties the workspace together: a catalog of columnstore and
//! heap tables, the SQL front end, the optimizer, and both execution
//! engines — plus the administrative surface the paper's features need
//! (bulk load, tuple mover control, archival compression, statistics).

pub mod catalog;
pub mod database;
pub mod introspect;
pub mod persist;
pub mod query_store;
pub mod txn;

pub use catalog::{Catalog, TableEntry};
pub use cstore_planner::ExecMode;
pub use database::{Database, QueryResult, TxnAck};
pub use introspect::{
    Introspection, QueryLog, QueryLogEntry, QueryOutcome, SysCatalog, SYS_VIEW_NAMES,
};
pub use persist::{OpenMode, OpenReport, TableOpenReport, VerifyReport};
pub use query_store::{QuerySample, QueryStore};
pub use txn::{TxnInfo, TxnManager, TxnState};
