//! The transaction manager: ids, row locks, and the `sys.transactions`
//! history ring.
//!
//! One [`TxnManager`] is shared by every session of a database. It is
//! deliberately small: per-transaction *state* (the write set, the
//! pinned snapshots) lives in the owning session; what must be global
//! is only (a) the id allocator, (b) the row-lock table that makes
//! write-write conflicts deterministic — first writer locks, second
//! writer gets a clean `CONFLICT` error — and (c) enough bookkeeping to
//! serve `sys.transactions`.
//!
//! ## Locking
//!
//! The single `txn.manager` mutex (level 16, see `LOCK_ORDER.md`) is a
//! leaf: every method acquires it, mutates plain maps, and releases it
//! before returning. No method calls into tables, the WAL, or any other
//! locked subsystem while holding it.
//!
//! ## Conflict rule
//!
//! A transaction locks `(table, rid)` before buffering a delete/update
//! of that row. Locks are held until the transaction finishes (commit
//! or abort) — there is no deadlock risk because lock acquisition never
//! blocks: a held lock is an immediate `Error::Conflict` for the loser,
//! the paper-engine analogue of SQL Server's update conflict under
//! snapshot isolation. Auto-commit writers consult the same table so an
//! implicit statement cannot silently overwrite a row an open
//! transaction has written.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use cstore_common::sync::Mutex;
use cstore_common::{Error, Result, RowId};

/// How many finished transactions `sys.transactions` remembers.
const RECENT_CAP: usize = 64;

/// Lifecycle state of a transaction, as shown in `sys.transactions`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    Active,
    Committed,
    Aborted,
}

impl TxnState {
    pub fn as_str(self) -> &'static str {
        match self {
            TxnState::Active => "ACTIVE",
            TxnState::Committed => "COMMITTED",
            TxnState::Aborted => "ABORTED",
        }
    }
}

/// Bookkeeping for one transaction (active or recently finished).
#[derive(Debug, Clone)]
pub struct TxnInfo {
    pub id: u64,
    pub state: TxnState,
    /// Statements executed inside the transaction (BEGIN excluded).
    pub statements: u64,
    /// Buffered write operations (inserts + deletes; an UPDATE is two).
    pub write_ops: u64,
    /// WAL tail LSN when the snapshot was pinned at BEGIN.
    pub snapshot_lsn: u64,
    /// LSN of the TxnCommit record, for committed transactions.
    pub commit_lsn: Option<u64>,
    /// Why the transaction aborted (rollback, conflict, poison cause).
    pub abort_reason: Option<String>,
}

/// Cumulative counters surfaced through `sys.transactions` consumers.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxnCounters {
    pub started: u64,
    pub committed: u64,
    pub rolled_back: u64,
    pub conflicts: u64,
}

#[derive(Default)]
struct TxnTable {
    next_id: u64,
    active: BTreeMap<u64, TxnInfo>,
    /// `(table, packed rid) -> owning txn id`. Never blocks: a foreign
    /// owner is an immediate conflict.
    row_locks: HashMap<(String, u64), u64>,
    /// Recently finished transactions, newest last.
    recent: VecDeque<TxnInfo>,
    counters: TxnCounters,
}

/// Shared transaction manager; see the module docs.
pub struct TxnManager {
    txn_state: Mutex<TxnTable>,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    pub fn new() -> Self {
        TxnManager {
            txn_state: Mutex::new_leveled(16, "txn.manager", TxnTable::default()),
        }
    }

    /// Allocate an id and register an ACTIVE transaction.
    pub fn begin(&self, snapshot_lsn: u64) -> u64 {
        let mut st = self.txn_state.lock();
        st.next_id += 1;
        let id = st.next_id;
        st.counters.started += 1;
        st.active.insert(
            id,
            TxnInfo {
                id,
                state: TxnState::Active,
                statements: 0,
                write_ops: 0,
                snapshot_lsn,
                commit_lsn: None,
                abort_reason: None,
            },
        );
        id
    }

    /// Lock `(table, rid)` for `txn`, or fail with `Error::Conflict` if
    /// another active transaction holds it. Re-locking an own lock is a
    /// no-op.
    pub fn lock_row(&self, txn: u64, table: &str, rid: RowId) -> Result<()> {
        let key = (table.to_ascii_lowercase(), rid.pack());
        let mut st = self.txn_state.lock();
        match st.row_locks.get(&key) {
            Some(&owner) if owner != txn => {
                st.counters.conflicts += 1;
                Err(Error::Conflict(format!(
                    "row {}:{} is write-locked by transaction {owner}",
                    key.0, key.1
                )))
            }
            Some(_) => Ok(()),
            None => {
                st.row_locks.insert(key, txn);
                Ok(())
            }
        }
    }

    /// The active transaction (other than `txn`, if given) holding a
    /// write lock on `(table, rid)` — how auto-commit writers detect
    /// they would trample an open transaction's write.
    pub fn locked_by_other(&self, table: &str, rid: RowId, txn: Option<u64>) -> Option<u64> {
        let key = (table.to_ascii_lowercase(), rid.pack());
        let st = self.txn_state.lock();
        st.row_locks
            .get(&key)
            .copied()
            .filter(|owner| Some(*owner) != txn)
    }

    /// Count a conflict surfaced outside `lock_row` (commit-time
    /// verification losses).
    pub fn note_conflict(&self) {
        self.txn_state.lock().counters.conflicts += 1;
    }

    /// Update the live statement/write-op tallies for an active txn.
    pub fn note_progress(&self, txn: u64, statements: u64, write_ops: u64) {
        let mut st = self.txn_state.lock();
        if let Some(info) = st.active.get_mut(&txn) {
            info.statements = statements;
            info.write_ops = write_ops;
        }
    }

    /// Finish `txn`: release its row locks, stamp the outcome, move it
    /// to the recent ring, and bump counters.
    pub fn finish(
        &self,
        txn: u64,
        state: TxnState,
        commit_lsn: Option<u64>,
        abort_reason: Option<String>,
        statements: u64,
        write_ops: u64,
    ) {
        let mut st = self.txn_state.lock();
        st.row_locks.retain(|_, owner| *owner != txn);
        let Some(mut info) = st.active.remove(&txn) else {
            return;
        };
        info.state = state;
        info.commit_lsn = commit_lsn;
        info.abort_reason = abort_reason;
        info.statements = statements;
        info.write_ops = write_ops;
        match state {
            TxnState::Committed => st.counters.committed += 1,
            TxnState::Aborted => st.counters.rolled_back += 1,
            TxnState::Active => {}
        }
        st.recent.push_back(info);
        while st.recent.len() > RECENT_CAP {
            st.recent.pop_front();
        }
    }

    /// Number of currently active transactions.
    pub fn active_count(&self) -> usize {
        self.txn_state.lock().active.len()
    }

    pub fn counters(&self) -> TxnCounters {
        self.txn_state.lock().counters
    }

    /// Active transactions first (by id), then the recent ring (newest
    /// last) — the rows behind `sys.transactions`.
    pub fn view_rows(&self) -> Vec<TxnInfo> {
        let st = self.txn_state.lock();
        st.active
            .values()
            .cloned()
            .chain(st.recent.iter().cloned())
            .collect()
    }
}

/// Convenience alias: the manager is always shared.
pub type SharedTxnManager = Arc<TxnManager>;

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_common::RowGroupId;

    fn rid(g: u32, t: u32) -> RowId {
        RowId::new(RowGroupId(g), t)
    }

    #[test]
    fn ids_are_unique_and_counted() {
        let m = TxnManager::new();
        let a = m.begin(5);
        let b = m.begin(9);
        assert_ne!(a, b);
        assert_eq!(m.active_count(), 2);
        assert_eq!(m.counters().started, 2);
    }

    #[test]
    fn second_locker_conflicts_and_finish_releases() {
        let m = TxnManager::new();
        let a = m.begin(0);
        let b = m.begin(0);
        m.lock_row(a, "t", rid(1, 2)).unwrap();
        // Re-lock by the owner is fine; another txn conflicts.
        m.lock_row(a, "T", rid(1, 2)).unwrap();
        let err = m.lock_row(b, "t", rid(1, 2)).unwrap_err();
        assert_eq!(err.code(), "CONFLICT");
        assert_eq!(m.counters().conflicts, 1);
        assert_eq!(m.locked_by_other("t", rid(1, 2), Some(b)), Some(a));
        assert_eq!(m.locked_by_other("t", rid(1, 2), Some(a)), None);
        assert_eq!(m.locked_by_other("t", rid(9, 9), None), None);
        m.finish(a, TxnState::Aborted, None, Some("rollback".into()), 1, 1);
        m.lock_row(b, "t", rid(1, 2)).unwrap();
        assert_eq!(m.counters().rolled_back, 1);
    }

    #[test]
    fn view_rows_holds_active_then_recent() {
        let m = TxnManager::new();
        let a = m.begin(3);
        m.finish(a, TxnState::Committed, Some(17), None, 2, 4);
        let b = m.begin(20);
        let rows = m.view_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, b);
        assert_eq!(rows[0].state, TxnState::Active);
        assert_eq!(rows[1].id, a);
        assert_eq!(rows[1].state, TxnState::Committed);
        assert_eq!(rows[1].commit_lsn, Some(17));
        assert_eq!(rows[1].write_ops, 4);
    }

    #[test]
    fn recent_ring_is_bounded() {
        let m = TxnManager::new();
        for _ in 0..(RECENT_CAP + 10) {
            let id = m.begin(0);
            m.finish(id, TxnState::Committed, None, None, 0, 0);
        }
        assert_eq!(m.view_rows().len(), RECENT_CAP);
    }
}
