//! The `Database` facade: SQL in, results out.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cstore_common::fault::FaultInjector;
use cstore_common::governor::Governor;
use cstore_common::metrics::{self, LATENCY_BUCKETS_US};
use cstore_common::sync::Mutex;
use cstore_common::{
    convert, DataType, Error, Field, Result, Row, RowGroupId, RowId, Schema, Value,
};
use cstore_delta::{
    MoverState, MoverStatus, TableConfig, TableSnapshot, TupleMover, Wal, WalHandle, WalOptions,
    WalRecord, WalReplayReport, WalStatus, WalSyncMode,
};
use cstore_exec::ops::collect_rows;
use cstore_exec::{ExecContext, Expr};
use cstore_planner::explain::{explain, explain_analyze};
use cstore_planner::physical::build_physical;
use cstore_planner::rules::optimize;
use cstore_planner::ExecMode;
use cstore_sql::ast::{SetValue, Statement, TableOrganization};
use cstore_sql::{bind_expr_on_schema, bind_select, coerce, literal_value, parse};

use crate::catalog::{Catalog, TableEntry};
use crate::introspect::{QueryLog, QueryOutcome, SysCatalog};
use crate::persist::{self, OpenMode, OpenReport, TableOpenReport, VerifyReport};
use crate::txn::{TxnManager, TxnState};

/// Catalog manifest magic: "CSCB".
const CATALOG_MAGIC: u32 = 0x4243_5343;
/// Catalog manifest version 2: generation-stamped (v1 had no generation
/// and lived under the un-prefixed `catalog` key).
const CATALOG_VERSION: u16 = 2;

/// One table as described by a catalog manifest.
struct CatalogEntry {
    name: String,
    is_heap: bool,
    schema: Schema,
}

/// The result of executing one statement.
#[derive(Debug)]
pub enum QueryResult {
    /// A result set.
    Rows {
        columns: Vec<String>,
        /// Output column types (decimal scales drive display formatting).
        types: Vec<DataType>,
        rows: Vec<Row>,
        /// The execution mode the optimizer chose.
        mode: ExecMode,
        /// Execution counters (segment elimination, bitmap drops, ...).
        metrics: Vec<(&'static str, u64)>,
        /// Label of the top-level plan operator (for `sys.query_log`).
        plan_root: Option<String>,
        elapsed: Duration,
    },
    /// DML row count.
    Affected(usize),
    /// DDL acknowledgement.
    Created,
    /// EXPLAIN output.
    Explain(String),
    /// Transaction-control acknowledgement (BEGIN / COMMIT / ROLLBACK).
    Txn(TxnAck),
}

/// Which transaction-control statement succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnAck {
    Begun,
    Committed,
    RolledBack,
}

impl QueryResult {
    /// The rows of a result set (panics on non-queries; test/demo helper).
    pub fn rows(&self) -> &[Row] {
        match self {
            QueryResult::Rows { rows, .. } => rows,
            // lint: allow(panic) — documented panicking accessor for
            // tests and demos
            other => panic!("expected rows, got {other:?}"),
        }
    }

    pub fn columns(&self) -> &[String] {
        match self {
            QueryResult::Rows { columns, .. } => columns,
            // lint: allow(panic) — documented panicking accessor for
            // tests and demos
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// Rows affected by DML (panics otherwise).
    pub fn affected(&self) -> usize {
        match self {
            QueryResult::Affected(n) => *n,
            // lint: allow(panic) — documented panicking accessor for
            // tests and demos
            other => panic!("expected affected count, got {other:?}"),
        }
    }

    /// Render one value for display, applying the column's decimal scale.
    pub fn format_value(v: &Value, ty: DataType) -> String {
        match (v, ty) {
            (Value::Decimal(m), DataType::Decimal { scale: 0 }) => m.to_string(),
            (Value::Decimal(m), DataType::Decimal { scale }) => {
                let factor = 10i64.pow(scale as u32);
                let sign = if *m < 0 { "-" } else { "" };
                let (int, frac) = ((m / factor).abs(), (m % factor).abs());
                format!("{sign}{int}.{frac:0width$}", width = scale as usize)
            }
            _ => v.to_string(),
        }
    }

    /// Render a result set as an aligned text table.
    pub fn to_table(&self) -> String {
        let QueryResult::Rows {
            columns,
            types,
            rows,
            ..
        } = self
        else {
            return format!("{self:?}");
        };
        let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
        let cells: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .zip(types)
                    .map(|(v, &ty)| Self::format_value(v, ty))
                    .collect()
            })
            .collect();
        for row in &cells {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        for (w, c) in widths.iter().zip(columns) {
            out.push_str(&format!("{c:<w$}  "));
        }
        out.push('\n');
        for w in &widths {
            out.push_str(&"-".repeat(*w));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (w, c) in widths.iter().zip(row) {
                out.push_str(&format!("{c:<w$}  "));
            }
            out.push('\n');
        }
        out
    }
}

/// The pseudo row-group id of rows a transaction has inserted but not
/// yet committed. Real row groups never reach this id, so a synthetic
/// rid can't collide with a live one, and commit-time replay resolves
/// it by value (the group does not exist in the live table).
const TXN_GROUP: RowGroupId = RowGroupId(u32::MAX);

/// In-transaction WAL chunking for multi-row inserts — mirrors the
/// auto-commit trickle path so replay cost stays bounded per frame.
const TXN_WAL_BATCH_ROWS: usize = 4096;

/// One session's transaction state (guarded by the `db.session` mutex,
/// level 17 — a leaf that is never held across statement execution).
enum SessionTxn {
    /// Auto-commit: every statement commits by itself.
    None,
    /// An explicit transaction is open and accepting statements.
    Active(Box<ActiveTxn>),
    /// A statement inside the transaction failed: the transaction is
    /// abort-only. Every further statement is rejected until ROLLBACK
    /// (or COMMIT, which rolls back and reports the original error).
    Poisoned { txn: Box<ActiveTxn>, reason: String },
}

/// A buffered, uncommitted transaction: pinned base snapshots plus a
/// private write set. Nothing here is visible to other sessions until
/// commit applies it.
struct ActiveTxn {
    id: u64,
    /// Per-table pinned snapshot + overlay write set, keyed by
    /// lowercased table name.
    overlays: BTreeMap<String, TableOverlay>,
    /// The write set in log order — exactly mirrors the TxnOp frames
    /// already in the WAL, so commit-apply and crash-replay perform the
    /// same operations in the same order.
    ops: Vec<TxnWriteOp>,
    /// Statements executed so far (for `sys.transactions`).
    statements: u64,
}

/// Rollback point for statement-level atomicity: `ops` length plus a
/// deep copy of every overlay's mutable write set. A failed statement
/// restores this, leaving any WAL frames the half-statement logged as
/// orphans — safe only because the transaction is then poisoned and can
/// never log a TxnCommit that would replay them.
struct TxnCheckpoint {
    ops_len: usize,
    overlays: BTreeMap<String, (Vec<(RowId, Row)>, Vec<(u32, Row)>, u32)>,
}

impl ActiveTxn {
    fn checkpoint(&self) -> TxnCheckpoint {
        TxnCheckpoint {
            ops_len: self.ops.len(),
            overlays: self
                .overlays
                .iter()
                .map(|(name, ov)| {
                    (
                        name.clone(),
                        (ov.deleted.clone(), ov.inserted.clone(), ov.next_synth),
                    )
                })
                .collect(),
        }
    }

    fn restore(&mut self, ckpt: TxnCheckpoint) {
        self.ops.truncate(ckpt.ops_len);
        // Overlays only ever gain entries within a statement; drop any
        // the failed statement created, restore the rest.
        self.overlays
            .retain(|name, _| ckpt.overlays.contains_key(name));
        for (name, (deleted, inserted, next_synth)) in ckpt.overlays {
            if let Some(ov) = self.overlays.get_mut(&name) {
                ov.deleted = deleted;
                ov.inserted = inserted;
                ov.next_synth = next_synth;
            }
        }
    }

    /// The overlay for `key`, creating one lazily (with a live base
    /// snapshot) for tables that appeared after BEGIN.
    fn overlay_mut(&mut self, key: &str, t: &cstore_delta::ColumnStoreTable) -> &mut TableOverlay {
        self.overlays
            .entry(key.to_string())
            .or_insert_with(|| TableOverlay::new(t.snapshot()))
    }

    /// Per-table effective snapshots (base + overlay), for scans.
    fn snapshots(&self) -> Arc<HashMap<String, TableSnapshot>> {
        Arc::new(
            self.overlays
                .iter()
                .map(|(name, ov)| (name.clone(), ov.effective()))
                .collect(),
        )
    }
}

/// One table's view inside a transaction: the base snapshot pinned at
/// BEGIN (or first touch) plus this transaction's private writes.
struct TableOverlay {
    base: TableSnapshot,
    /// Base rows this transaction deleted, value-verified at commit.
    deleted: Vec<(RowId, Row)>,
    /// Rows this transaction inserted, under synthetic tuple ids in
    /// [`TXN_GROUP`]. Deleting an own insert removes it from here.
    inserted: Vec<(u32, Row)>,
    /// Next synthetic tuple id.
    next_synth: u32,
}

impl TableOverlay {
    fn new(base: TableSnapshot) -> Self {
        TableOverlay {
            base,
            deleted: Vec::new(),
            inserted: Vec::new(),
            next_synth: 0,
        }
    }

    /// Materialize the view scans see: base minus own deletes plus own
    /// inserts (as delta rows in the synthetic group).
    fn effective(&self) -> TableSnapshot {
        let mut deleted = self.base.deleted().clone();
        let mut delta: Vec<(RowId, Row)> = self.base.delta_rows().to_vec();
        for (rid, _) in &self.deleted {
            if self.base.group_by_id(rid.group).is_some() {
                deleted.delete(*rid);
            } else if let Some(pos) = delta.iter().position(|(r, _)| r == rid) {
                delta.remove(pos);
            }
        }
        for (synth, row) in &self.inserted {
            delta.push((RowId::new(TXN_GROUP, *synth), row.clone()));
        }
        TableSnapshot::new(
            self.base.schema().clone(),
            self.base.groups().to_vec(),
            delta,
            deleted,
        )
    }
}

/// One buffered write, in log order. An UPDATE contributes a Delete and
/// an Insert per victim — the same two frames crash-replay applies.
enum TxnWriteOp {
    Insert { table: String, rows: Vec<Row> },
    Delete { table: String, rid: RowId, row: Row },
}

/// What commit-apply actually did, for exact undo when the TxnCommit
/// record cannot be made durable (torn commit) or a conflict surfaces.
enum AppliedOp {
    /// Rows inserted, with the rids they landed at.
    Insert {
        table: String,
        rows: Vec<(RowId, Row)>,
    },
    /// A row deleted (undo re-inserts it by value).
    Delete { table: String, row: Row },
}

/// An embedded analytical database: updatable columnstore tables (plus
/// heap baselines), batch-mode execution, and a SQL surface.
#[derive(Clone)]
pub struct Database {
    catalog: Catalog,
    ctx: ExecContext,
    mode: ExecMode,
    table_config: TableConfig,
    /// Live status handles of background tuple movers started through
    /// [`Database::start_tuple_mover`], keyed by table, so
    /// [`Database::metrics`] can fold mover counters in without owning
    /// the movers.
    movers: Arc<Mutex<Vec<(String, Arc<Mutex<MoverStatus>>)>>>,
    /// What a degraded open skipped; empty for fresh databases and
    /// clean opens. Immutable once the database is constructed.
    open_report: Arc<OpenReport>,
    /// Ring of the last [`crate::introspect::QUERY_LOG_CAPACITY`]
    /// statements — successes *and* errors — behind `sys.query_log`.
    query_log: Arc<Mutex<QueryLog>>,
    /// The write-ahead log, when one is attached (durable opens attach
    /// one automatically; in-memory databases run without). Shared with
    /// every columnstore table via [`cstore_delta::WalHandle`].
    wal: Arc<Mutex<Option<Arc<Wal>>>>,
    /// `SET query_timeout_ms` session option; `0` means no timeout.
    query_timeout_ms: Arc<AtomicU64>,
    /// `SET wal_sync` durability mode ([`WalSyncMode`] as `u8`). Applied
    /// to the attached WAL immediately and remembered so a WAL attached
    /// later starts in the chosen mode.
    wal_sync: Arc<AtomicU8>,
    /// The resource governor: admission control, the shared memory
    /// ledger, delta backpressure and the health state machine. Shared
    /// with every columnstore table and with the exec context.
    governor: Arc<Governor>,
    /// Per-shape workload history behind `sys.query_store`, persisted
    /// through save/open.
    query_store: Arc<crate::query_store::QueryStore>,
    /// The transaction manager shared by every session: txn ids, row
    /// locks (write-write conflict detection) and `sys.transactions`.
    txns: Arc<TxnManager>,
    /// This session's transaction state. [`Database::new_session`]
    /// replaces only this Arc, so sessions share everything else.
    session: Arc<Mutex<SessionTxn>>,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    pub fn new() -> Self {
        let governor = Arc::new(Governor::new());
        Database {
            catalog: Catalog::new(),
            ctx: ExecContext::default().with_ledger(Arc::clone(governor.ledger())),
            mode: ExecMode::Auto,
            table_config: TableConfig::default(),
            movers: Arc::new(Mutex::new_leveled(4, "db.movers", Vec::new())),
            open_report: Arc::new(OpenReport::default()),
            query_log: Arc::new(Mutex::new_leveled(7, "db.query_log", QueryLog::default())),
            wal: Arc::new(Mutex::new_leveled(8, "db.wal", None)),
            query_timeout_ms: Arc::new(AtomicU64::new(0)),
            wal_sync: Arc::new(AtomicU8::new(WalSyncMode::default().to_u8())),
            governor,
            query_store: Arc::new(crate::query_store::QueryStore::new()),
            txns: Arc::new(TxnManager::new()),
            session: Arc::new(Mutex::new_leveled(17, "db.session", SessionTxn::None)),
        }
    }

    /// A new session over the same database: shares the catalog, WAL,
    /// governor, transaction manager and telemetry, but has its own
    /// transaction state — two sessions can hold overlapping
    /// transactions with independent snapshots. A session is intended
    /// for single-threaded use (like one client connection).
    pub fn new_session(&self) -> Database {
        let mut db = self.clone();
        db.session = Arc::new(Mutex::new_leveled(17, "db.session", SessionTxn::None));
        db
    }

    /// Whether this session has an open (or poisoned) transaction.
    pub fn in_transaction(&self) -> bool {
        !matches!(*self.session.lock(), SessionTxn::None)
    }

    /// The shared transaction manager (row locks, `sys.transactions`).
    pub fn txns(&self) -> &Arc<TxnManager> {
        &self.txns
    }

    /// Override the execution context (memory budget, batch size, metrics).
    /// The context is re-wired to this database's governor ledger so its
    /// queries stay inside the shared memory budget.
    pub fn with_exec_context(mut self, ctx: ExecContext) -> Self {
        self.ctx = ctx.with_ledger(Arc::clone(self.governor.ledger()));
        self
    }

    /// The database's resource governor (admission gate, memory ledger,
    /// backpressure gate, health state machine).
    pub fn governor(&self) -> &Arc<Governor> {
        &self.governor
    }

    /// The per-shape workload history behind `sys.query_store`.
    pub fn query_store(&self) -> &Arc<crate::query_store::QueryStore> {
        &self.query_store
    }

    /// Force an execution mode for all queries (default: cost-based).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Default configuration for new columnstore tables.
    pub fn with_table_config(mut self, config: TableConfig) -> Self {
        self.table_config = config;
        self
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn exec_context(&self) -> &ExecContext {
        &self.ctx
    }

    /// The report of the open that produced this database (empty for
    /// fresh databases); `sys.row_groups` surfaces its quarantines.
    pub fn open_report(&self) -> &OpenReport {
        &self.open_report
    }

    /// Point-in-time status of every registered background tuple mover.
    pub fn mover_statuses(&self) -> Vec<(String, MoverStatus)> {
        self.movers
            .lock()
            .iter()
            // lint: allow(lock-order) — `status` is the mover.status Arc
            // (level 5) yielded by the movers map; 4 → 5 ascends.
            .map(|(name, status)| (name.clone(), status.lock().clone()))
            .collect()
    }

    /// Run `f` against the recent-query ring.
    pub fn with_query_log<R>(&self, f: impl FnOnce(&QueryLog) -> R) -> R {
        f(&self.query_log.lock())
    }

    /// Execute one SQL statement. Every statement — including ones that
    /// fail to parse, bind or execute — lands in `sys.query_log`.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let _query_span = cstore_common::trace::global().span("query");
        let start = Instant::now();
        let shape = cstore_sql::query_shape(sql);
        // Per-query wait frame, installed *before* admission so time
        // spent queued at the gate is charged to the waiting statement,
        // not to whichever query happens to be running. Every blocking
        // point this thread (and its scan workers) hits records into it;
        // `ExecContext::for_query` adopts the same frame.
        let waits = Arc::new(cstore_common::waits::WaitProfile::new());
        let _wait_scope = cstore_common::waits::install(Arc::clone(&waits));
        // Admission control: acquire (and hold, via the permit) a query
        // slot for the whole statement. A saturated gate parks the caller
        // up to the admission timeout; rejections land in the query log
        // like any other error.
        let result = match self.governor.admit_query() {
            Ok(_permit) => self.execute_traced(sql),
            Err(e) => Err(e),
        };
        let elapsed = start.elapsed();
        let metric = |snapshot: &[(&str, u64)], name: &str| {
            snapshot
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, v)| *v)
        };
        let (rows_returned, spill_partitions, spill_bytes) = match &result {
            Ok(QueryResult::Rows { rows, metrics, .. }) => (
                rows.len() as u64,
                metric(metrics, "partitions_spilled"),
                metric(metrics, "bytes_spilled"),
            ),
            _ => (0, 0, 0),
        };
        let outcome = match &result {
            Ok(QueryResult::Rows {
                rows,
                metrics,
                plan_root,
                ..
            }) => QueryOutcome::Ok {
                rows: rows.len(),
                batches: metric(metrics, "batches"),
                plan_root: plan_root.clone(),
            },
            // Rollbacks are not errors, but they are not successful work
            // either: the Query Store counts them as failures and the
            // query log shows a distinct ROLLBACK status.
            Ok(QueryResult::Txn(TxnAck::RolledBack)) => QueryOutcome::RolledBack,
            Ok(_) => QueryOutcome::Ok {
                rows: 0,
                batches: 0,
                plan_root: None,
            },
            Err(e) if e.code() == "CONFLICT" => {
                metrics::global().counter("cstore_query_errors_total").inc();
                metrics::global()
                    .counter("cstore_txn_conflicts_total")
                    .inc();
                QueryOutcome::Conflict(e.to_string())
            }
            Err(e) => {
                metrics::global().counter("cstore_query_errors_total").inc();
                QueryOutcome::Error(e.to_string())
            }
        };
        let rolled_back = matches!(&result, Ok(QueryResult::Txn(TxnAck::RolledBack)));
        let (failed, timed_out) = match &result {
            Ok(_) => (rolled_back, false),
            Err(e) => (true, e.to_string().contains("query timeout")),
        };
        self.query_log
            .lock()
            .record(sql, shape.hash, elapsed, outcome);
        self.query_store.record(&crate::query_store::QuerySample {
            shape_hash: shape.hash,
            shape_text: shape.text,
            elapsed,
            rows: rows_returned,
            failed,
            timed_out,
            waits: waits.snapshot(),
            spill_partitions,
            spill_bytes,
        });
        result
    }

    fn execute_traced(&self, sql: &str) -> Result<QueryResult> {
        let stmt = {
            let _span = cstore_common::trace::global().span("parse");
            parse(sql)?
        };
        self.execute_statement(stmt)
    }

    fn execute_statement(&self, stmt: Statement) -> Result<QueryResult> {
        // Transaction control first: these transition the session state
        // and never run inside the statement wrapper below.
        match stmt {
            Statement::Begin => return self.txn_begin(),
            Statement::Commit => return self.txn_commit(),
            Statement::Rollback => return self.txn_rollback(),
            _ => {}
        }
        // Take any open transaction out of the session for the
        // statement's duration: `db.session` is a leaf mutex (level 17)
        // and must not be held across execution. Sessions are
        // single-threaded by contract (one client connection each).
        let open = {
            let mut s = self.session.lock();
            if let SessionTxn::Poisoned { reason, .. } = &*s {
                return Err(Error::Sql(format!(
                    "transaction aborted by an earlier error ({reason}); ROLLBACK required"
                )));
            }
            match std::mem::replace(&mut *s, SessionTxn::None) {
                SessionTxn::Active(t) => Some(t),
                other => {
                    *s = other;
                    None
                }
            }
        };
        let Some(mut txn) = open else {
            return self.dispatch_autocommit(stmt);
        };
        let ckpt = txn.checkpoint();
        let result = self.execute_in_txn(&mut txn, stmt);
        match result {
            Ok(r) => {
                txn.statements += 1;
                self.txns
                    .note_progress(txn.id, txn.statements, txn.ops.len() as u64);
                *self.session.lock() = SessionTxn::Active(txn);
                Ok(r)
            }
            Err(e) => {
                // Statement-level atomicity: undo the half-statement's
                // buffered writes, then poison the transaction. Any WAL
                // frames the half-statement already logged become
                // orphans — safe, because a poisoned transaction can
                // never log the TxnCommit that would replay them.
                txn.restore(ckpt);
                *self.session.lock() = SessionTxn::Poisoned {
                    txn,
                    reason: e.to_string(),
                };
                Err(e)
            }
        }
    }

    fn dispatch_autocommit(&self, stmt: Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Select(s) => self.run_select(&s, None),
            Statement::UnionAll(branches) => self.run_union(&branches, None),
            Statement::Explain { analyze, stmt } => self.run_explain(*stmt, analyze, None),
            Statement::CreateTable {
                name,
                columns,
                organization,
            } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|c| Field::new(c.name, c.data_type, c.nullable))
                        .collect(),
                );
                match organization {
                    TableOrganization::Columnstore => {
                        let t = self.catalog.create_columnstore(
                            &name,
                            schema,
                            self.table_config.clone(),
                        )?;
                        // New columnstores join the WAL immediately so
                        // trickle DML on them is durable from row one.
                        // (Clone out of the guard first: set_wal takes the
                        // table lock, which must not nest inside db.wal.)
                        let wal = self.wal.lock().clone();
                        if let Some(wal) = wal {
                            t.set_wal(WalHandle {
                                wal,
                                table: name.to_ascii_lowercase(),
                            });
                        }
                        t.set_governor(Arc::clone(&self.governor));
                    }
                    TableOrganization::Heap => self.catalog.create_heap(&name, schema)?,
                }
                Ok(QueryResult::Created)
            }
            Statement::Analyze { table } => {
                self.analyze(&table, 16_384)?;
                Ok(QueryResult::Created)
            }
            Statement::Set { option, value } => self.run_set(&option, value),
            Statement::Insert { table, rows } => self.run_insert(&table, rows),
            Statement::Delete { table, selection } => self.run_delete(&table, selection),
            Statement::Update {
                table,
                assignments,
                selection,
            } => self.run_update(&table, assignments, selection),
            // Dispatched by `execute_statement` before this point.
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::Sql(
                "transaction control cannot nest inside a statement".into(),
            )),
        }
    }

    /// Run one statement against an open transaction: reads see the
    /// pinned snapshots plus the private write set; writes buffer into
    /// the overlay and log TxnOp frames at statement time.
    fn execute_in_txn(&self, txn: &mut ActiveTxn, stmt: Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Select(s) => self.run_select(&s, Some(txn.snapshots())),
            Statement::UnionAll(branches) => self.run_union(&branches, Some(txn.snapshots())),
            Statement::Explain { analyze, stmt } => {
                self.run_explain(*stmt, analyze, Some(txn.snapshots()))
            }
            // SET tunes session options, not data — it runs (and can
            // fail) outside the transaction's write set either way.
            Statement::Set { option, value } => self.run_set(&option, value),
            Statement::Insert { table, rows } => self.txn_insert(txn, &table, rows),
            Statement::Delete { table, selection } => self.txn_delete(txn, &table, selection),
            Statement::Update {
                table,
                assignments,
                selection,
            } => self.txn_update(txn, &table, assignments, selection),
            Statement::CreateTable { .. } | Statement::Analyze { .. } => Err(Error::Unsupported(
                "DDL is not supported inside a transaction; COMMIT or ROLLBACK first".into(),
            )),
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::Sql(
                "transaction control cannot nest inside a statement".into(),
            )),
        }
    }

    // --------------------------------------------------- transactions

    /// `BEGIN`: pin a snapshot of every columnstore table, register the
    /// transaction, and log a TxnBegin frame.
    fn txn_begin(&self) -> Result<QueryResult> {
        if self.in_transaction() {
            // Not a poisoning event: the open transaction is untouched.
            return Err(Error::Sql(
                "a transaction is already open (nested BEGIN is not supported)".into(),
            ));
        }
        self.check_writable()?;
        let wal = self.wal.lock().clone();
        let snapshot_lsn = wal.as_ref().map_or(0, |w| w.tail_lsn());
        let id = self.txns.begin(snapshot_lsn);
        if let Some(w) = &wal {
            let logged = w
                .fault_check("wal.txn_begin")
                .and_then(|()| w.log(&WalRecord::TxnBegin { txn: id }).map(drop));
            if let Err(e) = logged {
                self.txns.finish(
                    id,
                    TxnState::Aborted,
                    None,
                    Some(format!("BEGIN logging failed: {e}")),
                    0,
                    0,
                );
                return Err(e);
            }
        }
        // Pin the snapshots *after* the begin record: everything the
        // snapshot shows is at or before the txn's position in the log.
        let mut overlays = BTreeMap::new();
        for name in self.catalog.table_names() {
            if let Some(TableEntry::ColumnStore(t)) = self.catalog.get(&name) {
                overlays.insert(name.to_ascii_lowercase(), TableOverlay::new(t.snapshot()));
            }
        }
        let mut s = self.session.lock();
        if !matches!(*s, SessionTxn::None) {
            // Lost a BEGIN race on a shared session handle; abandon ours.
            drop(s);
            self.txns.finish(
                id,
                TxnState::Aborted,
                None,
                Some("concurrent BEGIN on the same session".into()),
                0,
                0,
            );
            return Err(Error::Sql(
                "a transaction is already open (nested BEGIN is not supported)".into(),
            ));
        }
        *s = SessionTxn::Active(Box::new(ActiveTxn {
            id,
            overlays,
            ops: Vec::new(),
            statements: 0,
        }));
        Ok(QueryResult::Txn(TxnAck::Begun))
    }

    /// `ROLLBACK`: discard the write set (nothing was applied), release
    /// row locks and log a best-effort TxnAbort frame.
    fn txn_rollback(&self) -> Result<QueryResult> {
        let taken = std::mem::replace(&mut *self.session.lock(), SessionTxn::None);
        let txn = match taken {
            SessionTxn::None => return Err(Error::Sql("no open transaction to roll back".into())),
            SessionTxn::Active(t) => t,
            SessionTxn::Poisoned { txn, .. } => txn,
        };
        self.abort_txn(&txn, "ROLLBACK".into());
        Ok(QueryResult::Txn(TxnAck::RolledBack))
    }

    /// Release a transaction's locks and log a TxnAbort frame.
    /// Best-effort on the WAL side: replay discards any transaction
    /// without a commit record, so a lost abort record costs nothing.
    fn abort_txn(&self, txn: &ActiveTxn, reason: String) {
        self.txns.finish(
            txn.id,
            TxnState::Aborted,
            None,
            Some(reason),
            txn.statements,
            txn.ops.len() as u64,
        );
        let wal = self.wal.lock().clone();
        if let Some(w) = wal {
            // lint: allow(discard) — see the doc comment: abort records
            // are an optimization for replay, not a correctness point.
            let _ = w
                .fault_check("wal.txn_abort")
                .and_then(|()| w.log(&WalRecord::TxnAbort { txn: txn.id }).map(drop));
        }
    }

    /// `COMMIT`: apply the buffered write set to the live tables, then
    /// log the TxnCommit record and make it durable — the atomicity
    /// point. Any failure before the commit record is durable undoes
    /// the applied prefix exactly, so the live image never shows a
    /// transaction that crash-replay would discard.
    fn txn_commit(&self) -> Result<QueryResult> {
        let taken = std::mem::replace(&mut *self.session.lock(), SessionTxn::None);
        match taken {
            SessionTxn::None => Err(Error::Sql("no open transaction to commit".into())),
            SessionTxn::Poisoned { txn, reason } => {
                self.abort_txn(&txn, format!("COMMIT after error: {reason}"));
                Err(Error::Sql(format!(
                    "transaction aborted by an earlier error ({reason}); rolled back"
                )))
            }
            SessionTxn::Active(txn) => self.commit_active(*txn),
        }
    }

    fn commit_active(&self, txn: ActiveTxn) -> Result<QueryResult> {
        let wal = self.wal.lock().clone();
        // 1. Apply the write set in log order. Deletes are
        //    value-verified: `None` means a concurrent *committed*
        //    writer removed the row after our lock-free snapshot read —
        //    the transaction loses with a CONFLICT, exactly once.
        let mut applied: Vec<AppliedOp> = Vec::new();
        for op in &txn.ops {
            let outcome = self.commit_apply_one(op, &mut applied);
            match outcome {
                Ok(true) => {}
                Ok(false) => {
                    self.undo_applied(&applied);
                    self.txns.note_conflict();
                    let reason = "write-write conflict discovered at commit".to_string();
                    self.abort_txn(&txn, reason.clone());
                    return Err(Error::Conflict(format!(
                        "{reason}: a concurrent transaction removed a row this \
                         transaction deleted or updated"
                    )));
                }
                Err(e) => {
                    self.undo_applied(&applied);
                    self.abort_txn(&txn, format!("commit apply failed: {e}"));
                    return Err(e);
                }
            }
        }
        // 2. The atomicity point: TxnCommit, flushed durable. All the
        //    transaction's frames (TxnBegin, TxnOps, TxnCommit) ride
        //    this one group-commit flush.
        let commit_lsn = match &wal {
            Some(w) => {
                let logged = w.fault_check("wal.txn_commit").and_then(|()| {
                    let lsn = w.log(&WalRecord::TxnCommit { txn: txn.id })?;
                    w.commit(lsn)?;
                    Ok(lsn)
                });
                match logged {
                    Ok(lsn) => Some(lsn),
                    Err(e) => {
                        // Torn commit: the record is not durable (fault
                        // points fire before bytes land), so replay will
                        // discard the transaction — make the live image
                        // agree by undoing the applied write set.
                        self.undo_applied(&applied);
                        self.abort_txn(&txn, format!("commit logging failed: {e}"));
                        return Err(e);
                    }
                }
            }
            None => None,
        };
        self.txns.finish(
            txn.id,
            TxnState::Committed,
            commit_lsn,
            None,
            txn.statements,
            txn.ops.len() as u64,
        );
        Ok(QueryResult::Txn(TxnAck::Committed))
    }

    /// Apply one buffered op. `Ok(false)` is a commit-time conflict
    /// (the value-verified delete found no matching live row).
    fn commit_apply_one(&self, op: &TxnWriteOp, applied: &mut Vec<AppliedOp>) -> Result<bool> {
        match op {
            TxnWriteOp::Insert { table, rows } => {
                let TableEntry::ColumnStore(t) = self.catalog.try_get(table)? else {
                    return Err(Error::Unsupported(
                        "heap tables do not support explicit transactions".into(),
                    ));
                };
                let rids = t.apply_unlogged_insert_batch(rows)?;
                applied.push(AppliedOp::Insert {
                    table: table.clone(),
                    rows: rids.into_iter().zip(rows.iter().cloned()).collect(),
                });
                Ok(true)
            }
            TxnWriteOp::Delete { table, rid, row } => {
                let TableEntry::ColumnStore(t) = self.catalog.try_get(table)? else {
                    return Err(Error::Unsupported(
                        "heap tables do not support explicit transactions".into(),
                    ));
                };
                match t.apply_unlogged_delete(*rid, row)? {
                    Some((_, actual_row)) => {
                        applied.push(AppliedOp::Delete {
                            table: table.clone(),
                            row: actual_row,
                        });
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
        }
    }

    /// Undo an applied prefix of a commit, newest first: re-insert
    /// deleted rows, delete inserted rows. Unlogged — the WAL never saw
    /// a commit record, so replay discards the transaction anyway.
    /// Best-effort per op: an undo can only miss if a concurrent writer
    /// raced the same row in the failure window.
    fn undo_applied(&self, applied: &[AppliedOp]) {
        for op in applied.iter().rev() {
            let (table, result) = match op {
                AppliedOp::Insert { table, rows } => {
                    let r = match self.catalog.try_get(table) {
                        Ok(TableEntry::ColumnStore(t)) => rows.iter().try_for_each(|(rid, row)| {
                            t.apply_unlogged_delete(*rid, row).map(drop)
                        }),
                        _ => Ok(()),
                    };
                    (table, r)
                }
                AppliedOp::Delete { table, row } => {
                    let r = match self.catalog.try_get(table) {
                        Ok(TableEntry::ColumnStore(t)) => t
                            .apply_unlogged_insert_batch(std::slice::from_ref(row))
                            .map(drop),
                        _ => Ok(()),
                    };
                    (table, r)
                }
            };
            if let Err(e) = result {
                // Counted, not fatal: the undo target can only be gone
                // if a concurrent writer raced it in the failure window.
                metrics::global()
                    .counter("cstore_txn_undo_errors_total")
                    .inc();
                // lint: allow(discard) — best-effort undo; the miss is counted above
                let _ = (table, e);
            }
        }
    }

    /// Log one DML operation of an open transaction as a TxnOp frame.
    /// No commit/flush here: the frames become durable with the
    /// transaction's commit record (or are discarded by replay).
    fn txn_log(&self, txn: u64, op: WalRecord) -> Result<()> {
        let wal = self.wal.lock().clone();
        if let Some(w) = wal {
            w.log(&WalRecord::TxnOp {
                txn,
                op: Box::new(op),
            })?;
        }
        Ok(())
    }

    /// The columnstore behind an in-transaction DML statement (heap
    /// tables don't participate in explicit transactions).
    fn txn_table(&self, table: &str) -> Result<cstore_delta::ColumnStoreTable> {
        match self.catalog.try_get(table)? {
            TableEntry::ColumnStore(t) => Ok(t),
            TableEntry::Heap(_) => Err(Error::Unsupported(
                "heap tables do not support explicit transactions".into(),
            )),
        }
    }

    fn txn_insert(
        &self,
        txn: &mut ActiveTxn,
        table: &str,
        value_rows: Vec<Vec<cstore_sql::ast::AstExpr>>,
    ) -> Result<QueryResult> {
        self.check_writable()?;
        let t = self.txn_table(table)?;
        let schema = t.schema().clone();
        let rows = Self::literal_rows(table, &schema, value_rows)?;
        // Validate the whole statement before logging or buffering a
        // single row: a NULL-into-NOT-NULL in row 3 must not leave rows
        // 1–2 buffered (statement-level atomicity).
        for row in &rows {
            schema.check_row(row)?;
        }
        let key = table.to_ascii_lowercase();
        for chunk in rows.chunks(TXN_WAL_BATCH_ROWS) {
            self.txn_log(
                txn.id,
                WalRecord::InsertBatch {
                    table: key.clone(),
                    rows: chunk.to_vec(),
                },
            )?;
        }
        let n = rows.len();
        let ov = txn.overlay_mut(&key, &t);
        for row in &rows {
            ov.inserted.push((ov.next_synth, row.clone()));
            ov.next_synth += 1;
        }
        txn.ops.push(TxnWriteOp::Insert { table: key, rows });
        Ok(QueryResult::Affected(n))
    }

    fn txn_delete(
        &self,
        txn: &mut ActiveTxn,
        table: &str,
        selection: Option<cstore_sql::ast::AstExpr>,
    ) -> Result<QueryResult> {
        self.check_writable()?;
        let t = self.txn_table(table)?;
        let schema = t.schema().clone();
        let bound = selection
            .map(|s| bind_expr_on_schema(&s, &schema, table))
            .transpose()?;
        let key = table.to_ascii_lowercase();
        let victims = {
            let ov = txn.overlay_mut(&key, &t);
            self.matching_rids_in(&ov.effective(), &bound)?
        };
        let mut n = 0;
        for (rid, row) in victims {
            self.txn_delete_one(txn, &key, &t, rid, row)?;
            n += 1;
        }
        Ok(QueryResult::Affected(n))
    }

    /// Buffer one in-transaction delete: lock the row (base rows only),
    /// log the TxnOp frame, then update the overlay and op list.
    fn txn_delete_one(
        &self,
        txn: &mut ActiveTxn,
        key: &str,
        t: &cstore_delta::ColumnStoreTable,
        rid: RowId,
        row: Row,
    ) -> Result<()> {
        if rid.group != TXN_GROUP {
            // A base row: claim it, so a concurrent transaction gets a
            // deterministic CONFLICT instead of a silent lost update.
            self.txns.lock_row(txn.id, key, rid)?;
        }
        self.txn_log(
            txn.id,
            WalRecord::Delete {
                table: key.to_string(),
                rid,
                row: row.clone(),
            },
        )?;
        let ov = txn.overlay_mut(key, t);
        if rid.group == TXN_GROUP {
            // Deleting an own uncommitted insert: drop it from the
            // buffer. The logged insert+delete pair nets out by value
            // at replay (and at commit-apply).
            ov.inserted.retain(|(synth, _)| *synth != rid.tuple);
        } else {
            ov.deleted.push((rid, row.clone()));
        }
        txn.ops.push(TxnWriteOp::Delete {
            table: key.to_string(),
            rid,
            row,
        });
        Ok(())
    }

    fn txn_update(
        &self,
        txn: &mut ActiveTxn,
        table: &str,
        assignments: Vec<(String, cstore_sql::ast::AstExpr)>,
        selection: Option<cstore_sql::ast::AstExpr>,
    ) -> Result<QueryResult> {
        self.check_writable()?;
        let t = self.txn_table(table)?;
        let schema = t.schema().clone();
        let bound_sel = selection
            .map(|s| bind_expr_on_schema(&s, &schema, table))
            .transpose()?;
        let bound_assign: Vec<(usize, DataType, Expr)> = assignments
            .iter()
            .map(|(col, e)| {
                let idx = schema.try_index_of(col)?;
                Ok((
                    idx,
                    schema.field(idx).data_type,
                    bind_expr_on_schema(e, &schema, table)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let key = table.to_ascii_lowercase();
        let victims = {
            let ov = txn.overlay_mut(&key, &t);
            self.matching_rids_in(&ov.effective(), &bound_sel)?
        };
        let mut n = 0;
        for (rid, old) in victims {
            // Compute and validate the replacement before touching
            // anything: a bad assignment must not half-delete the row.
            let mut values = old.values().to_vec();
            for (idx, ty, e) in &bound_assign {
                values[*idx] = coerce(e.eval_row(&old)?, *ty)?;
            }
            let new = Row::new(values);
            schema.check_row(&new)?;
            // An UPDATE is a delete + insert, the same two frames
            // crash-replay applies in this order.
            self.txn_delete_one(txn, &key, &t, rid, old)?;
            self.txn_log(
                txn.id,
                WalRecord::InsertBatch {
                    table: key.clone(),
                    rows: vec![new.clone()],
                },
            )?;
            let ov = txn.overlay_mut(&key, &t);
            ov.inserted.push((ov.next_synth, new.clone()));
            ov.next_synth += 1;
            txn.ops.push(TxnWriteOp::Insert {
                table: key.clone(),
                rows: vec![new],
            });
            n += 1;
        }
        Ok(QueryResult::Affected(n))
    }

    /// `SET <option> = <value>`: session options.
    fn run_set(&self, option: &str, value: SetValue) -> Result<QueryResult> {
        match option.to_ascii_lowercase().as_str() {
            "query_timeout_ms" => {
                let ms = Self::set_u64("query_timeout_ms", &value)?;
                self.query_timeout_ms.store(ms, Ordering::Relaxed);
                Ok(QueryResult::Created)
            }
            "max_concurrent_queries" => {
                let n = Self::set_u64("max_concurrent_queries", &value)?;
                self.governor.admission().set_max_concurrent(n);
                Ok(QueryResult::Created)
            }
            "admission_timeout_ms" => {
                let ms = Self::set_u64("admission_timeout_ms", &value)?;
                self.governor
                    .admission()
                    .set_timeout(Duration::from_millis(ms));
                Ok(QueryResult::Created)
            }
            "memory_limit_bytes" => {
                let bytes = Self::set_u64("memory_limit_bytes", &value)?;
                self.governor.ledger().set_limit(bytes);
                Ok(QueryResult::Created)
            }
            "delta_high_water_mark" => {
                let n = Self::set_u64("delta_high_water_mark", &value)?;
                self.governor.backpressure().set_high_water(n);
                Ok(QueryResult::Created)
            }
            "backpressure_timeout_ms" => {
                let ms = Self::set_u64("backpressure_timeout_ms", &value)?;
                self.governor.backpressure().set_timeout_ms(ms);
                Ok(QueryResult::Created)
            }
            "query_log_size" => {
                let n = Self::set_u64("query_log_size", &value)?;
                let n = usize::try_from(n).unwrap_or(usize::MAX);
                self.query_log.lock().set_capacity(n);
                Ok(QueryResult::Created)
            }
            "query_store_interval_ms" => {
                let ms = Self::set_u64("query_store_interval_ms", &value)?;
                if ms == 0 {
                    return Err(Error::Sql("query_store_interval_ms must be > 0".into()));
                }
                self.query_store.set_interval_ms(ms);
                Ok(QueryResult::Created)
            }
            "wal_sync" => {
                let name = match &value {
                    SetValue::Name(name) => name.as_str(),
                    SetValue::Int(n) => {
                        return Err(Error::Sql(format!(
                            "wal_sync expects off, group or strict, got {n}"
                        )))
                    }
                };
                let mode = WalSyncMode::parse(name).ok_or_else(|| {
                    Error::Sql(format!(
                        "wal_sync expects off, group or strict, got '{name}'"
                    ))
                })?;
                self.wal_sync.store(mode.to_u8(), Ordering::Relaxed);
                // Clone out of the guard first: set_sync_mode takes WAL
                // locks, which must not nest inside db.wal.
                let wal = self.wal.lock().clone();
                if let Some(wal) = wal {
                    wal.set_sync_mode(mode);
                }
                Ok(QueryResult::Created)
            }
            other => Err(Error::Unsupported(format!("unknown SET option '{other}'"))),
        }
    }

    /// Parse a non-negative integer SET value.
    fn set_u64(option: &str, value: &SetValue) -> Result<u64> {
        match value {
            SetValue::Int(n) => {
                u64::try_from(*n).map_err(|_| Error::Sql(format!("{option} must be >= 0, got {n}")))
            }
            SetValue::Name(name) => Err(Error::Sql(format!(
                "{option} expects an integer value, got '{name}'"
            ))),
        }
    }

    /// The wall-clock deadline for a query starting now, from
    /// `SET query_timeout_ms` (0 = none).
    fn query_deadline(&self) -> Option<Instant> {
        let ms = self.query_timeout_ms.load(Ordering::Relaxed);
        (ms > 0).then(|| Instant::now() + Duration::from_millis(ms))
    }

    fn run_select(
        &self,
        stmt: &cstore_sql::ast::SelectStmt,
        snaps: Option<Arc<HashMap<String, TableSnapshot>>>,
    ) -> Result<QueryResult> {
        // `sys.*` views materialize here (and are memoized for the whole
        // query) so bind, optimize and lowering see one snapshot.
        let catalog = SysCatalog::new(&self.catalog, self);
        let plan = {
            let _span = cstore_common::trace::global().span("bind");
            bind_select(stmt, &catalog)?
        };
        self.run_plan(plan, &catalog, snaps)
    }

    fn run_union(
        &self,
        branches: &[cstore_sql::ast::SelectStmt],
        snaps: Option<Arc<HashMap<String, TableSnapshot>>>,
    ) -> Result<QueryResult> {
        let catalog = SysCatalog::new(&self.catalog, self);
        let plan = {
            let _span = cstore_common::trace::global().span("bind");
            cstore_sql::bind_union(branches, &catalog)?
        };
        self.run_plan(plan, &catalog, snaps)
    }

    fn run_plan(
        &self,
        plan: cstore_planner::LogicalPlan,
        catalog: &dyn cstore_planner::CatalogProvider,
        snaps: Option<Arc<HashMap<String, TableSnapshot>>>,
    ) -> Result<QueryResult> {
        let start = Instant::now();
        let plan = {
            let _span = cstore_common::trace::global().span("optimize");
            optimize(plan, catalog)?
        };
        let fields = plan.output_fields()?;
        let columns: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
        let types: Vec<DataType> = fields.iter().map(|f| f.data_type).collect();
        // Each query gets its own metrics/operator-stats fork so the
        // result reports *this* query's counters; the fork is folded back
        // into the cumulative context metrics below.
        let qctx = self
            .ctx
            .for_query()
            .with_deadline(self.query_deadline())
            .with_snapshots(snaps);
        let phys = {
            let _span = cstore_common::trace::global().span("build_physical");
            build_physical(&plan, catalog, &qctx, self.mode)?
        };
        let mode = phys.mode;
        let rows = {
            let _span = cstore_common::trace::global().span("execute");
            collect_rows(phys.root)?
        };
        let elapsed = start.elapsed();
        self.finish_query(&qctx, elapsed);
        Ok(QueryResult::Rows {
            columns,
            types,
            rows,
            mode,
            metrics: qctx.metrics.snapshot(),
            plan_root: Some(cstore_planner::physical::node_label(&plan)),
            elapsed,
        })
    }

    /// Fold one finished query's counters into the cumulative context
    /// metrics and the process-wide registry.
    fn finish_query(&self, qctx: &ExecContext, elapsed: Duration) {
        qctx.metrics.merge_into(&self.ctx.metrics);
        let reg = metrics::global();
        reg.counter("cstore_queries_total").inc();
        reg.observe(
            "cstore_query_latency_us",
            &LATENCY_BUCKETS_US,
            u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        );
        for (name, v) in qctx.metrics.snapshot() {
            reg.add(&format!("cstore_query_{name}_total"), v);
        }
    }

    fn run_explain(
        &self,
        stmt: Statement,
        analyze: bool,
        snaps: Option<Arc<HashMap<String, TableSnapshot>>>,
    ) -> Result<QueryResult> {
        let catalog = SysCatalog::new(&self.catalog, self);
        let plan = match stmt {
            Statement::Select(s) => bind_select(&s, &catalog)?,
            Statement::UnionAll(branches) => cstore_sql::bind_union(&branches, &catalog)?,
            other => {
                return Err(Error::Unsupported(format!(
                    "EXPLAIN supports SELECT only, got {other:?}"
                )))
            }
        };
        if analyze {
            self.explain_analyze_plan(plan, &catalog, snaps)
        } else {
            self.explain_plan(plan, &catalog)
        }
    }

    fn explain_plan(
        &self,
        plan: cstore_planner::LogicalPlan,
        catalog: &dyn cstore_planner::CatalogProvider,
    ) -> Result<QueryResult> {
        let plan = optimize(plan, catalog)?;
        let mut text = explain(&plan, catalog, self.mode);
        // Physical annotations: what lowering would actually build.
        let phys = build_physical(&plan, catalog, &self.ctx, self.mode)?;
        text.push_str(&format!(
            "physical: bitmap_filters={}, scan_parallelism={}\n",
            phys.bitmap_filters, self.ctx.parallelism
        ));
        Ok(QueryResult::Explain(text))
    }

    /// EXPLAIN ANALYZE: execute the plan, then render it annotated with
    /// each operator's actual rows/batches/time and the query's scan,
    /// bitmap-filter, join and spill counters.
    fn explain_analyze_plan(
        &self,
        plan: cstore_planner::LogicalPlan,
        catalog: &dyn cstore_planner::CatalogProvider,
        snaps: Option<Arc<HashMap<String, TableSnapshot>>>,
    ) -> Result<QueryResult> {
        let start = Instant::now();
        let plan = optimize(plan, catalog)?;
        let qctx = self
            .ctx
            .for_query()
            .with_deadline(self.query_deadline())
            .with_snapshots(snaps);
        let phys = build_physical(&plan, catalog, &qctx, self.mode)?;
        let rows = collect_rows(phys.root)?;
        let elapsed = start.elapsed();
        self.finish_query(&qctx, elapsed);
        let mut text = explain_analyze(
            &plan,
            catalog,
            self.mode,
            &qctx.stats,
            &qctx.metrics,
            &qctx.waits,
            rows.len(),
            elapsed,
        );
        text.push_str(&format!(
            "physical: bitmap_filters={}, scan_parallelism={}\n",
            phys.bitmap_filters, qctx.parallelism
        ));
        Ok(QueryResult::Explain(text))
    }

    /// Evaluate INSERT value lists into rows, coercing each literal to
    /// its column's type.
    fn literal_rows(
        table: &str,
        schema: &Schema,
        value_rows: Vec<Vec<cstore_sql::ast::AstExpr>>,
    ) -> Result<Vec<Row>> {
        let mut rows = Vec::with_capacity(value_rows.len());
        for exprs in value_rows {
            if exprs.len() != schema.len() {
                return Err(Error::Type(format!(
                    "INSERT has {} values, table '{table}' has {} columns",
                    exprs.len(),
                    schema.len()
                )));
            }
            let values = exprs
                .iter()
                .zip(schema.fields())
                .map(|(e, f)| literal_value(e, f.data_type))
                .collect::<Result<Vec<_>>>()?;
            rows.push(Row::new(values));
        }
        Ok(rows)
    }

    fn run_insert(
        &self,
        table: &str,
        value_rows: Vec<Vec<cstore_sql::ast::AstExpr>>,
    ) -> Result<QueryResult> {
        self.check_writable()?;
        let entry = self.catalog.try_get(table)?;
        let schema = entry.schema();
        let rows = Self::literal_rows(table, &schema, value_rows)?;
        let n = rows.len();
        match entry {
            TableEntry::ColumnStore(t) => {
                // INSERT ... VALUES is the trickle path; programmatic bulk
                // loads use [`Database::bulk_load`]. The whole statement is
                // one WAL frame and one commit obligation, however many
                // rows it carries.
                t.insert_batch(&rows)?;
            }
            TableEntry::Heap(_) => {
                self.catalog.with_heap_mut(table, |h| h.insert_all(&rows))?;
            }
        }
        Ok(QueryResult::Affected(n))
    }

    /// Collect the row ids of live rows matching `selection`.
    fn matching_rids(
        &self,
        t: &cstore_delta::ColumnStoreTable,
        selection: &Option<Expr>,
    ) -> Result<Vec<(RowId, Row)>> {
        self.matching_rids_in(&t.snapshot(), selection)
    }

    /// Collect the row ids of rows in `snap` matching `selection` —
    /// transactions pass their effective (base + overlay) snapshot.
    fn matching_rids_in(
        &self,
        snap: &TableSnapshot,
        selection: &Option<Expr>,
    ) -> Result<Vec<(RowId, Row)>> {
        let mut out = Vec::new();
        for g in snap.groups() {
            let visible = snap.visible_bitmap(g);
            for tuple in visible.iter_ones() {
                let row = Row::new(g.row_values(tuple)?);
                if self.row_matches(selection, &row)? {
                    out.push((RowId::new(g.id(), tuple as u32), row));
                }
            }
        }
        for (rid, row) in snap.delta_rows() {
            if self.row_matches(selection, row)? {
                out.push((*rid, row.clone()));
            }
        }
        Ok(out)
    }

    /// Reject an auto-commit write of a row an open transaction has
    /// write-locked: the implicit statement loses with a CONFLICT
    /// instead of silently overwriting (or being overwritten by) the
    /// transaction's buffered write.
    fn check_unlocked(&self, table: &str, rid: RowId) -> Result<()> {
        if let Some(owner) = self.txns.locked_by_other(table, rid, None) {
            self.txns.note_conflict();
            return Err(Error::Conflict(format!(
                "row {}:{} is write-locked by open transaction {owner}",
                table.to_ascii_lowercase(),
                rid.pack()
            )));
        }
        Ok(())
    }

    fn row_matches(&self, selection: &Option<Expr>, row: &Row) -> Result<bool> {
        Ok(match selection {
            None => true,
            Some(e) => matches!(e.eval_row(row)?, Value::Bool(true)),
        })
    }

    fn run_delete(
        &self,
        table: &str,
        selection: Option<cstore_sql::ast::AstExpr>,
    ) -> Result<QueryResult> {
        self.check_writable()?;
        let entry = self.catalog.try_get(table)?;
        let schema = entry.schema();
        let bound = selection
            .map(|s| bind_expr_on_schema(&s, &schema, table))
            .transpose()?;
        match entry {
            TableEntry::ColumnStore(t) => {
                let victims = self.matching_rids(&t, &bound)?;
                let mut n = 0;
                // Value-verified: a concurrent tuple-mover pass can
                // renumber rows between the scan above and each delete,
                // so a bare rid could hit the wrong row.
                for (rid, row) in victims {
                    self.check_unlocked(table, rid)?;
                    if t.delete_verified(rid, &row)? {
                        n += 1;
                    }
                }
                Ok(QueryResult::Affected(n))
            }
            TableEntry::Heap(h) => {
                let victims: Vec<_> = h
                    .scan_with_rids()
                    .filter_map(|(rid, row)| match self.row_matches(&bound, &row) {
                        Ok(true) => Some(Ok(rid)),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    })
                    .collect::<Result<Vec<_>>>()?;
                let n = victims.len();
                self.catalog.with_heap_mut(table, |h| {
                    for rid in victims {
                        h.delete(rid);
                    }
                    Ok(())
                })?;
                Ok(QueryResult::Affected(n))
            }
        }
    }

    fn run_update(
        &self,
        table: &str,
        assignments: Vec<(String, cstore_sql::ast::AstExpr)>,
        selection: Option<cstore_sql::ast::AstExpr>,
    ) -> Result<QueryResult> {
        self.check_writable()?;
        let entry = self.catalog.try_get(table)?;
        let schema = entry.schema();
        let bound_sel = selection
            .map(|s| bind_expr_on_schema(&s, &schema, table))
            .transpose()?;
        let bound_assign: Vec<(usize, DataType, Expr)> = assignments
            .iter()
            .map(|(col, e)| {
                let idx = schema.try_index_of(col)?;
                Ok((
                    idx,
                    schema.field(idx).data_type,
                    bind_expr_on_schema(e, &schema, table)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let apply = |row: &Row| -> Result<Row> {
            let mut values = row.values().to_vec();
            for (idx, ty, e) in &bound_assign {
                values[*idx] = coerce(e.eval_row(row)?, *ty)?;
            }
            Ok(Row::new(values))
        };
        match entry {
            TableEntry::ColumnStore(t) => {
                let victims = self.matching_rids(&t, &bound_sel)?;
                let mut n = 0;
                for (rid, old) in victims {
                    self.check_unlocked(table, rid)?;
                    if t.update_verified(rid, &old, apply(&old)?)?.is_some() {
                        n += 1;
                    }
                }
                Ok(QueryResult::Affected(n))
            }
            TableEntry::Heap(h) => {
                let victims: Vec<_> = h
                    .scan_with_rids()
                    .filter_map(|(rid, row)| match self.row_matches(&bound_sel, &row) {
                        Ok(true) => Some(apply(&row).map(|new| (rid, new))),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    })
                    .collect::<Result<Vec<_>>>()?;
                let n = victims.len();
                self.catalog.with_heap_mut(table, |h| {
                    for (rid, new) in victims {
                        h.delete(rid);
                        h.insert(&new)?;
                    }
                    Ok(())
                })?;
                Ok(QueryResult::Affected(n))
            }
        }
    }

    // ------------------------------------------------- health state machine

    /// Gate one write statement through the health state machine: pick
    /// up fresh degradation causes first, give a degraded database its
    /// backoff-paced chance to recover, then reject with the cause if
    /// still read-only. Reads are never gated.
    fn check_writable(&self) -> Result<()> {
        self.scan_health();
        let health = Arc::clone(self.governor.health());
        if health.is_read_only() && health.probe_due() {
            // lint: allow(discard) — a failed probe leaves the database
            // read-only; the next backoff window retries
            let _ = self.probe_recovery();
        }
        health.check_writable()
    }

    /// Detect degradation causes that storage reports asynchronously: a
    /// sticky WAL failure, or a tuple mover parked after repeated fatal
    /// errors. First cause wins; an already-degraded database is left
    /// alone (its cause is cleared only by a successful recovery probe).
    fn scan_health(&self) {
        let health = self.governor.health();
        if health.is_read_only() {
            return;
        }
        if let Some(e) = self.wal_status().and_then(|s| s.failed) {
            health.degrade(format!("WAL is failed: {e}"));
            return;
        }
        for (table, status) in self.latest_mover_statuses() {
            if status.state == MoverState::Failed {
                health.degrade(format!(
                    "tuple mover for '{table}' is parked after repeated failures: {}",
                    status.last_error.unwrap_or_else(|| "unknown error".into())
                ));
                return;
            }
        }
    }

    /// The latest registered mover status per table. Restarting a mover
    /// registers a new status handle under the same name, and the old
    /// (possibly parked-Failed) handle stays in the registry for metrics
    /// continuity — health decisions must see only the newest one.
    fn latest_mover_statuses(&self) -> Vec<(String, MoverStatus)> {
        let mut latest: std::collections::BTreeMap<String, MoverStatus> =
            std::collections::BTreeMap::new();
        for (name, status) in self.movers.lock().iter() {
            // lint: allow(lock-order) — `status` is the mover.status Arc
            // (level 5) yielded by the movers map; 4 → 5 ascends.
            latest.insert(name.clone(), status.lock().clone());
        }
        latest.into_iter().collect()
    }

    /// Attempt to bring a read-only database back to healthy: verify the
    /// WAL accepts appends again (a real append+fsync of a probe record),
    /// run the registered storage probe against the blob store, and check
    /// that no current tuple mover is parked. On full success the health
    /// machine transitions back to `Healthy` and writes resume. Public so
    /// operators can force a probe instead of waiting out the backoff.
    pub fn probe_recovery(&self) -> Result<()> {
        let health = Arc::clone(self.governor.health());
        if !health.is_read_only() {
            return Ok(());
        }
        health.note_probe();
        let wal = self.wal.lock().clone();
        if let Some(wal) = wal {
            wal.try_clear_failure()?;
        }
        self.governor.run_storage_probe()?;
        for (table, status) in self.latest_mover_statuses() {
            if status.state == MoverState::Failed {
                return Err(Error::Storage(format!(
                    "recovery probe failed: tuple mover for '{table}' is still parked"
                )));
            }
        }
        health.recover();
        Ok(())
    }

    // --------------------------------------------------- bulk / admin API

    /// Bulk-load rows into a columnstore table (the paper's bulk insert:
    /// large batches compress directly, bypassing delta stores).
    pub fn bulk_load(&self, table: &str, rows: &[Row]) -> Result<cstore_delta::BulkLoadReport> {
        self.check_writable()?;
        match self.catalog.try_get(table)? {
            TableEntry::ColumnStore(t) => t.bulk_insert(rows),
            TableEntry::Heap(_) => {
                self.catalog.with_heap_mut(table, |h| h.insert_all(rows))?;
                Ok(cstore_delta::BulkLoadReport {
                    compressed_groups: vec![],
                    delta_rows: rows.len(),
                })
            }
        }
    }

    /// Run one synchronous tuple-mover pass over a table.
    pub fn tuple_move(&self, table: &str) -> Result<usize> {
        match self.catalog.try_get(table)? {
            TableEntry::ColumnStore(t) => t.tuple_move_once(),
            TableEntry::Heap(_) => Ok(0),
        }
    }

    /// Start a background tuple mover for a table. The mover's status is
    /// also registered with this database so [`Database::metrics`]
    /// reports its counters for as long as the database lives.
    pub fn start_tuple_mover(&self, table: &str, interval: Duration) -> Result<TupleMover> {
        match self.catalog.try_get(table)? {
            TableEntry::ColumnStore(t) => {
                let mover = TupleMover::start(t, interval)?;
                self.movers
                    .lock()
                    .push((table.to_string(), mover.status_shared()));
                Ok(mover)
            }
            TableEntry::Heap(_) => Err(Error::Catalog(format!(
                "'{table}' is a heap; the tuple mover applies to columnstores"
            ))),
        }
    }

    /// REORGANIZE a columnstore table: compress closed delta stores and
    /// rebuild row groups with ≥ `deleted_threshold` deleted rows.
    pub fn reorganize(&self, table: &str, deleted_threshold: f64) -> Result<(usize, usize)> {
        match self.catalog.try_get(table)? {
            TableEntry::ColumnStore(t) => t.reorganize(deleted_threshold),
            TableEntry::Heap(_) => Ok((0, 0)),
        }
    }

    /// Switch a columnstore table to archival compression.
    pub fn archive_table(&self, table: &str) -> Result<()> {
        match self.catalog.try_get(table)? {
            TableEntry::ColumnStore(t) => t.archive_all(),
            TableEntry::Heap(_) => Err(Error::Unsupported(
                "archival compression applies to columnstore tables".into(),
            )),
        }
    }

    /// Sample up to `sample_target` rows of `table` and cache histogram
    /// statistics for the optimizer (the paper's sampling support for
    /// statistics on columnstore indexes). Also exposed as SQL
    /// `ANALYZE <table>`.
    pub fn analyze(&self, table: &str, sample_target: usize) -> Result<()> {
        use cstore_planner::stats::TableStatistics;
        use cstore_planner::CatalogProvider;
        let t = self
            .catalog
            .table(table)
            .ok_or_else(|| Error::Catalog(format!("unknown table '{table}'")))?;
        let stats = TableStatistics::collect_sampled(&t, sample_target);
        self.catalog.put_statistics(table, stats);
        Ok(())
    }

    // ------------------------------------------------- write-ahead log

    /// Attach a write-ahead log backed by `dir/wal`: replay whatever the
    /// log holds past each table's persisted watermark, then wire every
    /// columnstore table (present and future) to log through it. Called
    /// automatically by the durable open paths; call it on a fresh
    /// database to make trickle DML durable before the first save.
    pub fn attach_wal(&mut self, dir: impl AsRef<std::path::Path>) -> Result<WalReplayReport> {
        let store = cstore_storage::FileLogStore::open(dir.as_ref().join("wal"))?;
        self.attach_wal_store(Box::new(store), WalOptions::default(), None)
    }

    /// Attach a write-ahead log over any [`cstore_storage::LogStore`]
    /// (tests use [`cstore_storage::MemLogStore`] plus a fault injector).
    /// Replays into the current columnstore tables and merges the replay
    /// outcome into [`Database::open_report`].
    pub fn attach_wal_store(
        &mut self,
        store: Box<dyn cstore_storage::LogStore>,
        options: WalOptions,
        faults: Option<FaultInjector>,
    ) -> Result<WalReplayReport> {
        let tables: Vec<(String, cstore_delta::ColumnStoreTable)> = self
            .catalog
            .table_names()
            .into_iter()
            .filter_map(|name| match self.catalog.get(&name) {
                Some(TableEntry::ColumnStore(t)) => Some((name, t)),
                _ => None,
            })
            .collect();
        let (wal, report) = Wal::open(store, options, faults, &tables)?;
        wal.set_sync_mode(WalSyncMode::from_u8(self.wal_sync.load(Ordering::Relaxed)));
        for (name, t) in &tables {
            t.set_wal(WalHandle {
                wal: Arc::clone(&wal),
                table: name.to_ascii_lowercase(),
            });
        }
        *self.wal.lock() = Some(wal);
        let mut open_report = (*self.open_report).clone();
        open_report.wal = Some(report.clone());
        self.open_report = Arc::new(open_report);
        Ok(report)
    }

    /// Point-in-time WAL status (`None` when no WAL is attached);
    /// `sys.wal` renders this.
    pub fn wal_status(&self) -> Option<WalStatus> {
        let wal = self.wal.lock().clone();
        wal.map(|w| w.status())
    }

    /// Persist the whole database (catalog + every table) into a
    /// directory. Heap tables store their rows; columnstore tables store
    /// compressed row groups, delta rows and delete bitmaps.
    ///
    /// Crash-atomic: see [`Database::save_to_store`].
    pub fn save_to(&self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        let mut store = cstore_storage::blob::FileBlobStore::open(dir.as_ref())?;
        self.save_to_store(&mut store)?;
        Ok(())
    }

    /// Persist into any blob store, returning the generation written.
    ///
    /// The save is crash-atomic: every table blob is written under a
    /// `g<N>.` prefix *first*, and the generation-`N` catalog manifest
    /// last, as the commit point. A crash (or IO error) at any earlier
    /// point leaves the previous generation untouched; older generations
    /// are garbage-collected only after the manifest lands.
    pub fn save_to_store(&self, store: &mut dyn cstore_storage::blob::BlobStore) -> Result<u64> {
        let result = self.save_to_store_inner(store);
        if let Err(e) = &result {
            // A failed save means the blob store is refusing writes
            // (ENOSPC, IO error): degrade to read-only so later DML fails
            // with the cause instead of raw storage errors. The committed
            // previous generation is untouched — reads keep serving.
            if matches!(e, Error::Io(_) | Error::Storage(_)) {
                self.governor
                    .health()
                    .degrade(format!("blob store write failure: {e}"));
            }
        }
        result
    }

    fn save_to_store_inner(&self, store: &mut dyn cstore_storage::blob::BlobStore) -> Result<u64> {
        use cstore_storage::format::{write_schema, write_value, Writer};
        let _span = cstore_common::trace::global().span("persist.save");
        // A save advances every table's WAL watermark past the log tail
        // it persists — doing that while a transaction holds unlogged
        // commit intent (or un-replayed TxnOp frames) could make the
        // commit record land below a watermark that never applied it.
        // Keep it simple and correct: no saves while transactions are
        // open, in any session.
        if self.txns.active_count() > 0 {
            return Err(Error::Unsupported(
                "cannot save while a transaction is open; COMMIT or ROLLBACK first".into(),
            ));
        }
        let gen = persist::manifest_generations(store)
            .first()
            .map_or(1, |g| g + 1);
        let names = self.catalog.table_names();
        // 1. Table blobs, under the new generation's prefix. Each
        //    columnstore reports the WAL watermark its blob covers; the
        //    post-commit checkpoint retires log segments below them.
        let mut wal_boundaries: Vec<(String, u64)> = Vec::new();
        for name in &names {
            let prefix = persist::gen_prefix(gen, name);
            match self.catalog.try_get(name)? {
                TableEntry::ColumnStore(t) => {
                    let boundary = t.persist(store, &prefix)?;
                    wal_boundaries.push((name.to_ascii_lowercase(), boundary));
                }
                TableEntry::Heap(h) => {
                    let mut w = Writer::new();
                    w.u32(convert::u32_from_usize(h.n_rows())?);
                    for row in h.scan() {
                        for v in row.values() {
                            write_value(&mut w, v)?;
                        }
                    }
                    store.put(&format!("{prefix}.heap"), &w.seal())?;
                }
            }
        }
        // 1b. Query Store history, under the same generation prefix (it
        //     only becomes reachable once the manifest commits, and GC
        //     retires it with the generation).
        store.put(&format!("g{gen}.querystore"), &self.query_store.encode()?)?;
        // 2. Catalog manifest: name, organization, schema per table. This
        //    write commits the generation.
        let mut w = Writer::new();
        w.u32(CATALOG_MAGIC);
        w.u16(CATALOG_VERSION);
        w.u64(gen);
        w.u32(convert::u32_from_usize(names.len())?);
        for name in &names {
            let entry = self.catalog.try_get(name)?;
            w.lp_bytes(name.as_bytes())?;
            w.u8(matches!(entry, TableEntry::Heap(_)) as u8);
            write_schema(&mut w, &entry.schema())?;
        }
        store.put(&persist::manifest_key(gen), &w.seal())?;
        // 3. Drop superseded generations (best-effort).
        persist::collect_garbage(store, gen);
        // 4. Checkpoint the WAL (best-effort): the save already committed,
        //    so a failed checkpoint only delays segment retirement until
        //    the next save — it must not turn a successful save into an
        //    error.
        let wal = self.wal.lock().clone();
        if let Some(wal) = wal {
            if wal.checkpoint(gen, wal_boundaries).is_err() {
                metrics::global()
                    .counter("cstore_wal_checkpoint_errors_total")
                    .inc();
            }
        }
        Ok(gen)
    }

    /// Open a database persisted by [`Database::save_to`]. Uses the
    /// default table-config template for the loaded columnstores. Strict:
    /// fails on the first unreadable table blob (but still falls back past
    /// torn manifests — that is the crash-atomicity protocol, not damage).
    pub fn open_from(dir: impl AsRef<std::path::Path>) -> Result<Database> {
        let store = cstore_storage::blob::FileBlobStore::open(dir.as_ref())?;
        let (mut db, _) = Self::open_from_store(&store, OpenMode::Strict)?;
        let log = cstore_storage::FileLogStore::open(dir.as_ref().join("wal"))?;
        db.attach_wal_store(
            Box::new(log),
            WalOptions {
                strict: true,
                ..WalOptions::default()
            },
            None,
        )?;
        db.register_dir_storage_probe(dir.as_ref());
        Ok(db)
    }

    /// Register a recovery probe that round-trips a scratch blob through
    /// the database's backing directory, so [`Database::probe_recovery`]
    /// can verify the filesystem accepts writes again (e.g. after
    /// ENOSPC clears).
    fn register_dir_storage_probe(&self, dir: &std::path::Path) {
        use cstore_storage::blob::BlobStore;
        let dir = dir.to_path_buf();
        self.governor.set_storage_probe(move || {
            let mut store = cstore_storage::blob::FileBlobStore::open(&dir)?;
            store.put("governor.probe", b"ok")?;
            store.delete("governor.probe")
        });
    }

    /// Open in degraded mode: unreadable table blobs are quarantined
    /// (their data dropped) instead of failing the open, and every drop is
    /// listed in the returned [`OpenReport`]. Unreadable WAL segments are
    /// likewise quarantined rather than fatal.
    pub fn open_degraded(dir: impl AsRef<std::path::Path>) -> Result<(Database, OpenReport)> {
        let store = cstore_storage::blob::FileBlobStore::open(dir.as_ref())?;
        let (mut db, _) = Self::open_from_store(&store, OpenMode::Degraded)?;
        let log = cstore_storage::FileLogStore::open(dir.as_ref().join("wal"))?;
        db.attach_wal_store(
            Box::new(log),
            WalOptions {
                strict: false,
                ..WalOptions::default()
            },
            None,
        )?;
        db.register_dir_storage_probe(dir.as_ref());
        let report = (*db.open_report).clone();
        Ok((db, report))
    }

    /// Open from any blob store. Tries the newest catalog manifest first
    /// and falls back generation by generation past torn/corrupt
    /// manifests (recorded in [`OpenReport::skipped_manifests`]).
    pub fn open_from_store(
        store: &dyn cstore_storage::blob::BlobStore,
        mode: OpenMode,
    ) -> Result<(Database, OpenReport)> {
        let _span = cstore_common::trace::global().span("persist.open");
        let gens = persist::manifest_generations(store);
        if gens.is_empty() {
            return Err(Error::Storage("no catalog manifest found".into()));
        }
        let mut skipped: Vec<(u64, String)> = Vec::new();
        for gen in gens {
            let entries = match Self::read_catalog_manifest(store, gen) {
                Ok(entries) => entries,
                Err(e) => {
                    skipped.push((gen, e.to_string()));
                    continue;
                }
            };
            let (mut db, tables) = Self::load_tables(store, gen, &entries, mode)?;
            // Query Store history (best-effort): absent for generations
            // written before the store existed, and corrupt history must
            // never block an open — data tables matter, telemetry does
            // not. Load failures are counted, not fatal.
            if let Ok(blob) = store.get(&format!("g{gen}.querystore")) {
                if db.query_store.load(&blob).is_err() {
                    metrics::global()
                        .counter("cstore_query_store_load_errors_total")
                        .inc();
                }
            }
            let report = OpenReport {
                generation: gen,
                skipped_manifests: skipped,
                tables,
                wal: None,
            };
            // Keep the report on the database so `metrics()` can report
            // recovery quarantines; `db` is not yet shared here.
            db.open_report = Arc::new(report.clone());
            return Ok((db, report));
        }
        let detail: Vec<String> = skipped.iter().map(|(g, e)| format!("g{g}: {e}")).collect();
        Err(Error::Storage(format!(
            "no usable catalog manifest ({})",
            detail.join("; ")
        )))
    }

    /// Read and validate one generation's catalog manifest.
    fn read_catalog_manifest(
        store: &dyn cstore_storage::blob::BlobStore,
        gen: u64,
    ) -> Result<Vec<CatalogEntry>> {
        use cstore_storage::format::{read_schema, Reader};
        let manifest = store.get(&persist::manifest_key(gen))?;
        let payload = Reader::check_crc(&manifest)?;
        let mut r = Reader::new(payload);
        if r.u32()? != CATALOG_MAGIC {
            return Err(Error::Storage("bad catalog magic".into()));
        }
        let version = r.u16()?;
        if version != CATALOG_VERSION {
            return Err(Error::Storage(format!(
                "unsupported catalog version {version}"
            )));
        }
        let stamped = r.u64()?;
        if stamped != gen {
            return Err(Error::Storage(format!(
                "catalog generation stamp {stamped} does not match key generation {gen}"
            )));
        }
        let n = convert::usize_from_u32(r.u32()?);
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let name = std::str::from_utf8(r.lp_bytes()?)
                .map_err(|_| Error::Storage("invalid UTF-8 table name".into()))?
                .to_owned();
            let is_heap = r.u8()? != 0;
            let schema = read_schema(&mut r)?;
            entries.push(CatalogEntry {
                name,
                is_heap,
                schema,
            });
        }
        Ok(entries)
    }

    /// Load every table of generation `gen` into a fresh database.
    fn load_tables(
        store: &dyn cstore_storage::blob::BlobStore,
        gen: u64,
        entries: &[CatalogEntry],
        mode: OpenMode,
    ) -> Result<(Database, Vec<TableOpenReport>)> {
        use cstore_storage::{BlobQuarantine, QuarantinedKind};
        let db = Database::new();
        let mut reports = Vec::new();
        for e in entries {
            let prefix = persist::gen_prefix(gen, &e.name);
            let mut quarantined: Vec<BlobQuarantine> = Vec::new();
            if e.is_heap {
                db.catalog.create_heap(&e.name, e.schema.clone())?;
                match Self::read_heap_blob(store, &prefix, &e.schema) {
                    Ok(rows) => db.catalog.with_heap_mut(&e.name, |h| h.insert_all(&rows))?,
                    Err(err) if mode == OpenMode::Degraded => quarantined.push(BlobQuarantine {
                        key: format!("{prefix}.heap"),
                        kind: QuarantinedKind::Heap,
                        error: err.to_string(),
                    }),
                    Err(err) => return Err(err),
                }
            } else {
                match mode {
                    OpenMode::Strict => {
                        let t = cstore_delta::ColumnStoreTable::load(
                            store,
                            &prefix,
                            e.schema.clone(),
                            db.table_config.clone(),
                        )?;
                        t.set_governor(Arc::clone(&db.governor));
                        db.catalog.create(&e.name, TableEntry::ColumnStore(t))?;
                    }
                    OpenMode::Degraded => match cstore_delta::ColumnStoreTable::load_degraded(
                        store,
                        &prefix,
                        e.schema.clone(),
                        db.table_config.clone(),
                    ) {
                        Ok((t, q)) => {
                            quarantined.extend(q);
                            t.set_governor(Arc::clone(&db.governor));
                            db.catalog.create(&e.name, TableEntry::ColumnStore(t))?;
                        }
                        Err(err) => {
                            // Even the row-group manifest is unreadable:
                            // quarantine the whole table, install it empty.
                            quarantined.push(BlobQuarantine {
                                key: format!("{prefix}.manifest"),
                                kind: QuarantinedKind::TableManifest,
                                error: err.to_string(),
                            });
                            let t = cstore_delta::ColumnStoreTable::new(
                                e.schema.clone(),
                                db.table_config.clone(),
                            );
                            t.set_governor(Arc::clone(&db.governor));
                            db.catalog.create(&e.name, TableEntry::ColumnStore(t))?;
                        }
                    },
                }
            }
            if !quarantined.is_empty() {
                reports.push(TableOpenReport {
                    table: e.name.clone(),
                    quarantined,
                });
            }
        }
        Ok((db, reports))
    }

    /// Read a heap blob into rows without touching catalog state.
    fn read_heap_blob(
        store: &dyn cstore_storage::blob::BlobStore,
        prefix: &str,
        schema: &Schema,
    ) -> Result<Vec<Row>> {
        use cstore_storage::format::{read_value, Reader};
        let blob = store.get(&format!("{prefix}.heap"))?;
        let payload = Reader::check_crc(&blob)?;
        let mut hr = Reader::new(payload);
        let n_rows = convert::usize_from_u32(hr.u32()?);
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let mut values = Vec::with_capacity(schema.len());
            for _ in 0..schema.len() {
                values.push(read_value(&mut hr)?);
            }
            rows.push(Row::new(values));
        }
        Ok(rows)
    }

    /// Whether `dir` holds a persisted database (any catalog manifest).
    /// Does not create the directory.
    pub fn persisted_at(dir: impl AsRef<std::path::Path>) -> bool {
        let Ok(rd) = std::fs::read_dir(dir.as_ref()) else {
            return false;
        };
        rd.flatten().any(|e| {
            e.file_name().to_str().is_some_and(|n| {
                n.strip_suffix(".blob")
                    .and_then(persist::parse_manifest_key)
                    .is_some()
            })
        })
    }

    /// Scrub a persisted directory: re-check every blob of the newest
    /// usable generation against its CRC and report corrupt, missing and
    /// orphaned blobs without loading the data.
    pub fn verify(dir: impl AsRef<std::path::Path>) -> Result<VerifyReport> {
        let store = cstore_storage::blob::FileBlobStore::open(dir.as_ref())?;
        Self::verify_store(&store)
    }

    /// Scrub any blob store (see [`Database::verify`]).
    pub fn verify_store(store: &dyn cstore_storage::blob::BlobStore) -> Result<VerifyReport> {
        use cstore_storage::format::Reader;
        let mut report = VerifyReport::default();
        let mut chosen = None;
        for gen in persist::manifest_generations(store) {
            match Self::read_catalog_manifest(store, gen) {
                Ok(entries) => {
                    chosen = Some((gen, entries));
                    break;
                }
                Err(e) => report
                    .corrupt
                    .push((persist::manifest_key(gen), e.to_string())),
            }
        }
        let Some((gen, entries)) = chosen else {
            return Err(Error::Storage(
                "no usable catalog manifest to verify against".into(),
            ));
        };
        report.generation = gen;
        let present: std::collections::BTreeSet<String> = store.keys().into_iter().collect();
        // Expected keys of the current generation, from the manifests.
        let mut expected = vec![persist::manifest_key(gen)];
        for e in &entries {
            let prefix = persist::gen_prefix(gen, &e.name);
            if e.is_heap {
                expected.push(format!("{prefix}.heap"));
            } else {
                expected.push(format!("{prefix}.manifest"));
                expected.push(format!("{prefix}.delta"));
                // An unreadable table manifest is caught by the CRC pass
                // below; its row groups then surface as orphans.
                if let Ok(ids) = cstore_storage::ColumnStore::persisted_group_ids(store, &prefix) {
                    for id in ids {
                        expected.push(format!("{prefix}.rg{}", id.0));
                    }
                }
            }
        }
        // The Query Store blob is optional (older generations predate
        // it): CRC-check it when present, never report it missing.
        let qs_key = format!("g{gen}.querystore");
        if present.contains(&qs_key) {
            expected.push(qs_key);
        }
        for key in &expected {
            if !present.contains(key) {
                report.missing.push(key.clone());
                continue;
            }
            report.blobs_checked += 1;
            match store.get(key).and_then(|b| Reader::check_crc(&b).map(drop)) {
                Ok(()) => {}
                Err(e) => report.corrupt.push((key.clone(), e.to_string())),
            }
        }
        let expected: std::collections::BTreeSet<String> = expected.into_iter().collect();
        report.orphaned = present.difference(&expected).cloned().collect();
        Ok(report)
    }

    /// One-stop observability dump in Prometheus text format: the
    /// process-wide metrics registry (query counters and latency
    /// histograms), per-table tuple-mover counters for movers started
    /// through [`Database::start_tuple_mover`], and crash-recovery
    /// quarantines recorded when this database was opened degraded.
    pub fn metrics(&self) -> String {
        let mut out = metrics::global().render_prometheus();
        for (table, status) in self.movers.lock().iter() {
            // lint: allow(lock-order) — `status` is the mover.status Arc
            // (level 5) yielded by the movers map; 4 → 5 ascends.
            let s = status.lock().clone();
            out.push_str(&format!(
                "# mover table={table} state={:?} last_error={:?}\n",
                s.state, s.last_error
            ));
            for (name, v) in [
                ("cstore_mover_passes", s.passes),
                ("cstore_mover_stores_moved", s.stores_moved),
                ("cstore_mover_rows_moved", s.rows_moved),
                ("cstore_mover_transient_retries", s.transient_retries),
                ("cstore_mover_restarts", u64::from(s.restarts)),
                (
                    "cstore_mover_consecutive_failures",
                    u64::from(s.consecutive_failures),
                ),
            ] {
                out.push_str(&format!("{name}{{table=\"{table}\"}} {v}\n"));
            }
        }
        let r = &self.open_report;
        out.push_str(&format!(
            "# TYPE cstore_open_skipped_manifests gauge\ncstore_open_skipped_manifests {}\n",
            r.skipped_manifests.len()
        ));
        out.push_str(&format!(
            "# TYPE cstore_open_quarantined_blobs gauge\ncstore_open_quarantined_blobs {}\n",
            r.total_quarantined()
        ));
        for t in &r.tables {
            for q in &t.quarantined {
                out.push_str(&format!(
                    "# quarantined table={} key={} kind={:?}: {}\n",
                    t.table, q.key, q.kind, q.error
                ));
            }
        }
        // Resource-governor series: admission, shared memory ledger,
        // delta backpressure, health.
        let s = self.governor.snapshot();
        out.push_str(&format!(
            "# TYPE cstore_governor_health gauge\ncstore_governor_health{{state=\"{}\"}} 1\n",
            s.health_state()
        ));
        if let Some(cause) = &s.health_cause {
            out.push_str(&format!("# governor read-only cause: {cause}\n"));
        }
        for (name, v) in [
            ("cstore_governor_admission_running", s.admission_running),
            ("cstore_governor_admission_queued", s.admission_queued),
            (
                "cstore_governor_admission_max_concurrent",
                s.admission_max_concurrent,
            ),
            ("cstore_governor_admitted_total", s.admission_admitted_total),
            (
                "cstore_governor_admission_rejected_total",
                s.admission_rejected_total,
            ),
            (
                "cstore_governor_admission_timeouts_total",
                s.admission_timeouts_total,
            ),
            ("cstore_governor_mem_reserved_bytes", s.mem_reserved_bytes),
            ("cstore_governor_mem_peak_bytes", s.mem_peak_bytes),
            ("cstore_governor_mem_limit_bytes", s.mem_limit_bytes),
            ("cstore_governor_mem_exhausted_total", s.mem_exhausted_total),
            (
                "cstore_governor_backpressure_high_water",
                s.backpressure_high_water,
            ),
            (
                "cstore_governor_backpressure_waits_total",
                s.backpressure_waits_total,
            ),
            (
                "cstore_governor_backpressure_rejected_total",
                s.backpressure_rejected_total,
            ),
            ("cstore_governor_degraded_total", s.degraded_total),
            ("cstore_governor_write_rejects_total", s.write_rejects_total),
            (
                "cstore_governor_recovery_probes_total",
                s.recovery_probes_total,
            ),
        ] {
            out.push_str(&format!("{name} {v}\n"));
        }
        // Per-lock acquisition/contention/hold series from the runtime
        // lockdep layer (process-wide: every leveled lock registers on
        // first construction).
        out.push_str(&cstore_common::sync::render_lock_stats_prometheus());
        // Engine-wide wait-class totals (the global side of the wait
        // registry behind `sys.wait_stats`).
        out.push_str(&cstore_common::waits::render_prometheus());
        out
    }

    /// Table statistics (columnstore tables).
    pub fn table_stats(&self, table: &str) -> Result<cstore_delta::TableStats> {
        match self.catalog.try_get(table)? {
            TableEntry::ColumnStore(t) => Ok(t.stats()),
            TableEntry::Heap(h) => Ok(cstore_delta::TableStats {
                compressed_rows: 0,
                delta_rows: h.n_rows(),
                ..Default::default()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new().with_table_config(TableConfig {
            delta_capacity: 100,
            bulk_load_threshold: 500,
            max_rowgroup_rows: 1000,
            ..TableConfig::default()
        });
        db.execute(
            "CREATE TABLE sales (id BIGINT NOT NULL, cust_id BIGINT NOT NULL, \
             amount DOUBLE, day DATE NOT NULL)",
        )
        .unwrap();
        db.execute(
            "CREATE TABLE customers (id BIGINT NOT NULL, name VARCHAR NOT NULL, \
             region VARCHAR NOT NULL)",
        )
        .unwrap();
        let rows: Vec<Row> = (0..2000)
            .map(|i| {
                Row::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 20),
                    Value::Float64((i % 100) as f64),
                    Value::Date((i / 100) as i32),
                ])
            })
            .collect();
        db.bulk_load("sales", &rows).unwrap();
        let custs: Vec<Row> = (0..20)
            .map(|i| {
                Row::new(vec![
                    Value::Int64(i),
                    Value::str(format!("cust{i}")),
                    Value::str(["north", "south"][(i % 2) as usize]),
                ])
            })
            .collect();
        db.bulk_load("customers", &custs).unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let db = db();
        let r = db
            .execute("SELECT id, amount FROM sales WHERE id < 5 ORDER BY id")
            .unwrap();
        assert_eq!(r.columns(), &["id", "amount"]);
        assert_eq!(r.rows().len(), 5);
        assert_eq!(r.rows()[3].get(0), &Value::Int64(3));
    }

    #[test]
    fn end_to_end_star_join_aggregate() {
        let db = db();
        let r = db
            .execute(
                "SELECT c.region, COUNT(*) AS n, SUM(s.amount) AS total \
                 FROM sales s JOIN customers c ON s.cust_id = c.id \
                 WHERE s.day < DATE 10 \
                 GROUP BY c.region ORDER BY region",
            )
            .unwrap();
        assert_eq!(r.rows().len(), 2);
        // day < 10 → ids 0..1000; split evenly north/south by cust parity.
        assert_eq!(r.rows()[0].get(0), &Value::str("north"));
        assert_eq!(r.rows()[0].get(1), &Value::Int64(500));
        let total_north: f64 = (0..1000)
            .filter(|i| (i % 20) % 2 == 0)
            .map(|i| (i % 100) as f64)
            .sum();
        assert_eq!(r.rows()[0].get(2), &Value::Float64(total_north));
    }

    #[test]
    fn insert_update_delete_cycle() {
        let db = db();
        let n = db
            .execute("INSERT INTO sales VALUES (9999, 1, 42.0, 5), (10000, 2, NULL, 5)")
            .unwrap()
            .affected();
        assert_eq!(n, 2);
        let r = db
            .execute("SELECT COUNT(*) FROM sales WHERE id >= 9999")
            .unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Int64(2));
        let n = db
            .execute("UPDATE sales SET amount = 100.0 WHERE id = 9999")
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        let r = db
            .execute("SELECT amount FROM sales WHERE id = 9999")
            .unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Float64(100.0));
        let n = db
            .execute("DELETE FROM sales WHERE id >= 9999")
            .unwrap()
            .affected();
        assert_eq!(n, 2);
        let r = db
            .execute("SELECT COUNT(*) FROM sales WHERE id >= 9999")
            .unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Int64(0));
    }

    #[test]
    fn delete_then_tuple_move_then_query() {
        let db = db();
        db.execute("DELETE FROM sales WHERE id < 100").unwrap();
        db.execute("INSERT INTO sales VALUES (5000, 3, 1.0, 0)")
            .unwrap();
        db.tuple_move("sales").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Int64(2000 - 100 + 1));
    }

    #[test]
    fn heap_tables_work_via_sql() {
        let db = Database::new();
        db.execute("CREATE TABLE h (a BIGINT NOT NULL, b VARCHAR) USING HEAP")
            .unwrap();
        db.execute("INSERT INTO h VALUES (1, 'x'), (2, 'y'), (3, NULL)")
            .unwrap();
        let r = db
            .execute("SELECT a FROM h WHERE b IS NOT NULL ORDER BY a DESC")
            .unwrap();
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0].get(0), &Value::Int64(2));
        assert_eq!(
            db.execute("UPDATE h SET b = 'z' WHERE a = 3")
                .unwrap()
                .affected(),
            1
        );
        assert_eq!(
            db.execute("DELETE FROM h WHERE b = 'z'")
                .unwrap()
                .affected(),
            1
        );
        let r = db.execute("SELECT COUNT(*) FROM h").unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Int64(2));
    }

    #[test]
    fn explain_reports_pushdown() {
        let db = db();
        let r = db
            .execute("EXPLAIN SELECT id FROM sales WHERE day = 3")
            .unwrap();
        let QueryResult::Explain(text) = r else {
            panic!()
        };
        assert!(text.contains("Scan sales"), "{text}");
        assert!(text.contains("pushed="), "{text}");
        assert!(text.contains("mode=Batch"), "{text}");
    }

    #[test]
    fn archive_preserves_results() {
        let db = db();
        let before = db.execute("SELECT SUM(amount) FROM sales").unwrap().rows()[0]
            .get(0)
            .clone();
        db.archive_table("sales").unwrap();
        let after = db.execute("SELECT SUM(amount) FROM sales").unwrap().rows()[0]
            .get(0)
            .clone();
        assert_eq!(before, after);
    }

    #[test]
    fn errors_are_reported() {
        let db = db();
        assert!(db.execute("SELECT nope FROM sales").is_err());
        assert!(db.execute("SELECT * FROM missing").is_err());
        assert!(db.execute("INSERT INTO sales VALUES (1)").is_err());
        assert!(db.execute("CREATE TABLE sales (x BIGINT)").is_err());
        assert!(db.execute("garbage").is_err());
    }

    #[test]
    fn to_table_renders() {
        let db = db();
        let r = db
            .execute("SELECT id FROM sales WHERE id < 2 ORDER BY id")
            .unwrap();
        let text = r.to_table();
        assert!(text.contains("id"));
        assert!(text.contains('0') && text.contains('1'));
    }

    fn count(db: &Database, sql: &str) -> i64 {
        let r = db.execute(sql).unwrap();
        match r.rows()[0].get(0) {
            Value::Int64(n) => *n,
            other => panic!("expected COUNT, got {other:?}"),
        }
    }

    #[test]
    fn txn_commit_makes_writes_visible() {
        let db = db();
        assert!(matches!(
            db.execute("BEGIN").unwrap(),
            QueryResult::Txn(TxnAck::Begun)
        ));
        assert!(db.in_transaction());
        db.execute("INSERT INTO sales VALUES (7001, 1, 1.0, 0)")
            .unwrap();
        db.execute("UPDATE sales SET amount = 9.0 WHERE id = 7001")
            .unwrap();
        // The transaction sees its own buffered writes…
        assert_eq!(count(&db, "SELECT COUNT(*) FROM sales WHERE id = 7001"), 1);
        let r = db
            .execute("SELECT amount FROM sales WHERE id = 7001")
            .unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Float64(9.0));
        // …but another session does not until COMMIT.
        let peer = db.new_session();
        assert_eq!(
            count(&peer, "SELECT COUNT(*) FROM sales WHERE id = 7001"),
            0
        );
        assert!(matches!(
            db.execute("COMMIT").unwrap(),
            QueryResult::Txn(TxnAck::Committed)
        ));
        assert!(!db.in_transaction());
        assert_eq!(
            count(&peer, "SELECT COUNT(*) FROM sales WHERE id = 7001"),
            1
        );
    }

    #[test]
    fn txn_rollback_undoes_all_statements() {
        let db = db();
        let before = count(&db, "SELECT COUNT(*) FROM sales");
        db.execute("BEGIN TRANSACTION").unwrap();
        db.execute("INSERT INTO sales VALUES (7002, 1, 1.0, 0), (7003, 2, 2.0, 0)")
            .unwrap();
        db.execute("DELETE FROM sales WHERE id = 0").unwrap();
        db.execute("UPDATE sales SET amount = 0.0 WHERE id = 1")
            .unwrap();
        assert!(matches!(
            db.execute("ROLLBACK").unwrap(),
            QueryResult::Txn(TxnAck::RolledBack)
        ));
        assert_eq!(count(&db, "SELECT COUNT(*) FROM sales"), before);
        assert_eq!(count(&db, "SELECT COUNT(*) FROM sales WHERE id = 0"), 1);
        let r = db.execute("SELECT amount FROM sales WHERE id = 1").unwrap();
        assert_ne!(r.rows()[0].get(0), &Value::Float64(0.0));
    }

    #[test]
    fn txn_snapshot_isolates_from_concurrent_commits() {
        let db = db();
        let reader = db.new_session();
        reader.execute("BEGIN").unwrap();
        // Pin the snapshot with a read, then change the table underneath.
        let before = count(&reader, "SELECT COUNT(*) FROM sales");
        db.execute("INSERT INTO sales VALUES (7004, 1, 1.0, 0)")
            .unwrap();
        db.execute("DELETE FROM sales WHERE id = 2").unwrap();
        // The open transaction still sees its BEGIN-time view.
        assert_eq!(count(&reader, "SELECT COUNT(*) FROM sales"), before);
        assert_eq!(count(&reader, "SELECT COUNT(*) FROM sales WHERE id = 2"), 1);
        reader.execute("COMMIT").unwrap();
        // After COMMIT the session reads the live image again.
        assert_eq!(count(&reader, "SELECT COUNT(*) FROM sales"), before);
        assert_eq!(count(&reader, "SELECT COUNT(*) FROM sales WHERE id = 2"), 0);
    }

    #[test]
    fn txn_control_statement_errors() {
        let db = db();
        assert!(db.execute("COMMIT").is_err());
        assert!(db.execute("ROLLBACK").is_err());
        db.execute("BEGIN").unwrap();
        // Nested BEGIN is an error but must not poison the open txn.
        assert!(db.execute("BEGIN").is_err());
        db.execute("INSERT INTO sales VALUES (7005, 1, 1.0, 0)")
            .unwrap();
        db.execute("COMMIT").unwrap();
        assert_eq!(count(&db, "SELECT COUNT(*) FROM sales WHERE id = 7005"), 1);
    }

    #[test]
    fn txn_statement_failure_poisons_until_rollback() {
        let db = db();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO sales VALUES (7006, 1, 1.0, 0)")
            .unwrap();
        // Second row violates NOT NULL: the whole statement must be undone
        // and the transaction poisoned.
        let err = db
            .execute("INSERT INTO sales VALUES (7007, 2, 2.0, 0), (7008, NULL, 3.0, 0)")
            .unwrap_err();
        assert!(err.to_string().contains("NULL"), "{err}");
        let err = db
            .execute("SELECT COUNT(*) FROM sales")
            .unwrap_err()
            .to_string();
        assert!(err.contains("ROLLBACK required"), "{err}");
        // COMMIT on a poisoned transaction rolls back and reports the error.
        let err = db.execute("COMMIT").unwrap_err().to_string();
        assert!(err.contains("rolled back"), "{err}");
        assert!(!db.in_transaction());
        assert_eq!(
            count(
                &db,
                "SELECT COUNT(*) FROM sales WHERE id >= 7006 AND id <= 7008"
            ),
            0
        );
    }

    #[test]
    fn txn_locked_row_conflicts_with_autocommit_writer() {
        let db = db();
        db.execute("BEGIN").unwrap();
        db.execute("UPDATE sales SET amount = 1.0 WHERE id = 3")
            .unwrap();
        let peer = db.new_session();
        let err = peer.execute("DELETE FROM sales WHERE id = 3").unwrap_err();
        assert_eq!(err.code(), "CONFLICT");
        db.execute("COMMIT").unwrap();
        // Lock released: the peer's write now succeeds.
        assert_eq!(
            peer.execute("DELETE FROM sales WHERE id = 3")
                .unwrap()
                .affected(),
            1
        );
    }

    #[test]
    fn txn_write_write_conflict_between_sessions() {
        let db = db();
        let a = db.new_session();
        let b = db.new_session();
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        a.execute("UPDATE sales SET amount = 1.0 WHERE id = 4")
            .unwrap();
        // B touches the same row: statement-time lock detection aborts B.
        let err = b
            .execute("UPDATE sales SET amount = 2.0 WHERE id = 4")
            .unwrap_err();
        assert_eq!(err.code(), "CONFLICT");
        b.execute("ROLLBACK").unwrap();
        a.execute("COMMIT").unwrap();
        let r = db.execute("SELECT amount FROM sales WHERE id = 4").unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Float64(1.0));
        assert!(db.txns().counters().conflicts >= 1);
    }

    #[test]
    fn txn_ddl_and_save_are_rejected_inside_transaction() {
        let db = db();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO sales VALUES (7009, 1, 1.0, 0)")
            .unwrap();
        let mut store = cstore_storage::blob::MemBlobStore::new();
        let err = db.save_to_store(&mut store).unwrap_err().to_string();
        assert!(err.contains("transaction is open"), "{err}");
        db.execute("ROLLBACK").unwrap();
        db.save_to_store(&mut store).unwrap();
    }

    #[test]
    fn txn_outcomes_reach_query_log_and_sys_transactions() {
        let db = db();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO sales VALUES (7010, 1, 1.0, 0)")
            .unwrap();
        db.execute("ROLLBACK").unwrap();
        let rollbacks = count(
            &db,
            "SELECT COUNT(*) FROM sys.query_log WHERE status = 'ROLLBACK'",
        );
        assert_eq!(rollbacks, 1);
        let aborted = count(
            &db,
            "SELECT COUNT(*) FROM sys.transactions WHERE state = 'ABORTED'",
        );
        assert!(aborted >= 1);
        // A conflict shows up with its own status.
        db.execute("BEGIN").unwrap();
        db.execute("UPDATE sales SET amount = 1.0 WHERE id = 5")
            .unwrap();
        let peer = db.new_session();
        assert!(peer.execute("DELETE FROM sales WHERE id = 5").is_err());
        db.execute("COMMIT").unwrap();
        let conflicts = count(
            &db,
            "SELECT COUNT(*) FROM sys.query_log WHERE status = 'CONFLICT'",
        );
        assert_eq!(conflicts, 1);
        let committed = count(
            &db,
            "SELECT COUNT(*) FROM sys.transactions WHERE state = 'COMMITTED'",
        );
        assert!(committed >= 1);
    }

    #[test]
    fn txn_delete_of_own_insert_nets_out() {
        let db = db();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO sales VALUES (7011, 1, 1.0, 0)")
            .unwrap();
        assert_eq!(
            db.execute("DELETE FROM sales WHERE id = 7011")
                .unwrap()
                .affected(),
            1
        );
        assert_eq!(count(&db, "SELECT COUNT(*) FROM sales WHERE id = 7011"), 0);
        db.execute("COMMIT").unwrap();
        assert_eq!(count(&db, "SELECT COUNT(*) FROM sales WHERE id = 7011"), 0);
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;

    #[test]
    fn decimal_display_handles_signs_and_scales() {
        let f = |m: i64, scale: u8| {
            QueryResult::format_value(&Value::Decimal(m), DataType::Decimal { scale })
        };
        assert_eq!(f(1250, 2), "12.50");
        assert_eq!(f(5, 2), "0.05");
        assert_eq!(f(-25, 2), "-0.25");
        assert_eq!(f(-1250, 2), "-12.50");
        assert_eq!(f(0, 2), "0.00");
        assert_eq!(f(7, 0), "7");
        assert_eq!(f(123456, 4), "12.3456");
    }
}
