//! Crash-safe persistence protocol: generation keys and open/verify reports.
//!
//! A database save is made atomic with respect to crashes by *generation
//! stamping*: save `N` writes every table blob under a `g<N>.` key prefix
//! first and a catalog manifest `catalog.g<N>` **last**. The manifest is
//! the commit point — a crash anywhere before it leaves generation `N-1`
//! fully intact, and a torn manifest fails its CRC and is skipped at open.
//! After the manifest lands, older generations are garbage-collected
//! best-effort; blobs a crashed GC leaves behind are harmless orphans
//! (reported by `Database::verify`).
//!
//! Opening picks the newest generation with a readable manifest, falling
//! back generation by generation past torn or corrupt manifests. With a
//! valid manifest in hand, a *strict* open fails on the first unreadable
//! table blob, while a *degraded* open quarantines the blob — dropping the
//! data it held — and reports every drop in an [`OpenReport`].

use cstore_storage::blob::BlobStore;
use cstore_storage::BlobQuarantine;

/// How [`crate::Database`] opens a persisted store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// Fail on the first unreadable blob of the chosen generation.
    Strict,
    /// Quarantine unreadable blobs and keep opening; data loss is
    /// reported, not fatal.
    Degraded,
}

/// What a degraded (or strict) open skipped on the way to a database.
#[derive(Clone, Debug, Default)]
pub struct OpenReport {
    /// The generation that was opened.
    pub generation: u64,
    /// Newer manifests that were torn or corrupt, with the error —
    /// `(generation, error)` — newest first.
    pub skipped_manifests: Vec<(u64, String)>,
    /// Tables that lost blobs, in catalog order. Clean tables are omitted.
    pub tables: Vec<TableOpenReport>,
    /// WAL replay outcome, when a WAL was attached at open: records
    /// applied past the save, a truncated torn tail, quarantined
    /// segments. `None` when no WAL was attached.
    pub wal: Option<cstore_delta::WalReplayReport>,
}

impl OpenReport {
    /// True when nothing was skipped or quarantined (a truncated WAL
    /// torn tail or quarantined WAL segment counts as unclean; normal
    /// replay of committed records does not).
    pub fn is_clean(&self) -> bool {
        self.skipped_manifests.is_empty()
            && self.tables.is_empty()
            && self.wal.as_ref().is_none_or(|w| w.is_clean())
    }

    /// Total quarantined blobs across all tables.
    pub fn total_quarantined(&self) -> usize {
        self.tables.iter().map(|t| t.quarantined.len()).sum()
    }
}

/// Blobs one table lost in a degraded open.
#[derive(Clone, Debug)]
pub struct TableOpenReport {
    pub table: String,
    pub quarantined: Vec<BlobQuarantine>,
}

/// Outcome of a [`crate::Database::verify`] scrub.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// The generation verified (newest with a readable manifest).
    pub generation: u64,
    /// Blobs whose CRC was checked.
    pub blobs_checked: usize,
    /// Present blobs that failed their CRC or parse: `(key, error)`.
    pub corrupt: Vec<(String, String)>,
    /// Blobs the manifests reference that are absent.
    pub missing: Vec<String>,
    /// Keys belonging to no current-generation blob (stale generations an
    /// interrupted GC left behind). Harmless, but reclaimable.
    pub orphaned: Vec<String>,
}

impl VerifyReport {
    /// True when every referenced blob is present and passes its CRC
    /// (orphans do not count against cleanliness).
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.missing.is_empty()
    }
}

/// Key prefix of table blobs in generation `gen`.
pub(crate) fn gen_prefix(gen: u64, table: &str) -> String {
    format!("g{gen}.{table}")
}

/// Key of the generation-`gen` catalog manifest.
pub(crate) fn manifest_key(gen: u64) -> String {
    format!("catalog.g{gen}")
}

/// `catalog.g<N>` → `N`.
pub(crate) fn parse_manifest_key(key: &str) -> Option<u64> {
    key.strip_prefix("catalog.g")?.parse().ok()
}

/// `g<N>.<rest>` → `N`.
pub(crate) fn parse_gen_prefix(key: &str) -> Option<u64> {
    let rest = key.strip_prefix('g')?;
    let (digits, _) = rest.split_once('.')?;
    digits.parse().ok()
}

/// All generations with a catalog manifest present, newest first.
pub(crate) fn manifest_generations(store: &dyn BlobStore) -> Vec<u64> {
    let mut gens: Vec<u64> = store
        .keys()
        .iter()
        .filter_map(|k| parse_manifest_key(k))
        .collect();
    gens.sort_unstable_by(|a, b| b.cmp(a));
    gens.dedup();
    gens
}

/// Delete every blob belonging to a generation other than `keep`.
/// Best-effort: the new generation is already durable, so a failed delete
/// only leaves an orphan for [`VerifyReport::orphaned`] to report.
pub(crate) fn collect_garbage(store: &mut dyn BlobStore, keep: u64) {
    for key in store.keys() {
        let gen = parse_manifest_key(&key).or_else(|| parse_gen_prefix(&key));
        if gen.is_some_and(|g| g != keep) {
            // lint: allow(discard) — best-effort GC, see above
            let _ = store.delete(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_parsers_roundtrip() {
        assert_eq!(parse_manifest_key(&manifest_key(7)), Some(7));
        assert_eq!(parse_gen_prefix(&gen_prefix(12, "sales")), Some(12));
        assert_eq!(parse_gen_prefix("g12.sales.rg3"), Some(12));
        assert_eq!(parse_manifest_key("catalog"), None);
        assert_eq!(parse_manifest_key("catalog.gx"), None);
        assert_eq!(parse_gen_prefix("sales.rg3"), None);
        assert_eq!(parse_gen_prefix("gx.sales"), None);
        assert_eq!(parse_gen_prefix("g5"), None, "prefix needs a dot");
    }

    #[test]
    fn generations_sorted_newest_first() {
        let mut store = cstore_storage::blob::MemBlobStore::new();
        for g in [3u64, 1, 10] {
            store.put(&manifest_key(g), b"x").unwrap();
        }
        store.put("g10.t.manifest", b"x").unwrap();
        assert_eq!(manifest_generations(&store), vec![10, 3, 1]);
    }

    #[test]
    fn gc_keeps_only_current_generation() {
        let mut store = cstore_storage::blob::MemBlobStore::new();
        store.put(&manifest_key(1), b"x").unwrap();
        store.put("g1.t.manifest", b"x").unwrap();
        store.put(&manifest_key(2), b"x").unwrap();
        store.put("g2.t.manifest", b"x").unwrap();
        store.put("unrelated", b"x").unwrap();
        collect_garbage(&mut store, 2);
        let mut keys = store.keys();
        keys.sort();
        assert_eq!(keys, vec!["catalog.g2", "g2.t.manifest", "unrelated"]);
    }
}
