//! The Query Store: per-shape workload history in fixed time intervals,
//! persisted across restarts.
//!
//! Every statement the database executes is normalized to a *shape*
//! (literals → `?`, see `cstore_sql::shape`) and aggregated into the
//! current time interval: execution count, rows, an elapsed-time
//! histogram (for p50/p99), the query's wait-class breakdown, spill
//! volume, failures and timeouts. Closed intervals form a bounded
//! history ring that [`crate::Database::save_to`] persists as a
//! `g<N>.querystore` blob and `open_from` reloads, so workload history
//! survives restart — the substrate the cost-based tuple mover
//! (ROADMAP item 4) and any regression-hunting DBA read.
//!
//! Locking: one leveled mutex, `db.query_store` (level 15) — a leaf
//! lock, taken only to record one finished query or snapshot the view;
//! no engine lock is ever acquired under it.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use cstore_common::metrics::{quantile_from_cumulative, LATENCY_BUCKETS_US};
use cstore_common::sync::Mutex;
use cstore_common::waits::WaitSnapshot;
use cstore_common::{convert, Error, Result};
use cstore_storage::format::{Reader, Writer};

/// Default interval width: one minute, SQL Server Query Store's finest
/// `INTERVAL_LENGTH_MINUTES` granularity.
pub const DEFAULT_INTERVAL_MS: u64 = 60_000;
/// Closed intervals retained in memory (plus the current one).
pub const DEFAULT_MAX_INTERVALS: usize = 64;
/// Distinct shapes tracked per interval; further shapes are counted in
/// `shapes_dropped` rather than growing without bound.
pub const DEFAULT_MAX_SHAPES: usize = 512;

const BLOB_MAGIC: u32 = 0x5153_5452; // "QSTR"
const BLOB_VERSION: u16 = 1;

/// One finished statement, as reported by `Database::execute`.
#[derive(Clone, Debug)]
pub struct QuerySample {
    pub shape_hash: u64,
    pub shape_text: String,
    pub elapsed: Duration,
    pub rows: u64,
    pub failed: bool,
    pub timed_out: bool,
    pub waits: Vec<WaitSnapshot>,
    pub spill_partitions: u64,
    pub spill_bytes: u64,
}

/// Per-class wait totals inside one shape aggregate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WaitAgg {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// Aggregated stats of one query shape within one interval.
#[derive(Clone, Debug)]
pub struct ShapeAgg {
    pub shape_hash: u64,
    pub shape_text: String,
    pub executions: u64,
    pub failures: u64,
    pub timeouts: u64,
    pub rows_returned: u64,
    pub total_elapsed_us: u64,
    pub max_elapsed_us: u64,
    /// Latency histogram counts, one per [`LATENCY_BUCKETS_US`] bound
    /// plus a trailing overflow bucket; p50/p99 interpolate from these.
    pub latency_buckets: Vec<u64>,
    pub waits: BTreeMap<String, WaitAgg>,
    pub spill_partitions: u64,
    pub spill_bytes: u64,
}

impl ShapeAgg {
    fn new(shape_hash: u64, shape_text: String) -> ShapeAgg {
        ShapeAgg {
            shape_hash,
            shape_text,
            executions: 0,
            failures: 0,
            timeouts: 0,
            rows_returned: 0,
            total_elapsed_us: 0,
            max_elapsed_us: 0,
            latency_buckets: vec![0; LATENCY_BUCKETS_US.len() + 1],
            waits: BTreeMap::new(),
            spill_partitions: 0,
            spill_bytes: 0,
        }
    }

    fn absorb(&mut self, s: &QuerySample) {
        let elapsed_us = u64::try_from(s.elapsed.as_micros()).unwrap_or(u64::MAX);
        self.executions += 1;
        self.failures += s.failed as u64;
        self.timeouts += s.timed_out as u64;
        self.rows_returned += s.rows;
        self.total_elapsed_us = self.total_elapsed_us.saturating_add(elapsed_us);
        self.max_elapsed_us = self.max_elapsed_us.max(elapsed_us);
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| elapsed_us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_buckets[idx] += 1;
        for w in &s.waits {
            let agg = self.waits.entry(w.class.clone()).or_default();
            agg.count += w.count;
            agg.total_ns = agg.total_ns.saturating_add(w.total_ns);
            agg.max_ns = agg.max_ns.max(w.max_ns);
        }
        self.spill_partitions += s.spill_partitions;
        self.spill_bytes += s.spill_bytes;
    }

    /// Interpolated elapsed-time quantile in microseconds.
    pub fn elapsed_quantile_us(&self, q: f64) -> u64 {
        let mut acc = 0u64;
        let cumulative: Vec<(u64, u64)> = self
            .latency_buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                acc += n;
                (LATENCY_BUCKETS_US.get(i).copied().unwrap_or(u64::MAX), acc)
            })
            .collect();
        quantile_from_cumulative(&cumulative, q)
    }

    /// Compact `CLASS=total_ms(n)` rendering of the wait breakdown,
    /// worst class first; empty string when the shape never waited.
    pub fn waits_summary(&self) -> String {
        let mut entries: Vec<(&String, &WaitAgg)> = self.waits.iter().collect();
        entries.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns));
        entries
            .iter()
            .map(|(class, agg)| {
                format!(
                    "{}={:.3}ms(n={})",
                    class,
                    agg.total_ns as f64 / 1e6,
                    agg.count
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One fixed time interval of aggregated shapes.
#[derive(Clone, Debug)]
pub struct Interval {
    /// `unix_ms / interval_ms` at the time the interval opened.
    pub id: u64,
    /// Interval start, milliseconds since the unix epoch.
    pub start_unix_ms: u64,
    pub shapes: BTreeMap<u64, ShapeAgg>,
    /// Samples not aggregated because the per-interval shape cap was hit.
    pub shapes_dropped: u64,
}

struct StoreInner {
    /// Oldest first; the back interval is current iff its id matches the
    /// wall clock. All of these persist.
    intervals: VecDeque<Interval>,
}

/// The Query Store. One per [`crate::Database`]; cheap to record into
/// (one leaf-lock acquisition per finished statement).
pub struct QueryStore {
    shapes: Mutex<StoreInner>,
    interval_ms: std::sync::atomic::AtomicU64,
    max_intervals: usize,
    max_shapes: usize,
}

impl Default for QueryStore {
    fn default() -> Self {
        QueryStore::new()
    }
}

impl QueryStore {
    pub fn new() -> QueryStore {
        QueryStore {
            shapes: Mutex::new_leveled(
                15,
                "db.query_store",
                StoreInner {
                    intervals: VecDeque::new(),
                },
            ),
            interval_ms: std::sync::atomic::AtomicU64::new(DEFAULT_INTERVAL_MS),
            max_intervals: DEFAULT_MAX_INTERVALS,
            max_shapes: DEFAULT_MAX_SHAPES,
        }
    }

    fn now_unix_ms() -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }

    pub fn interval_ms(&self) -> u64 {
        self.interval_ms.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// `SET query_store_interval_ms`: width of *future* intervals (the
    /// current interval closes at its original boundary).
    pub fn set_interval_ms(&self, ms: u64) {
        self.interval_ms
            .store(ms.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Aggregate one finished statement into the current interval.
    pub fn record(&self, sample: &QuerySample) {
        let width = self.interval_ms();
        let now = Self::now_unix_ms();
        let id = now / width;
        let mut inner = self.shapes.lock();
        let open_new = inner.intervals.back().is_none_or(|cur| cur.id != id);
        if open_new {
            inner.intervals.push_back(Interval {
                id,
                start_unix_ms: id * width,
                shapes: BTreeMap::new(),
                shapes_dropped: 0,
            });
            while inner.intervals.len() > self.max_intervals {
                inner.intervals.pop_front();
            }
        }
        let max_shapes = self.max_shapes;
        if let Some(cur) = inner.intervals.back_mut() {
            if !cur.shapes.contains_key(&sample.shape_hash) && cur.shapes.len() >= max_shapes {
                cur.shapes_dropped += 1;
                return;
            }
            cur.shapes
                .entry(sample.shape_hash)
                .or_insert_with(|| ShapeAgg::new(sample.shape_hash, sample.shape_text.clone()))
                .absorb(sample);
        }
    }

    /// All intervals, oldest first (clone — the view builder iterates
    /// without holding the store lock).
    pub fn snapshot(&self) -> Vec<Interval> {
        self.shapes.lock().intervals.iter().cloned().collect()
    }

    /// Total executions recorded for `shape_hash` across all intervals
    /// (test and round-trip helper).
    pub fn executions_for(&self, shape_hash: u64) -> u64 {
        self.snapshot()
            .iter()
            .filter_map(|iv| iv.shapes.get(&shape_hash))
            .map(|s| s.executions)
            .sum()
    }

    // ---------------------------------------------------- persistence

    /// Serialize every interval as a CRC-sealed blob payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let inner = self.shapes.lock();
        let mut w = Writer::new();
        w.u32(BLOB_MAGIC);
        w.u16(BLOB_VERSION);
        w.u64(self.interval_ms());
        w.u32(convert::u32_from_usize(inner.intervals.len())?);
        for iv in &inner.intervals {
            w.u64(iv.id);
            w.u64(iv.start_unix_ms);
            w.u64(iv.shapes_dropped);
            w.u32(convert::u32_from_usize(iv.shapes.len())?);
            for shape in iv.shapes.values() {
                w.u64(shape.shape_hash);
                w.lp_bytes(shape.shape_text.as_bytes())?;
                w.u64(shape.executions);
                w.u64(shape.failures);
                w.u64(shape.timeouts);
                w.u64(shape.rows_returned);
                w.u64(shape.total_elapsed_us);
                w.u64(shape.max_elapsed_us);
                w.u32(convert::u32_from_usize(shape.latency_buckets.len())?);
                for &n in &shape.latency_buckets {
                    w.u64(n);
                }
                w.u32(convert::u32_from_usize(shape.waits.len())?);
                for (class, agg) in &shape.waits {
                    w.lp_bytes(class.as_bytes())?;
                    w.u64(agg.count);
                    w.u64(agg.total_ns);
                    w.u64(agg.max_ns);
                }
                w.u64(shape.spill_partitions);
                w.u64(shape.spill_bytes);
            }
        }
        Ok(w.seal())
    }

    /// Replace this store's history with a decoded blob (CRC-checked).
    /// The loaded intervals all count as closed history: the next
    /// recorded sample opens a fresh wall-clock interval.
    pub fn load(&self, data: &[u8]) -> Result<()> {
        let payload = Reader::check_crc(data)?;
        let mut r = Reader::new(payload);
        if r.u32()? != BLOB_MAGIC {
            return Err(Error::Storage("query store blob: bad magic".into()));
        }
        let version = r.u16()?;
        if version != BLOB_VERSION {
            return Err(Error::Storage(format!(
                "query store blob: unsupported version {version}"
            )));
        }
        let interval_ms = r.u64()?;
        let n_intervals = r.u32()? as usize;
        let mut intervals = VecDeque::with_capacity(n_intervals.min(1024));
        for _ in 0..n_intervals {
            let id = r.u64()?;
            let start_unix_ms = r.u64()?;
            let shapes_dropped = r.u64()?;
            let n_shapes = r.u32()? as usize;
            let mut shapes = BTreeMap::new();
            for _ in 0..n_shapes {
                let shape_hash = r.u64()?;
                let text = String::from_utf8_lossy(r.lp_bytes()?).into_owned();
                let mut agg = ShapeAgg::new(shape_hash, text);
                agg.executions = r.u64()?;
                agg.failures = r.u64()?;
                agg.timeouts = r.u64()?;
                agg.rows_returned = r.u64()?;
                agg.total_elapsed_us = r.u64()?;
                agg.max_elapsed_us = r.u64()?;
                let n_buckets = r.u32()? as usize;
                let mut buckets = Vec::with_capacity(n_buckets.min(256));
                for _ in 0..n_buckets {
                    buckets.push(r.u64()?);
                }
                // Tolerate bucket-layout drift across versions: pad or
                // truncate to the current layout (quantiles degrade,
                // counts survive).
                buckets.resize(LATENCY_BUCKETS_US.len() + 1, 0);
                agg.latency_buckets = buckets;
                let n_waits = r.u32()? as usize;
                for _ in 0..n_waits {
                    let class = String::from_utf8_lossy(r.lp_bytes()?).into_owned();
                    let wait = WaitAgg {
                        count: r.u64()?,
                        total_ns: r.u64()?,
                        max_ns: r.u64()?,
                    };
                    agg.waits.insert(class, wait);
                }
                agg.spill_partitions = r.u64()?;
                agg.spill_bytes = r.u64()?;
                shapes.insert(shape_hash, agg);
            }
            intervals.push_back(Interval {
                id,
                start_unix_ms,
                shapes,
                shapes_dropped,
            });
        }
        while intervals.len() > self.max_intervals {
            intervals.pop_front();
        }
        self.set_interval_ms(interval_ms);
        self.shapes.lock().intervals = intervals;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(hash: u64, text: &str, us: u64) -> QuerySample {
        QuerySample {
            shape_hash: hash,
            shape_text: text.into(),
            elapsed: Duration::from_micros(us),
            rows: 3,
            failed: false,
            timed_out: false,
            waits: vec![WaitSnapshot {
                class: "WAL_COMMIT".into(),
                count: 1,
                total_ns: 5_000,
                max_ns: 5_000,
            }],
            spill_partitions: 0,
            spill_bytes: 0,
        }
    }

    #[test]
    fn repeated_shapes_aggregate() {
        let qs = QueryStore::new();
        for i in 0..10 {
            qs.record(&sample(42, "select ?", 100 + i));
        }
        qs.record(&sample(7, "other", 50));
        assert_eq!(qs.executions_for(42), 10);
        assert_eq!(qs.executions_for(7), 1);
        let snap = qs.snapshot();
        let agg = snap
            .iter()
            .find_map(|iv| iv.shapes.get(&42))
            .expect("shape present");
        assert_eq!(agg.rows_returned, 30);
        assert_eq!(agg.waits["WAL_COMMIT"].count, 10);
        assert!(agg.elapsed_quantile_us(0.5) > 0);
        assert!(agg.waits_summary().contains("WAL_COMMIT"));
    }

    #[test]
    fn encode_load_round_trip() {
        let qs = QueryStore::new();
        for _ in 0..5 {
            qs.record(&sample(99, "select a from t where b = ?", 1_000));
        }
        let mut failed = sample(99, "select a from t where b = ?", 2_000);
        failed.failed = true;
        failed.timed_out = true;
        qs.record(&failed);
        let blob = qs.encode().unwrap();
        let restored = QueryStore::new();
        restored.load(&blob).unwrap();
        assert_eq!(restored.executions_for(99), 6);
        let snap = restored.snapshot();
        let agg = snap
            .iter()
            .find_map(|iv| iv.shapes.get(&99))
            .expect("restored shape");
        assert_eq!(agg.failures, 1);
        assert_eq!(agg.timeouts, 1);
        assert_eq!(agg.waits["WAL_COMMIT"].count, 6);
        assert_eq!(agg.shape_text, "select a from t where b = ?");
    }

    #[test]
    fn load_rejects_corruption() {
        let qs = QueryStore::new();
        qs.record(&sample(1, "q", 10));
        let mut blob = qs.encode().unwrap();
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        assert!(QueryStore::new().load(&blob).is_err());
    }

    #[test]
    fn shape_cap_drops_new_shapes_not_old() {
        let qs = QueryStore {
            shapes: Mutex::new(StoreInner {
                intervals: VecDeque::new(),
            }),
            interval_ms: std::sync::atomic::AtomicU64::new(DEFAULT_INTERVAL_MS),
            max_intervals: 4,
            max_shapes: 2,
        };
        qs.record(&sample(1, "a", 1));
        qs.record(&sample(2, "b", 1));
        qs.record(&sample(3, "c", 1));
        qs.record(&sample(1, "a", 1));
        let snap = qs.snapshot();
        assert_eq!(snap[0].shapes.len(), 2);
        assert_eq!(snap[0].shapes_dropped, 1);
        assert_eq!(qs.executions_for(1), 2, "existing shapes keep counting");
    }
}
