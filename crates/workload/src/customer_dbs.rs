//! Synthetic "customer databases" for the compression study (E1).
//!
//! The paper reports compression ratios across real customer databases
//! whose characteristics vary widely. These seven generators span the same
//! axes — cardinality, skew, run structure, string share, value density —
//! so the reproduced table exhibits the same spread of ratios:
//!
//! | id | stands in for        | characteristics                               |
//! |----|----------------------|-----------------------------------------------|
//! | A  | telco call records   | high-cardinality ids, dense timestamps        |
//! | B  | retail orders        | low-card strings, moderate numerics           |
//! | C  | sensor readings      | sorted time, slowly-varying measures (runs)   |
//! | D  | web click logs       | zipf-skewed urls, tiny status domain          |
//! | E  | finance ticks        | decimals with shared scale, repeated symbols  |
//! | F  | inventory snapshots  | very low cardinality everywhere               |
//! | G  | adversarial random   | near-random values (worst case)               |

use cstore_common::testutil::Rng;
use cstore_common::{DataType, Field, Row, Schema, Value};

use crate::zipf::Zipf;

/// One synthetic dataset: a name, a schema and its rows.
pub struct CustomerDb {
    pub id: &'static str,
    pub description: &'static str,
    pub schema: Schema,
    pub rows: Vec<Row>,
}

/// Generate all seven datasets at `n` rows each.
pub fn all(n: usize, seed: u64) -> Vec<CustomerDb> {
    vec![
        telco(n, seed),
        retail(n, seed),
        sensor(n, seed),
        weblog(n, seed),
        finance(n, seed),
        inventory(n, seed),
        random(n, seed),
    ]
}

pub fn telco(n: usize, seed: u64) -> CustomerDb {
    let mut rng = Rng::new(seed ^ 0xA);
    let schema = Schema::new(vec![
        Field::not_null("call_id", DataType::Int64),
        Field::not_null("caller", DataType::Int64),
        Field::not_null("callee", DataType::Int64),
        Field::not_null("start_ts", DataType::Int64),
        Field::not_null("duration_s", DataType::Int32),
        Field::not_null("cell_id", DataType::Int32),
    ]);
    let rows = (0..n as i64)
        .map(|i| {
            Row::new(vec![
                Value::Int64(10_000_000 + i),
                Value::Int64(rng.range_i64(2_000_000_000, 2_100_000_000)),
                Value::Int64(rng.range_i64(2_000_000_000, 2_100_000_000)),
                Value::Int64(1_600_000_000 + i * 3 + rng.range_i64(0, 3)),
                Value::Int32(rng.range_i64(1, 3600) as i32),
                Value::Int32(rng.range_i64(0, 5000) as i32),
            ])
        })
        .collect();
    CustomerDb {
        id: "A",
        description: "telco calls: high-cardinality ids, dense timestamps",
        schema,
        rows,
    }
}

pub fn retail(n: usize, seed: u64) -> CustomerDb {
    const STATUS: [&str; 4] = ["placed", "shipped", "delivered", "returned"];
    const CHANNEL: [&str; 3] = ["web", "store", "phone"];
    let mut rng = Rng::new(seed ^ 0xB);
    let schema = Schema::new(vec![
        Field::not_null("order_id", DataType::Int64),
        Field::not_null("status", DataType::Utf8),
        Field::not_null("channel", DataType::Utf8),
        Field::not_null("items", DataType::Int32),
        Field::not_null("total", DataType::Decimal { scale: 2 }),
        Field::nullable("coupon", DataType::Utf8),
    ]);
    let rows = (0..n as i64)
        .map(|i| {
            let coupon = if rng.gen_bool(0.9) {
                Value::Null
            } else {
                Value::str(format!("SAVE{:02}", rng.range_i64(5, 30)))
            };
            Row::new(vec![
                Value::Int64(i),
                Value::str(STATUS[rng.range_usize(0, STATUS.len())]),
                Value::str(CHANNEL[rng.range_usize(0, CHANNEL.len())]),
                Value::Int32(rng.range_i64(1, 12) as i32),
                Value::Decimal(rng.range_i64(100, 50_000)),
                coupon,
            ])
        })
        .collect();
    CustomerDb {
        id: "B",
        description: "retail orders: low-cardinality strings, moderate numerics",
        schema,
        rows,
    }
}

pub fn sensor(n: usize, seed: u64) -> CustomerDb {
    let mut rng = Rng::new(seed ^ 0xC);
    let schema = Schema::new(vec![
        Field::not_null("sensor_id", DataType::Int32),
        Field::not_null("ts", DataType::Int64),
        Field::not_null("temp_c10", DataType::Int32),
        Field::not_null("humidity", DataType::Int32),
        Field::not_null("status", DataType::Int32),
    ]);
    // 20 sensors, readings in time order, measures drift slowly → runs.
    let mut temp = [200i32; 20];
    let mut hum = [50i32; 20];
    let rows = (0..n)
        .map(|i| {
            let s = i % 20;
            if rng.gen_bool(0.05) {
                temp[s] += rng.range_i64(-2, 3) as i32;
            }
            if rng.gen_bool(0.02) {
                hum[s] += rng.range_i64(-1, 2) as i32;
            }
            Row::new(vec![
                Value::Int32(s as i32),
                Value::Int64(1_700_000_000 + (i as i64) * 10),
                Value::Int32(temp[s]),
                Value::Int32(hum[s]),
                Value::Int32(0),
            ])
        })
        .collect();
    CustomerDb {
        id: "C",
        description: "sensor readings: sorted time, slowly-varying measures",
        schema,
        rows,
    }
}

pub fn weblog(n: usize, seed: u64) -> CustomerDb {
    let mut rng = Rng::new(seed ^ 0xD);
    let n_urls = 2000;
    let urls: Vec<String> = (0..n_urls)
        .map(|i| format!("/site/section-{}/page-{i:04}.html", i % 25))
        .collect();
    let zipf = Zipf::new(n_urls, 1.2);
    let schema = Schema::new(vec![
        Field::not_null("ts", DataType::Int64),
        Field::not_null("url", DataType::Utf8),
        Field::not_null("status", DataType::Int32),
        Field::not_null("bytes", DataType::Int32),
        Field::not_null("user_hash", DataType::Int64),
    ]);
    let rows = (0..n as i64)
        .map(|i| {
            let status = [200, 200, 200, 200, 304, 404, 500][rng.range_usize(0, 7)];
            Row::new(vec![
                Value::Int64(1_650_000_000 + i),
                Value::str(urls[zipf.sample(&mut rng) - 1].as_str()),
                Value::Int32(status),
                Value::Int32(rng.range_i64(200, 100_000) as i32),
                Value::Int64(i64::from(rng.next_u32())),
            ])
        })
        .collect();
    CustomerDb {
        id: "D",
        description: "web logs: zipf-skewed urls, tiny status domain",
        schema,
        rows,
    }
}

pub fn finance(n: usize, seed: u64) -> CustomerDb {
    const SYMBOLS: [&str; 30] = [
        "AAPL", "MSFT", "GOOG", "AMZN", "META", "NVDA", "TSLA", "BRK", "JPM", "V", "JNJ", "WMT",
        "PG", "MA", "UNH", "HD", "DIS", "BAC", "ADBE", "CRM", "NFLX", "XOM", "CVX", "PFE", "KO",
        "PEP", "COST", "AVGO", "CSCO", "ORCL",
    ];
    let mut rng = Rng::new(seed ^ 0xE);
    let schema = Schema::new(vec![
        Field::not_null("ts", DataType::Int64),
        Field::not_null("symbol", DataType::Utf8),
        Field::not_null("price", DataType::Decimal { scale: 2 }),
        Field::not_null("size_lots", DataType::Int32),
        Field::not_null("venue", DataType::Utf8),
    ]);
    const VENUES: [&str; 4] = ["NYSE", "NASD", "ARCA", "BATS"];
    // Prices move in ticks of 25 (a shared factor value encoding strips).
    let mut price = vec![10_000i64; SYMBOLS.len()];
    let rows = (0..n as i64)
        .map(|i| {
            let s = rng.range_usize(0, SYMBOLS.len());
            price[s] += 25 * rng.range_i64(-3, 4);
            price[s] = price[s].max(100);
            Row::new(vec![
                Value::Int64(1_680_000_000_000 + i * 17),
                Value::str(SYMBOLS[s]),
                Value::Decimal(price[s]),
                Value::Int32(rng.range_i64(1, 100) as i32 * 100),
                Value::str(VENUES[rng.range_usize(0, VENUES.len())]),
            ])
        })
        .collect();
    CustomerDb {
        id: "E",
        description: "finance ticks: tick-grid decimals, repeated symbols",
        schema,
        rows,
    }
}

pub fn inventory(n: usize, seed: u64) -> CustomerDb {
    let mut rng = Rng::new(seed ^ 0xF);
    let schema = Schema::new(vec![
        Field::not_null("warehouse", DataType::Int32),
        Field::not_null("sku_class", DataType::Utf8),
        Field::not_null("on_hand", DataType::Int32),
        Field::not_null("reorder_point", DataType::Int32),
        Field::not_null("active", DataType::Bool),
    ]);
    const CLASSES: [&str; 5] = ["bulk", "fragile", "cold", "hazmat", "standard"];
    let rows = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int32((i % 8) as i32),
                Value::str(CLASSES[(i / 8) % CLASSES.len()]),
                Value::Int32(rng.range_i64(0, 20) as i32 * 10),
                Value::Int32(50),
                Value::Bool(rng.gen_bool(0.97)),
            ])
        })
        .collect();
    CustomerDb {
        id: "F",
        description: "inventory snapshots: very low cardinality everywhere",
        schema,
        rows,
    }
}

pub fn random(n: usize, seed: u64) -> CustomerDb {
    let mut rng = Rng::new(seed ^ 0x10);
    let schema = Schema::new(vec![
        Field::not_null("a", DataType::Int64),
        Field::not_null("b", DataType::Int64),
        Field::not_null("c", DataType::Float64),
        Field::not_null("d", DataType::Utf8),
    ]);
    let rows = (0..n)
        .map(|_| {
            Row::new(vec![
                Value::Int64(rng.next_u64() as i64),
                Value::Int64(rng.next_u64() as i64),
                Value::Float64(rng.f64()),
                Value::str(format!("{:016x}", rng.next_u64())),
            ])
        })
        .collect();
    CustomerDb {
        id: "G",
        description: "adversarial: near-random values (worst case)",
        schema,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_validate() {
        for db in all(500, 1) {
            assert_eq!(db.rows.len(), 500, "{}", db.id);
            for row in db.rows.iter().take(50) {
                db.schema.check_row(row).unwrap_or_else(|e| {
                    panic!("dataset {} row invalid: {e}", db.id);
                });
            }
        }
    }

    #[test]
    fn datasets_have_distinct_compressibility() {
        use cstore_storage::builder::encode_column;
        // Compare per-dataset encoded size: sensor (C, runny) must compress
        // far better than random (G).
        let bytes = |db: &CustomerDb| -> usize {
            let n_cols = db.schema.len();
            let mut total = 0;
            for c in 0..n_cols {
                let vals: Vec<Value> = db.rows.iter().map(|r| r.get(c).clone()).collect();
                let seg = encode_column(db.schema.field(c).data_type, &vals, None).unwrap();
                total += seg.encoded_bytes();
            }
            total
        };
        let sensor = bytes(&sensor(2000, 1));
        let rand = bytes(&random(2000, 1));
        assert!(
            sensor * 5 < rand,
            "sensor {sensor} should be ≥5x smaller than random {rand}"
        );
    }
}
