//! Zipfian sampling.
//!
//! Foreign keys in warehouse facts are skewed: a few customers/products
//! account for most sales. The generators draw keys from a Zipf(s)
//! distribution over `1..=n` via inverse-CDF lookup (exact, O(log n) per
//! sample after O(n) setup).

use cstore_common::testutil::Rng;

/// A Zipf distribution over `1..=n` with exponent `s`.
pub struct Zipf {
    /// Cumulative probabilities, cdf[k-1] = P(X <= k).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with exponent `s` (s = 0 → uniform;
    /// s ≈ 1 → classic heavy skew).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        Zipf { cdf }
    }

    /// Draw one sample in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.f64();
        self.cdf.partition_point(|&p| p < u) + 1
    }

    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let x = z.sample(&mut rng);
            assert!((1..=100).contains(&x));
        }
    }

    #[test]
    fn skew_favors_small_keys() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = Rng::new(2);
        let mut head = 0;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) <= 10 {
                head += 1;
            }
        }
        // With s=1.2 the top-10 keys carry well over a third of the mass.
        assert!(head as f64 > 0.3 * n as f64, "head share {head}/{n}");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }
}
