//! The retail star schema.
//!
//! One fact table plus four dimensions, shaped like the warehouse the
//! paper's performance experiments run on:
//!
//! ```text
//! sales(sale_id, date_key, cust_key, prod_key, store_key,
//!       quantity, unit_price, discount)
//!   date_dim(date_key, year, month, day_of_week)
//!   customer(cust_key, name, region, segment)
//!   product(prod_key, name, category, brand, list_price)
//!   store(store_key, name, state)
//! ```
//!
//! Fact rows arrive in date order (as loads do in practice), so date-sorted
//! row groups give real segment elimination; customer/product keys are
//! Zipf-skewed.

use cstore_common::testutil::Rng;
use cstore_common::{DataType, Field, Row, Schema, Value};

use crate::zipf::Zipf;

/// Scale parameters of a generated star schema.
#[derive(Clone, Debug)]
pub struct StarSchema {
    pub n_sales: usize,
    pub n_dates: usize,
    pub n_customers: usize,
    pub n_products: usize,
    pub n_stores: usize,
    pub seed: u64,
}

impl StarSchema {
    /// A scale where `n_sales` drives everything else (dimension sizes
    /// follow warehouse-typical ratios).
    pub fn scale(n_sales: usize) -> StarSchema {
        StarSchema {
            n_sales,
            n_dates: 365,
            n_customers: (n_sales / 50).clamp(10, 100_000),
            n_products: (n_sales / 100).clamp(10, 20_000),
            n_stores: 50,
            seed: 42,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    // ----------------------------------------------------------- schemas

    pub fn sales_schema() -> Schema {
        Schema::new(vec![
            Field::not_null("sale_id", DataType::Int64),
            Field::not_null("date_key", DataType::Date),
            Field::not_null("cust_key", DataType::Int64),
            Field::not_null("prod_key", DataType::Int64),
            Field::not_null("store_key", DataType::Int64),
            Field::not_null("quantity", DataType::Int32),
            Field::not_null("unit_price", DataType::Decimal { scale: 2 }),
            Field::nullable("discount", DataType::Float64),
        ])
    }

    pub fn date_schema() -> Schema {
        Schema::new(vec![
            Field::not_null("date_key", DataType::Date),
            Field::not_null("year", DataType::Int32),
            Field::not_null("month", DataType::Int32),
            Field::not_null("day_of_week", DataType::Utf8),
        ])
    }

    pub fn customer_schema() -> Schema {
        Schema::new(vec![
            Field::not_null("cust_key", DataType::Int64),
            Field::not_null("name", DataType::Utf8),
            Field::not_null("region", DataType::Utf8),
            Field::not_null("segment", DataType::Utf8),
        ])
    }

    pub fn product_schema() -> Schema {
        Schema::new(vec![
            Field::not_null("prod_key", DataType::Int64),
            Field::not_null("name", DataType::Utf8),
            Field::not_null("category", DataType::Utf8),
            Field::not_null("brand", DataType::Utf8),
            Field::not_null("list_price", DataType::Decimal { scale: 2 }),
        ])
    }

    pub fn store_schema() -> Schema {
        Schema::new(vec![
            Field::not_null("store_key", DataType::Int64),
            Field::not_null("name", DataType::Utf8),
            Field::not_null("state", DataType::Utf8),
        ])
    }

    // --------------------------------------------------------- generators

    pub fn dates(&self) -> Vec<Row> {
        const DOW: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
        (0..self.n_dates as i32)
            .map(|d| {
                Row::new(vec![
                    Value::Date(d),
                    Value::Int32(2013 + d / 365),
                    Value::Int32(1 + (d / 30) % 12),
                    Value::str(DOW[(d % 7) as usize]),
                ])
            })
            .collect()
    }

    pub fn customers(&self) -> Vec<Row> {
        const REGIONS: [&str; 4] = ["north", "south", "east", "west"];
        const SEGMENTS: [&str; 3] = ["consumer", "corporate", "public"];
        let mut rng = Rng::new(self.seed ^ 0xC057);
        (0..self.n_customers as i64)
            .map(|k| {
                Row::new(vec![
                    Value::Int64(k),
                    Value::str(format!("customer-{k:06}")),
                    Value::str(REGIONS[rng.range_usize(0, REGIONS.len())]),
                    Value::str(SEGMENTS[rng.range_usize(0, SEGMENTS.len())]),
                ])
            })
            .collect()
    }

    pub fn products(&self) -> Vec<Row> {
        const CATEGORIES: [&str; 8] = [
            "grocery",
            "dairy",
            "produce",
            "bakery",
            "frozen",
            "household",
            "apparel",
            "toys",
        ];
        let mut rng = Rng::new(self.seed ^ 0x920D);
        (0..self.n_products as i64)
            .map(|k| {
                Row::new(vec![
                    Value::Int64(k),
                    Value::str(format!("product-{k:05}")),
                    Value::str(CATEGORIES[rng.range_usize(0, CATEGORIES.len())]),
                    Value::str(format!("brand-{:02}", rng.range_i64(0, 40))),
                    Value::Decimal(rng.range_i64(99, 9999)),
                ])
            })
            .collect()
    }

    pub fn stores(&self) -> Vec<Row> {
        const STATES: [&str; 10] = ["WA", "OR", "CA", "TX", "IL", "NY", "FL", "GA", "MA", "CO"];
        (0..self.n_stores as i64)
            .map(|k| {
                Row::new(vec![
                    Value::Int64(k),
                    Value::str(format!("store-{k:03}")),
                    Value::str(STATES[k as usize % STATES.len()]),
                ])
            })
            .collect()
    }

    /// Fact rows, in date order.
    pub fn sales(&self) -> Vec<Row> {
        let mut rng = Rng::new(self.seed);
        let cust = Zipf::new(self.n_customers, 1.1);
        let prod = Zipf::new(self.n_products, 1.05);
        let per_day = self.n_sales.div_ceil(self.n_dates).max(1);
        let mut rows = Vec::with_capacity(self.n_sales);
        for id in 0..self.n_sales as i64 {
            let day = ((id as usize / per_day).min(self.n_dates - 1)) as i32;
            let discount = if rng.gen_bool(0.8) {
                Value::Null
            } else {
                Value::Float64((rng.range_i64(1, 31) as f64) / 100.0)
            };
            rows.push(Row::new(vec![
                Value::Int64(id),
                Value::Date(day),
                Value::Int64((cust.sample(&mut rng) - 1) as i64),
                Value::Int64((prod.sample(&mut rng) - 1) as i64),
                Value::Int64(rng.range_i64(0, self.n_stores as i64)),
                Value::Int32(rng.range_i64(1, 11) as i32),
                Value::Decimal(rng.range_i64(99, 99_99)),
                discount,
            ]));
        }
        rows
    }

    /// Create all five tables in `db` (columnstore) and load them.
    /// Table names: `sales`, `date_dim`, `customer`, `product`, `store`.
    pub fn load_into(&self, db: &cstore_core::Database) -> cstore_common::Result<()> {
        let ddl = [
            ("sales", Self::sales_schema()),
            ("date_dim", Self::date_schema()),
            ("customer", Self::customer_schema()),
            ("product", Self::product_schema()),
            ("store", Self::store_schema()),
        ];
        for (name, schema) in ddl {
            // Lower the direct-compress threshold so small experiment
            // scales still produce compressed row groups (the default
            // 102,400 would route a 50k-row load through delta stores).
            db.catalog().create_columnstore(
                name,
                schema,
                cstore_delta::TableConfig {
                    bulk_load_threshold: 1024,
                    ..cstore_delta::TableConfig::default()
                },
            )?;
        }
        db.bulk_load("sales", &self.sales())?;
        db.bulk_load("date_dim", &self.dates())?;
        db.bulk_load("customer", &self.customers())?;
        db.bulk_load("product", &self.products())?;
        db.bulk_load("store", &self.stores())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_rows_match_schemas() {
        let s = StarSchema::scale(5000);
        let sales = s.sales();
        assert_eq!(sales.len(), 5000);
        for row in sales.iter().take(100) {
            StarSchema::sales_schema().check_row(row).unwrap();
        }
        for row in s.customers().iter().take(10) {
            StarSchema::customer_schema().check_row(row).unwrap();
        }
        for row in s.products().iter().take(10) {
            StarSchema::product_schema().check_row(row).unwrap();
        }
        StarSchema::date_schema().check_row(&s.dates()[0]).unwrap();
        StarSchema::store_schema()
            .check_row(&s.stores()[0])
            .unwrap();
    }

    #[test]
    fn facts_are_date_ordered_and_fk_valid() {
        let s = StarSchema::scale(2000);
        let sales = s.sales();
        let mut prev = i32::MIN;
        for row in &sales {
            let Value::Date(d) = row.get(1) else { panic!() };
            assert!(*d >= prev, "dates must be non-decreasing");
            prev = *d;
            let ck = row.get(2).as_i64().unwrap();
            assert!((0..s.n_customers as i64).contains(&ck));
            let pk = row.get(3).as_i64().unwrap();
            assert!((0..s.n_products as i64).contains(&pk));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = StarSchema::scale(1000).sales();
        let b = StarSchema::scale(1000).sales();
        assert_eq!(a, b);
        let c = StarSchema::scale(1000).with_seed(7).sales();
        assert_ne!(a, c);
    }

    #[test]
    fn load_into_database() {
        let db = cstore_core::Database::new();
        StarSchema::scale(2000).load_into(&db).unwrap();
        let r = db.execute("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Int64(2000));
        let r = db
            .execute(
                "SELECT d.year, SUM(s.quantity) AS q FROM sales s \
                 JOIN date_dim d ON s.date_key = d.date_key GROUP BY d.year",
            )
            .unwrap();
        assert!(!r.rows().is_empty());
    }
}
