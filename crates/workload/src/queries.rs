//! The canned star-join query set (Q1–Q8).
//!
//! Eight queries over the [`crate::star`] schema, covering the operator
//! repertoire the performance experiments exercise: selective scans,
//! single- and multi-dimension star joins, grouped and scalar aggregation,
//! semi/anti joins and Top-N. Each entry records what it stresses, so the
//! experiment harnesses can print meaningful labels.

/// One benchmark query.
pub struct BenchQuery {
    pub id: &'static str,
    pub sql: &'static str,
    /// What the query stresses (printed by the harnesses).
    pub highlights: &'static str,
}

/// The full query set.
pub fn all() -> Vec<BenchQuery> {
    vec![
        BenchQuery {
            id: "Q1",
            sql: "SELECT COUNT(*), SUM(quantity) FROM sales",
            highlights: "full scan + scalar aggregation",
        },
        BenchQuery {
            id: "Q2",
            sql: "SELECT COUNT(*) FROM sales WHERE date_key BETWEEN 100 AND 130",
            highlights: "date-range scan: segment elimination",
        },
        BenchQuery {
            id: "Q3",
            sql: "SELECT d.month, SUM(s.quantity) AS q FROM sales s \
                  JOIN date_dim d ON s.date_key = d.date_key \
                  GROUP BY d.month ORDER BY month",
            highlights: "single star join + group-by",
        },
        BenchQuery {
            id: "Q4",
            sql: "SELECT c.region, p.category, COUNT(*) AS n, SUM(s.quantity) AS q \
                  FROM sales s \
                  JOIN customer c ON s.cust_key = c.cust_key \
                  JOIN product p ON s.prod_key = p.prod_key \
                  GROUP BY c.region, p.category",
            highlights: "two-dimension star join, wide group-by",
        },
        BenchQuery {
            id: "Q5",
            sql: "SELECT st.state, SUM(s.quantity) AS q FROM sales s \
                  JOIN store st ON s.store_key = st.store_key \
                  JOIN date_dim d ON s.date_key = d.date_key \
                  WHERE d.month = 6 AND st.state = 'WA' \
                  GROUP BY st.state",
            highlights: "selective dimensions: bitmap filters pay off",
        },
        BenchQuery {
            id: "Q6",
            sql: "SELECT s.sale_id, s.quantity FROM sales s \
                  LEFT SEMI JOIN customer c ON s.cust_key = c.cust_key \
                  WHERE s.quantity > 8",
            highlights: "semi join (batch-mode repertoire expansion)",
        },
        BenchQuery {
            id: "Q7",
            sql: "SELECT p.brand, AVG(s.unit_price) AS avg_price FROM sales s \
                  JOIN product p ON s.prod_key = p.prod_key \
                  GROUP BY p.brand ORDER BY avg_price DESC LIMIT 10",
            highlights: "join + group-by + Top-N",
        },
        BenchQuery {
            id: "Q8",
            sql: "SELECT c.segment, COUNT(*) AS n FROM sales s \
                  JOIN customer c ON s.cust_key = c.cust_key \
                  WHERE s.discount IS NOT NULL AND s.date_key < 200 \
                  GROUP BY c.segment",
            highlights: "NULL-predicate pushdown + selective join",
        },
    ]
}

#[cfg(test)]
mod tests {
    use crate::star::StarSchema;

    #[test]
    fn every_query_parses_and_runs() {
        let db = cstore_core::Database::new();
        StarSchema::scale(3000).load_into(&db).unwrap();
        for q in super::all() {
            let r = db
                .execute(q.sql)
                .unwrap_or_else(|e| panic!("{} failed: {e}", q.id));
            assert!(
                !r.rows().is_empty() || q.id == "Q6",
                "{} returned no rows",
                q.id
            );
        }
    }

    #[test]
    fn batch_and_row_agree_on_every_query() {
        use cstore_core::ExecMode;
        let mk = |mode| {
            let db = cstore_core::Database::new().with_exec_mode(mode);
            StarSchema::scale(2000).load_into(&db).unwrap();
            db
        };
        let batch_db = mk(ExecMode::Batch);
        let row_db = mk(ExecMode::Row);
        for q in super::all() {
            let mut b = batch_db.execute(q.sql).unwrap().rows().to_vec();
            let mut r = row_db.execute(q.sql).unwrap().rows().to_vec();
            // Queries without ORDER BY have unspecified order.
            b.sort();
            r.sort();
            assert_eq!(b, r, "{} differs between modes", q.id);
        }
    }
}
