//! Workload generators for examples, tests and the experiment harnesses.
//!
//! * [`zipf`] — Zipfian sampling (warehouse foreign keys are skewed);
//! * [`star`] — a retail star schema (1 fact + 4 dimensions) standing in
//!   for the paper's TPC-DS-derived and customer workloads;
//! * [`customer_dbs`] — seven synthetic datasets whose column
//!   characteristics span the range of the paper's customer databases
//!   (the compression-ratio study, E1);
//! * [`queries`] — the canned star-join query set Q1–Q8 used by the
//!   performance experiments.

pub mod customer_dbs;
pub mod queries;
pub mod star;
pub mod zipf;

pub use star::StarSchema;
pub use zipf::Zipf;
