//! A tiny deterministic pseudo-random generator (SplitMix64) so the
//! experiment binaries build with zero external dependencies. Not
//! cryptographic — experiments only need reproducible shuffles and noise.

/// SplitMix64: one multiply-shift-xor pipeline per output, full 2^64
/// period, excellent for seeding and for the modest statistical demands
/// of benchmark data.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` via Lemire's multiply-shift reduction
    /// (the tiny modulo bias is irrelevant for benchmark shuffles).
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (((u128::from(self.next_u64()) * bound as u128) >> 64) as u64) as usize
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.next_below(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_covers_range() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut seen = [false; 8];
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            seen[r.next_below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        Rng::seed_from_u64(7).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffled order changed");
    }
}
