//! E3 — Segment elimination: scan cost vs date-range selectivity.
//!
//! The fact table loads in date order, so each ~1M-row group covers a
//! narrow date range and its min/max metadata lets the scan skip groups
//! outright. Paper shape: scan time tracks the number of *surviving* row
//! groups, not table size; with date-clustered data, a 1% date range
//! touches ~1% of groups. The shuffled-load baseline shows the same query
//! with elimination rendered useless.

use cstore_bench::report::{banner, Table};
use cstore_bench::rng::Rng;
use cstore_bench::{fmt_ms, median_time, Scale};
use cstore_core::{Database, ExecMode};
use cstore_exec::ExecContext;
use cstore_workload::StarSchema;

fn load(db: &Database, rows: &[cstore_common::Row]) {
    db.catalog()
        .create_columnstore(
            "sales",
            StarSchema::sales_schema(),
            cstore_delta::TableConfig {
                max_rowgroup_rows: 1 << 16, // many groups → fine-grained elimination
                bulk_load_threshold: 1024,  // compress even at small scale
                ..Default::default()
            },
        )
        .expect("create");
    db.bulk_load("sales", rows).expect("load");
}

fn run(db: &Database, lo: i32, hi: i32) -> (std::time::Duration, u64, u64) {
    let sql =
        format!("SELECT COUNT(*), SUM(quantity) FROM sales WHERE date_key BETWEEN {lo} AND {hi}");
    db.execute(&sql).expect("warmup");
    let ctx = db.exec_context().clone();
    let before: Vec<(&str, u64)> = ctx.metrics.snapshot();
    let t = median_time(3, || {
        db.execute(&sql).expect("query");
    });
    let after = ctx.metrics.snapshot();
    let delta = |name: &str| {
        let b = before.iter().find(|(n, _)| *n == name).unwrap().1;
        let a = after.iter().find(|(n, _)| *n == name).unwrap().1;
        (a - b) / 3 // per run
    };
    (t, delta("groups_scanned"), delta("groups_eliminated"))
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.fact_rows();
    banner(
        "E3",
        "Segment elimination: date-range scans on a date-clustered fact table",
        &format!("{n} fact rows in 64k-row groups; sorted vs shuffled load order"),
    );
    let star = StarSchema::scale(n);
    let sorted_rows = star.sales();
    let mut shuffled_rows = sorted_rows.clone();
    Rng::seed_from_u64(7).shuffle(&mut shuffled_rows);

    let db_sorted = Database::new()
        .with_exec_mode(ExecMode::Batch)
        .with_exec_context(ExecContext::default());
    load(&db_sorted, &sorted_rows);
    let db_shuffled = Database::new()
        .with_exec_mode(ExecMode::Batch)
        .with_exec_context(ExecContext::default());
    load(&db_shuffled, &shuffled_rows);

    let mut table = Table::new(&[
        "date range",
        "selectivity",
        "sorted_ms",
        "groups scanned",
        "groups skipped",
        "shuffled_ms",
    ]);
    for (label, lo, hi) in [
        ("1 day", 100, 100),
        ("1 week", 100, 106),
        ("1 month", 100, 129),
        ("1 quarter", 100, 190),
        ("half year", 0, 182),
        ("full year", 0, 364),
    ] {
        let sel = (hi - lo + 1) as f64 / 365.0 * 100.0;
        let (ts, scanned, skipped) = run(&db_sorted, lo, hi);
        let (tu, _, _) = run(&db_shuffled, lo, hi);
        table.row(&[
            label.to_string(),
            format!("{sel:.0}%"),
            fmt_ms(ts),
            scanned.to_string(),
            skipped.to_string(),
            fmt_ms(tu),
        ]);
    }
    table.print();
    println!("\nshape check: sorted-load scan time grows with the date range (surviving groups); shuffled load scans everything regardless.");
}
