//! E10 — The expanded batch-mode operator repertoire: all join types.
//!
//! The 2012 release ran only inner joins in batch mode; outer/semi/anti
//! joins forced the whole plan back to row mode. This experiment shows the
//! enhancement's effect: every join type now runs in batch mode, and the
//! row-mode fallback (where it exists at all) is the slow path. Our
//! row-mode engine deliberately lacks right/full outer joins — those rows
//! show what "had to run in batch mode" means.

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_ms, median_time, Scale};
use cstore_core::{Database, ExecMode};
use cstore_workload::StarSchema;

fn main() {
    let scale = Scale::from_env();
    let n = scale.fact_rows();
    banner(
        "E10",
        "Batch-mode join repertoire: per-join-type batch vs row time",
        &format!("{n} fact rows ⋈ customer dimension"),
    );
    let star = StarSchema::scale(n);
    let batch_db = Database::new().with_exec_mode(ExecMode::Batch);
    star.load_into(&batch_db).expect("load");
    let row_db = Database::new().with_exec_mode(ExecMode::Row);
    star.load_into(&row_db).expect("load");

    let join_sqls = [
        ("INNER", "JOIN"),
        ("LEFT OUTER", "LEFT OUTER JOIN"),
        ("LEFT SEMI", "LEFT SEMI JOIN"),
        ("LEFT ANTI", "LEFT ANTI JOIN"),
        ("RIGHT OUTER", "RIGHT OUTER JOIN"),
        ("FULL OUTER", "FULL OUTER JOIN"),
    ];
    let mut table = Table::new(&["join type", "batch ms", "row ms", "speedup"]);
    for (label, kw) in join_sqls {
        let sql =
            format!("SELECT COUNT(*) FROM sales s {kw} customer c ON s.cust_key = c.cust_key");
        let batch_t = median_time(3, || {
            batch_db.execute(&sql).expect("batch");
        });
        match row_db.execute(&sql) {
            Ok(row_result) => {
                // Same answer both ways.
                assert_eq!(
                    batch_db.execute(&sql).expect("batch").rows(),
                    row_result.rows(),
                    "{label} differs"
                );
                let row_t = median_time(3, || {
                    row_db.execute(&sql).expect("row");
                });
                table.row(&[
                    label.to_string(),
                    fmt_ms(batch_t),
                    fmt_ms(row_t),
                    format!("{:.1}x", row_t.as_secs_f64() / batch_t.as_secs_f64()),
                ]);
            }
            Err(_) => {
                table.row(&[
                    label.to_string(),
                    fmt_ms(batch_t),
                    "unsupported".into(),
                    "batch-only".into(),
                ]);
            }
        }
    }
    table.print();
    println!("\nshape check: every join type runs in batch mode (the 2013 enhancement); right/full outer exist only there, and the rest beat their row-mode equivalents.");
}
