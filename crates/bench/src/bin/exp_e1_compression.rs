//! E1 — Compression ratios across databases with different characteristics.
//!
//! Reproduces the paper's compression table: for each synthetic "customer
//! database", the size of (a) the uncompressed row store, (b) PAGE
//! compression, (c) columnstore compression and (d) columnstore archival
//! compression, with ratios relative to raw. Paper shape: columnstore ≈
//! 4–7× on typical warehouse data (far better than PAGE), archival a
//! further ≈1.3–2×, with both degrading toward 1× on incompressible data.

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_bytes, BenchResult, Scale};
use cstore_rowstore::{CompressedHeapTable, HeapTable};
use cstore_storage::ColumnStore;

fn main() {
    let start = std::time::Instant::now();
    let scale = Scale::from_env();
    let n = scale.dataset_rows();
    banner(
        "E1",
        "Compression ratios by database characteristics",
        &format!("{n} rows per dataset; ratios are raw_size / stored_size (higher is better)"),
    );
    let mut table = Table::new(&[
        "db",
        "characteristics",
        "raw",
        "page",
        "page_x",
        "cstore",
        "cstore_x",
        "archive",
        "archive_x",
    ]);
    let mut cs_ratios = Vec::new();
    let mut ar_ratios = Vec::new();
    let mut total_rows = 0usize;
    let mut total_raw = 0usize;
    let mut total_cstore = 0usize;
    for db in cstore_workload::customer_dbs::all(n, 42) {
        // Row store, uncompressed (allocated pages).
        let mut heap = HeapTable::new(db.schema.clone());
        heap.insert_all(&db.rows).expect("heap load");
        let raw = heap.allocated_bytes();
        // PAGE compression.
        let page = CompressedHeapTable::build(db.schema.clone(), &db.rows)
            .expect("page compression")
            .compressed_bytes();
        // Columnstore.
        let mut cs = ColumnStore::new(db.schema.clone());
        cs.append_rows(&db.rows, 1 << 20).expect("cs load");
        let cstore = cs.encoded_bytes();
        // Columnstore + archival.
        let ids: Vec<_> = cs.groups().iter().map(|g| g.id()).collect();
        for id in ids {
            cs.archive_group(id).expect("archive");
        }
        let archive = cs.encoded_bytes();
        let ratio = |stored: usize| raw as f64 / stored.max(1) as f64;
        cs_ratios.push(ratio(cstore));
        ar_ratios.push(ratio(archive));
        total_rows += db.rows.len();
        total_raw += raw;
        total_cstore += cstore;
        table.row(&[
            db.id.to_string(),
            db.description.split(':').next().unwrap_or("").to_string(),
            fmt_bytes(raw),
            fmt_bytes(page),
            format!("{:.1}x", ratio(page)),
            fmt_bytes(cstore),
            format!("{:.1}x", ratio(cstore)),
            fmt_bytes(archive),
            format!("{:.1}x", ratio(archive)),
        ]);
    }
    table.print();
    // Geometric mean: the arithmetic mean would be dominated by the
    // near-constant dataset's huge ratio.
    let gmean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "\ngeometric-mean columnstore ratio {:.1}x, with archival {:.1}x (paper: ≈4–7x typical, degrading toward 1x on incompressible data)",
        gmean(&cs_ratios),
        gmean(&ar_ratios)
    );
    let result = BenchResult {
        experiment: "E1".into(),
        rows: total_rows,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        bytes: total_cstore,
        compression_ratio: total_raw as f64 / total_cstore.max(1) as f64,
        extras: vec![],
    };
    match result.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write machine-readable result: {e}"),
    }
}
