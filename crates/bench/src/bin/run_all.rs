//! Run every experiment (E1–E10) in sequence — one command to regenerate
//! the full evaluation. Respects `CSTORE_SCALE`.
//!
//! ```sh
//! CSTORE_SCALE=medium cargo run --release -p cstore-bench --bin run_all
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_e1_compression",
    "exp_e2_batch_speedup",
    "exp_e3_segment_elimination",
    "exp_e4_bitmap_filters",
    "exp_e5_trickle_inserts",
    "exp_e6_bulk_load",
    "exp_e7_archival_overhead",
    "exp_e8_spilling",
    "exp_e9_row_reordering",
    "exp_e10_join_types",
    "exp_a1_encoding_selection",
];

fn main() {
    // Experiment binaries sit next to this one.
    let me = std::env::current_exe().expect("own path");
    let bin_dir = me.parent().expect("bin dir");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        eprintln!("\n>>> {exp}");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(*exp);
        }
    }
    if failures.is_empty() {
        eprintln!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
