//! A1 (ablation) — What per-segment encoding selection buys.
//!
//! DESIGN.md §4 calls out the encoder's two size-based choices: dictionary
//! vs value-based primary encoding, and RLE vs bit-packed payloads. This
//! ablation forces each choice off and measures the storage cost across
//! the E1 datasets, showing why the product selects per segment instead
//! of globally.

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_bytes, Scale};
use cstore_common::Value;
use cstore_storage::builder::{encode_column_with_policy, EncodingPolicy};

fn main() {
    let scale = Scale::from_env();
    let n = scale.dataset_rows();
    banner(
        "A1",
        "Ablation: per-segment encoding selection vs forced policies",
        &format!("{n} rows per dataset; encoded bytes per policy (lower is better)"),
    );
    let policies = [
        ("auto", EncodingPolicy::Auto),
        ("rle_only", EncodingPolicy::RleOnly),
        ("bitpack_only", EncodingPolicy::BitPackOnly),
        ("no_int_dict", EncodingPolicy::NoIntDictionary),
    ];
    let mut table = Table::new(&["db", "auto", "rle_only", "bitpack_only", "no_int_dict"]);
    let mut worst_ratio: f64 = 1.0;
    for db in cstore_workload::customer_dbs::all(n, 42) {
        // Apply the pipeline's Vertipaq-style reordering first (as the
        // real encoder would), so RLE is genuinely in play.
        let mut columns: Vec<Vec<Value>> = (0..db.schema.len())
            .map(|c| db.rows.iter().map(|r| r.get(c).clone()).collect())
            .collect();
        let order = cstore_storage::reorder::cardinality_ascending_order(&columns);
        cstore_storage::reorder::apply_lexicographic(&mut columns, &order);
        let mut sizes = Vec::new();
        for (_, policy) in policies {
            let mut total = 0usize;
            for (c, vals) in columns.iter().enumerate() {
                let seg =
                    encode_column_with_policy(db.schema.field(c).data_type, vals, None, policy)
                        .expect("encode");
                total += seg.encoded_bytes();
            }
            sizes.push(total);
        }
        let auto = sizes[0];
        for &s in &sizes[1..] {
            worst_ratio = worst_ratio.max(s as f64 / auto.max(1) as f64);
        }
        table.row(&[
            db.id.to_string(),
            fmt_bytes(sizes[0]),
            format!(
                "{} ({:.2}x)",
                fmt_bytes(sizes[1]),
                sizes[1] as f64 / auto as f64
            ),
            format!(
                "{} ({:.2}x)",
                fmt_bytes(sizes[2]),
                sizes[2] as f64 / auto as f64
            ),
            format!(
                "{} ({:.2}x)",
                fmt_bytes(sizes[3]),
                sizes[3] as f64 / auto as f64
            ),
        ]);
    }
    table.print();
    println!("\nshape check: no single forced policy matches Auto everywhere (worst case {worst_ratio:.1}x larger) — the per-segment size-based choice is what keeps every dataset near its best encoding.");
}
