//! E7 — Archival compression: extra size reduction, extra scan CPU.
//!
//! `COLUMNSTORE_ARCHIVE` wraps segments in an LZSS pass. Paper shape:
//! archived data is smaller but every access pays decompression, so scans
//! slow down — the trade intended for cold data. Segment elimination still
//! works on archived groups (metadata stays uncompressed), so selective
//! queries suffer the least.

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_bytes, fmt_ms, median_time, Scale};
use cstore_core::{Database, ExecMode};
use cstore_workload::StarSchema;

fn main() {
    let scale = Scale::from_env();
    let n = scale.fact_rows();
    banner(
        "E7",
        "Archival compression: size vs scan-time trade-off",
        &format!("{n} fact rows; COLUMNSTORE vs COLUMNSTORE_ARCHIVE"),
    );
    let star = StarSchema::scale(n);
    let db = Database::new().with_exec_mode(ExecMode::Batch);
    star.load_into(&db).expect("load");

    let queries = [
        (
            "full scan + agg",
            "SELECT COUNT(*), SUM(quantity) FROM sales".to_string(),
        ),
        (
            "selective scan (1 month)",
            "SELECT SUM(quantity) FROM sales WHERE date_key BETWEEN 100 AND 129".to_string(),
        ),
        (
            "star join",
            "SELECT d.month, SUM(s.quantity) AS q FROM sales s \
             JOIN date_dim d ON s.date_key = d.date_key GROUP BY d.month"
                .to_string(),
        ),
    ];

    let size = |db: &Database| db.table_stats("sales").expect("stats").compressed_bytes;
    let hot_size = size(&db);
    let mut hot_times = Vec::new();
    let mut answers = Vec::new();
    for (_, sql) in &queries {
        answers.push(db.execute(sql).expect("hot").rows().to_vec());
        hot_times.push(median_time(3, || {
            db.execute(sql).expect("hot");
        }));
    }

    db.archive_table("sales").expect("archive");
    let cold_size = size(&db);
    let mut table = Table::new(&["query", "columnstore ms", "archive ms", "slowdown"]);
    for (i, (label, sql)) in queries.iter().enumerate() {
        let got = db.execute(sql).expect("cold").rows().to_vec();
        assert_eq!(got, answers[i], "archival changed results for {label}");
        let cold = median_time(3, || {
            db.execute(sql).expect("cold");
        });
        table.row(&[
            label.to_string(),
            fmt_ms(hot_times[i]),
            fmt_ms(cold),
            format!("{:.2}x", cold.as_secs_f64() / hot_times[i].as_secs_f64()),
        ]);
    }
    println!(
        "storage: columnstore {} → archive {} ({:.2}x further reduction)\n",
        fmt_bytes(hot_size),
        fmt_bytes(cold_size),
        hot_size as f64 / cold_size.max(1) as f64
    );
    table.print();
    println!("\nshape check: archival shrinks storage further and costs decompression CPU on every scan; selective queries pay least (elimination skips archived groups without decompressing).");
}
