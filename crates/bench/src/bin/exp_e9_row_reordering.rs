//! E9 — Ablation: Vertipaq-style row reordering before encoding.
//!
//! Within a row group, row order is free; sorting rows by
//! ascending-cardinality columns lengthens runs and shrinks RLE output.
//! Paper/Vertipaq shape: reordering helps most when low-cardinality
//! columns exist but arrive interleaved (retail, inventory); it cannot
//! help genuinely random data.

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_bytes, fmt_ms, median_time, Scale};

use cstore_storage::{ColumnStore, SortMode};

fn main() {
    let scale = Scale::from_env();
    let n = scale.dataset_rows();
    banner(
        "E9",
        "Row reordering ablation: encoded size and scan time, reorder off vs on",
        &format!("{n} rows per dataset; SortMode::None vs SortMode::Auto"),
    );
    let mut table = Table::new(&[
        "db",
        "bytes (no reorder)",
        "bytes (reorder)",
        "size win",
        "scan ms (no)",
        "scan ms (yes)",
    ]);
    for db in cstore_workload::customer_dbs::all(n, 42) {
        let build = |mode: SortMode| {
            let mut cs = ColumnStore::new(db.schema.clone()).with_sort_mode(mode);
            cs.append_rows(&db.rows, 1 << 20).expect("load");
            cs
        };
        let plain = build(SortMode::None);
        let sorted = build(SortMode::Auto);
        // Scan cost: full decode of every segment (same logical work on
        // both layouts; RLE-heavier layouts decode faster).
        let time = |cs: &ColumnStore| {
            median_time(3, || {
                for g in cs.groups() {
                    for c in 0..g.n_columns() {
                        let seg = g.open_segment(c).expect("segment");
                        let decoded = seg.decode();
                        std::hint::black_box(decoded.len());
                    }
                }
            })
        };
        table.row(&[
            db.id.to_string(),
            fmt_bytes(plain.encoded_bytes()),
            fmt_bytes(sorted.encoded_bytes()),
            format!(
                "{:.2}x",
                plain.encoded_bytes() as f64 / sorted.encoded_bytes().max(1) as f64
            ),
            fmt_ms(time(&plain)),
            fmt_ms(time(&sorted)),
        ]);
    }
    table.print();
    println!("\nshape check: reordering shrinks datasets with interleaved low-cardinality columns (B, D, F) and is a no-op on random data (G).");
}
