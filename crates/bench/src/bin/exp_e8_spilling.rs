//! E8 — Hash-join spilling with graceful degradation.
//!
//! The batch hash join partitions to disk when its build side exceeds the
//! memory budget (the 2012 release instead fell back to row mode). Paper
//! shape: performance degrades smoothly as memory shrinks — a modest
//! constant factor for the partition/re-read pass — rather than falling
//! off a cliff.

use std::sync::Arc;

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_bytes, fmt_ms, median_time, BenchResult, Scale};
use cstore_common::governor::MemoryLedger;
use cstore_common::DataType;
use cstore_common::{Error, Row, Value};
use cstore_exec::ops::collect_rows;
use cstore_exec::ops::hash_join::JoinType;
use cstore_exec::{BatchHashJoin, BatchSource, ExecContext};

fn probe_rows(n: usize) -> Vec<Row> {
    (0..n as i64)
        .map(|i| Row::new(vec![Value::Int64(i % 200_000), Value::Int64(i)]))
        .collect()
}

fn build_rows(n: usize) -> Vec<Row> {
    (0..n as i64)
        .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("d{i:06}"))]))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let n_probe = scale.fact_rows();
    let n_build = 200_000;
    banner(
        "E8",
        "Hash join spilling: graceful degradation under shrinking memory",
        &format!("{n_probe}-row probe ⋈ {n_build}-row build; budget sweep"),
    );
    let probe = probe_rows(n_probe);
    let build = build_rows(n_build);
    let types_p = vec![DataType::Int64, DataType::Int64];
    let types_b = vec![DataType::Int64, DataType::Utf8];

    // Measure the build side's in-memory footprint once.
    let build_bytes: usize = build.iter().map(|r| r.approx_bytes()).sum();

    let run = |budget: usize| -> (std::time::Duration, u64, usize) {
        let ctx = ExecContext::default().with_budget(budget);
        let metrics = ctx.metrics.clone();
        let t = median_time(3, || {
            let p = BatchSource::from_rows(types_p.clone(), &probe, 900).expect("probe");
            let b = BatchSource::from_rows(types_b.clone(), &build, 900).expect("build");
            let join = BatchHashJoin::new(
                Box::new(p),
                Box::new(b),
                vec![0],
                vec![0],
                JoinType::Inner,
                ctx.clone(),
            )
            .expect("join");
            let rows = collect_rows(Box::new(join)).expect("run");
            assert_eq!(rows.len(), n_probe, "wrong join cardinality");
        });
        let spilled = metrics
            .snapshot()
            .iter()
            .find(|(n, _)| *n == "partitions_spilled")
            .unwrap()
            .1;
        let bytes = metrics
            .snapshot()
            .iter()
            .find(|(n, _)| *n == "bytes_spilled")
            .unwrap()
            .1 as usize;
        (t, spilled, bytes)
    };

    let started = std::time::Instant::now();
    let mut table = Table::new(&[
        "memory budget",
        "% of build",
        "join ms",
        "slowdown",
        "spilled bytes",
    ]);
    let mut base = None;
    let mut extras: Vec<(String, f64)> = Vec::new();
    for pct in [200, 100, 75, 50, 25, 10] {
        let budget = (build_bytes * pct / 100).max(1024);
        let (t, spilled, bytes) = run(budget);
        let b = *base.get_or_insert(t.as_secs_f64());
        extras.push((format!("budget_{pct}pct_ms"), t.as_secs_f64() * 1e3));
        extras.push((format!("budget_{pct}pct_spilled_bytes"), (bytes / 3) as f64));
        table.row(&[
            fmt_bytes(budget),
            format!("{pct}%"),
            fmt_ms(t),
            format!("{:.2}x", t.as_secs_f64() / b),
            if spilled > 0 {
                fmt_bytes(bytes / 3)
            } else {
                "0 (in-memory)".into()
            },
        ]);
    }
    table.print();
    println!("\nshape check: once the budget drops below the build size the join spills, and the cost rises by a modest constant factor — not a cliff (graceful degradation).");

    // Concurrent axis: K identical joins race against ONE shared memory
    // ledger (the resource governor's global accounting) capped at 1.5×
    // the build side. One query fits in memory; under contention each
    // join either spills (per-query budget still applies) or fails
    // cleanly with the ledger-exhausted error — never a panic or an OOM.
    println!();
    banner(
        "E8b",
        "Concurrent joins against one shared memory ledger",
        "K joins race one global byte ceiling (1.5x build side)",
    );
    let mut ctable = Table::new(&["concurrency", "wall ms", "completed", "exhausted", "spills"]);
    for k in [1usize, 4, 8, 16] {
        let ledger = Arc::new(MemoryLedger::default());
        ledger.set_limit((build_bytes * 3 / 2) as u64);
        let t0 = std::time::Instant::now();
        let (mut completed, mut exhausted, mut spills) = (0u64, 0u64, 0u64);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|_| {
                    let ledger = Arc::clone(&ledger);
                    let (probe, build) = (&probe, &build);
                    let (types_p, types_b) = (&types_p, &types_b);
                    s.spawn(move || {
                        let ctx = ExecContext::default()
                            .with_budget(build_bytes / 2)
                            .with_ledger(ledger)
                            .for_query();
                        let p = BatchSource::from_rows(types_p.clone(), probe, 900).expect("probe");
                        let b = BatchSource::from_rows(types_b.clone(), build, 900).expect("build");
                        let join = BatchHashJoin::new(
                            Box::new(p),
                            Box::new(b),
                            vec![0],
                            vec![0],
                            JoinType::Inner,
                            ctx.clone(),
                        );
                        let outcome = join.and_then(|j| collect_rows(Box::new(j)));
                        let spilled = ctx
                            .metrics
                            .snapshot()
                            .iter()
                            .find(|(n, _)| *n == "partitions_spilled")
                            .map_or(0, |(_, v)| *v);
                        match outcome {
                            Ok(rows) => {
                                assert_eq!(rows.len(), n_probe, "wrong join cardinality");
                                (1u64, 0u64, spilled)
                            }
                            Err(Error::ResourceExhausted(_)) => (0, 1, spilled),
                            Err(e) => panic!("unexpected error class: {e}"),
                        }
                    })
                })
                .collect();
            for h in handles {
                let (c, x, sp) = h.join().expect("no panics under memory pressure");
                completed += c;
                exhausted += x;
                spills += sp;
            }
        });
        let wall = t0.elapsed();
        assert_eq!(ledger.reserved(), 0, "ledger must drain after the storm");
        extras.push((format!("concurrent_k{k}_ms"), wall.as_secs_f64() * 1e3));
        extras.push((format!("concurrent_k{k}_completed"), completed as f64));
        extras.push((format!("concurrent_k{k}_exhausted"), exhausted as f64));
        ctable.row(&[
            format!("{k}"),
            fmt_ms(wall),
            format!("{completed}"),
            format!("{exhausted}"),
            format!("{spills}"),
        ]);
    }
    ctable.print();
    println!("\nshape check: under one shared ledger every join completes (spilling) or fails with the clean ledger-exhausted error; reservations drain to zero after each storm.");

    let result = BenchResult {
        experiment: "E8".into(),
        rows: n_probe,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        bytes: build_bytes,
        compression_ratio: 1.0,
        extras,
    };
    match result.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_E8.json: {e}"),
    }
}
