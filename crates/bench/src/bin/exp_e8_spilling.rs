//! E8 — Hash-join spilling with graceful degradation.
//!
//! The batch hash join partitions to disk when its build side exceeds the
//! memory budget (the 2012 release instead fell back to row mode). Paper
//! shape: performance degrades smoothly as memory shrinks — a modest
//! constant factor for the partition/re-read pass — rather than falling
//! off a cliff.

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_bytes, fmt_ms, median_time, Scale};
use cstore_common::DataType;
use cstore_common::{Row, Value};
use cstore_exec::ops::collect_rows;
use cstore_exec::ops::hash_join::JoinType;
use cstore_exec::{BatchHashJoin, BatchSource, ExecContext};

fn probe_rows(n: usize) -> Vec<Row> {
    (0..n as i64)
        .map(|i| Row::new(vec![Value::Int64(i % 200_000), Value::Int64(i)]))
        .collect()
}

fn build_rows(n: usize) -> Vec<Row> {
    (0..n as i64)
        .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("d{i:06}"))]))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let n_probe = scale.fact_rows();
    let n_build = 200_000;
    banner(
        "E8",
        "Hash join spilling: graceful degradation under shrinking memory",
        &format!("{n_probe}-row probe ⋈ {n_build}-row build; budget sweep"),
    );
    let probe = probe_rows(n_probe);
    let build = build_rows(n_build);
    let types_p = vec![DataType::Int64, DataType::Int64];
    let types_b = vec![DataType::Int64, DataType::Utf8];

    // Measure the build side's in-memory footprint once.
    let build_bytes: usize = build.iter().map(|r| r.approx_bytes()).sum();

    let run = |budget: usize| -> (std::time::Duration, u64, usize) {
        let ctx = ExecContext::default().with_budget(budget);
        let metrics = ctx.metrics.clone();
        let t = median_time(3, || {
            let p = BatchSource::from_rows(types_p.clone(), &probe, 900).expect("probe");
            let b = BatchSource::from_rows(types_b.clone(), &build, 900).expect("build");
            let join = BatchHashJoin::new(
                Box::new(p),
                Box::new(b),
                vec![0],
                vec![0],
                JoinType::Inner,
                ctx.clone(),
            )
            .expect("join");
            let rows = collect_rows(Box::new(join)).expect("run");
            assert_eq!(rows.len(), n_probe, "wrong join cardinality");
        });
        let spilled = metrics
            .snapshot()
            .iter()
            .find(|(n, _)| *n == "partitions_spilled")
            .unwrap()
            .1;
        let bytes = metrics
            .snapshot()
            .iter()
            .find(|(n, _)| *n == "bytes_spilled")
            .unwrap()
            .1 as usize;
        (t, spilled, bytes)
    };

    let mut table = Table::new(&[
        "memory budget",
        "% of build",
        "join ms",
        "slowdown",
        "spilled bytes",
    ]);
    let mut base = None;
    for pct in [200, 100, 75, 50, 25, 10] {
        let budget = (build_bytes * pct / 100).max(1024);
        let (t, spilled, bytes) = run(budget);
        let b = *base.get_or_insert(t.as_secs_f64());
        table.row(&[
            fmt_bytes(budget),
            format!("{pct}%"),
            fmt_ms(t),
            format!("{:.2}x", t.as_secs_f64() / b),
            if spilled > 0 {
                fmt_bytes(bytes / 3)
            } else {
                "0 (in-memory)".into()
            },
        ]);
    }
    table.print();
    println!("\nshape check: once the budget drops below the build size the join spills, and the cost rises by a modest constant factor — not a cliff (graceful degradation).");
}
