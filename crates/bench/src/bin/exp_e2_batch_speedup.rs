//! E2 — The headline result: batch mode on a columnstore vs row mode on a
//! row store, per query.
//!
//! Paper shape: typical warehouse queries run ~10× faster, some reach
//! 100×; the gap comes from (i) columnar scans reading only needed
//! columns, (ii) segment elimination + pushdown, (iii) vectorized
//! operators amortizing per-row overhead, and (iv) bitmap filters.

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_ms, median_time, Scale};
use cstore_core::{Database, ExecMode};
use cstore_workload::{queries, StarSchema};

fn heap_clone(db_cs: &Database, star: &StarSchema) -> Database {
    // Same data, but every table is a row-store heap and queries run in
    // row mode — the classic configuration the paper compares against.
    let db = Database::new().with_exec_mode(ExecMode::Row);
    let ddl = [
        ("sales", StarSchema::sales_schema()),
        ("date_dim", StarSchema::date_schema()),
        ("customer", StarSchema::customer_schema()),
        ("product", StarSchema::product_schema()),
        ("store", StarSchema::store_schema()),
    ];
    for (name, schema) in ddl {
        db.catalog().create_heap(name, schema).expect("create heap");
    }
    db.bulk_load("sales", &star.sales()).expect("load sales");
    db.bulk_load("date_dim", &star.dates()).expect("load dates");
    db.bulk_load("customer", &star.customers())
        .expect("load customers");
    db.bulk_load("product", &star.products())
        .expect("load products");
    db.bulk_load("store", &star.stores()).expect("load stores");
    let _ = db_cs;
    db
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.fact_rows();
    banner(
        "E2",
        "Query speedup: batch mode on columnstore vs row mode on row store",
        &format!("star schema, {n} fact rows, queries Q1-Q8; median of 3 runs"),
    );
    let star = StarSchema::scale(n);
    let db_cs = Database::new().with_exec_mode(ExecMode::Batch);
    star.load_into(&db_cs).expect("load columnstore");
    let db_row = heap_clone(&db_cs, &star);

    let mut table = Table::new(&["query", "what it stresses", "row_ms", "batch_ms", "speedup"]);
    let mut speedups = Vec::new();
    for q in queries::all() {
        // Verify both modes agree before timing.
        let mut a = db_cs.execute(q.sql).expect("batch run").rows().to_vec();
        let mut b = db_row.execute(q.sql).expect("row run").rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{} results differ between engines", q.id);

        let row_t = median_time(3, || {
            db_row.execute(q.sql).expect("row run");
        });
        let batch_t = median_time(3, || {
            db_cs.execute(q.sql).expect("batch run");
        });
        let speedup = row_t.as_secs_f64() / batch_t.as_secs_f64();
        speedups.push(speedup);
        table.row(&[
            q.id.to_string(),
            q.highlights.to_string(),
            fmt_ms(row_t),
            fmt_ms(batch_t),
            format!("{speedup:.1}x"),
        ]);
    }
    table.print();
    let gmean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!(
        "\ngeometric-mean speedup {gmean:.1}x, max {:.1}x (paper: routinely 10x, up to 100x)",
        speedups.iter().fold(0.0f64, |a, &b| a.max(b))
    );
}
