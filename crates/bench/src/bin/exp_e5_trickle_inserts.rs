//! E5 — Trickle inserts: delta stores absorb single-row inserts; the
//! tuple mover compresses them in the background.
//!
//! Paper shape: trickle inserts sustain high rates (B-tree inserts, no
//! compression on the insert path); delta rows accumulate until the store
//! closes; the tuple mover converts closed stores to compressed row groups
//! so the delta tail stays bounded; queries stay correct throughout and
//! get faster once data is compressed.

use std::sync::Arc;
use std::time::Instant;

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_bytes, fmt_ms, median_time, BenchResult, Scale};
use cstore_common::{Row, Value};
use cstore_delta::{
    ColumnStoreTable, TableConfig, TupleMover, Wal, WalHandle, WalOptions, WalSyncMode,
};
use cstore_storage::FileLogStore;
use cstore_workload::StarSchema;

fn row(i: i64) -> Row {
    Row::new(vec![
        Value::Int64(i),
        Value::Date((i % 365) as i32),
        Value::Int64(i % 997),
        Value::Int64(i % 199),
        Value::Int64(i % 50),
        Value::Int32((i % 10) as i32 + 1),
        Value::Decimal(100 + i % 5000),
        Value::Null,
    ])
}

fn main() {
    let scale = Scale::from_env();
    let n = (scale.fact_rows() / 4).max(50_000);
    banner(
        "E5",
        "Trickle insert path: delta stores + tuple mover",
        &format!("{n} single-row inserts; delta capacity 100k rows"),
    );
    let config = TableConfig {
        delta_capacity: 100_000,
        ..Default::default()
    };

    // Phase 1: inserts with the mover off — delta stores pile up.
    let t1 = ColumnStoreTable::new(StarSchema::sales_schema(), config.clone());
    let start = Instant::now();
    for i in 0..n as i64 {
        t1.insert(row(i)).expect("insert");
    }
    let insert_time = start.elapsed();
    let s = t1.stats();
    println!(
        "mover OFF : {:>9.0} inserts/s; {} delta rows in {} open + {} closed stores ({}), 0 compressed",
        n as f64 / insert_time.as_secs_f64(),
        s.delta_rows,
        s.n_open_deltas,
        s.n_closed_deltas,
        fmt_bytes(s.delta_bytes),
    );

    // Phase 2: same inserts with a background mover — the backlog drains.
    let t2 = ColumnStoreTable::new(StarSchema::sales_schema(), config.clone());
    let mover =
        TupleMover::start(t2.clone(), std::time::Duration::from_millis(10)).expect("mover start");
    let start = Instant::now();
    for i in 0..n as i64 {
        t2.insert(row(i)).expect("insert");
    }
    let insert_time2 = start.elapsed();
    // Let the mover catch up.
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while t2.stats().n_closed_deltas > 0 && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let moved = mover.stop().expect("mover stop");
    let s2 = t2.stats();
    println!(
        "mover ON  : {:>9.0} inserts/s; mover compressed {moved} stores → {} compressed rows ({}), {} left in delta",
        n as f64 / insert_time2.as_secs_f64(),
        s2.compressed_rows,
        fmt_bytes(s2.compressed_bytes),
        s2.delta_rows,
    );
    assert_eq!(t1.total_rows(), n);
    assert_eq!(t2.total_rows(), n);

    // Phase 3: query cost before vs after compression.
    let scan_sum = |t: &ColumnStoreTable| {
        let t = t.clone();
        median_time(3, move || {
            t.sum_i64(0).expect("sum");
        })
    };
    let before = scan_sum(&t1);
    t1.close_open_delta();
    t1.tuple_move_once().expect("move");
    let after = scan_sum(&t1);
    let mut table = Table::new(&["state", "scan_ms"]);
    table.row(&["all rows in delta stores".into(), fmt_ms(before)]);
    table.row(&["after tuple mover (compressed)".into(), fmt_ms(after)]);
    table.print();
    println!("\nshape check: inserts stay in the millions/second either way (compression happens off the insert path; the background mover costs some concurrency), and scans speed up once row groups are compressed.");

    // Phase 4: durability tax. The same trickle inserts with a real
    // file-backed WAL (one commit = one fsync, single writer, so group
    // commit cannot batch) versus without one. Fewer rows: each insert
    // pays a physical fsync.
    let n_wal = (n / 10).clamp(2_000, 20_000) as i64;
    let t_off = ColumnStoreTable::new(StarSchema::sales_schema(), config.clone());
    let start = Instant::now();
    for i in 0..n_wal {
        t_off.insert(row(i)).expect("insert");
    }
    let off_rate = n_wal as f64 / start.elapsed().as_secs_f64();

    let wal_dir = std::env::temp_dir().join(format!("cstore-e5-wal-{}", std::process::id()));
    let t_on = ColumnStoreTable::new(StarSchema::sales_schema(), config.clone());
    let (wal, _) = Wal::open(
        Box::new(FileLogStore::open(&wal_dir).expect("wal dir")),
        WalOptions::default(),
        None,
        &[],
    )
    .expect("wal open");
    t_on.set_wal(WalHandle {
        wal,
        table: "sales".into(),
    });
    let start = Instant::now();
    for i in 0..n_wal {
        t_on.insert(row(i)).expect("insert");
    }
    let on_rate = n_wal as f64 / start.elapsed().as_secs_f64();
    // lint: allow(discard) — best-effort scratch cleanup
    let _ = std::fs::remove_dir_all(&wal_dir);
    let overhead_pct = (off_rate / on_rate - 1.0) * 100.0;
    println!(
        "WAL tax   : {off_rate:>9.0} inserts/s without WAL, {on_rate:>9.0} with (fsync per commit): {overhead_pct:.0}% overhead"
    );

    // Phase 5: 16 concurrent writers issuing multi-row statements (128
    // rows each — the batched ingest path: one InsertBatch frame and one
    // commit obligation per statement), one trial per durability mode.
    // Group commit earns its keep under concurrency: committers pile up
    // behind the log-writer thread and many statements ride one fsync.
    const WRITERS: i64 = 16;
    const STMT_ROWS: i64 = 128;
    let stmts_per_writer = (n_wal / WRITERS).max(250);
    let rows16 = stmts_per_writer * STMT_ROWS * WRITERS;
    let run16 = |mode: Option<WalSyncMode>| -> (f64, f64) {
        let t = ColumnStoreTable::new(StarSchema::sales_schema(), config.clone());
        let dir = std::env::temp_dir().join(format!(
            "cstore-e5-wal16-{}-{}",
            std::process::id(),
            mode.map_or("none", |m| m.as_str()),
        ));
        let wal = mode.map(|m| {
            let (wal, _) = Wal::open(
                Box::new(FileLogStore::open(&dir).expect("wal dir")),
                WalOptions::default(),
                None,
                &[],
            )
            .expect("wal open");
            wal.set_sync_mode(m);
            t.set_wal(WalHandle {
                wal: Arc::clone(&wal),
                table: "sales".into(),
            });
            wal
        });
        let start = Instant::now();
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let t = t.clone();
                s.spawn(move || {
                    for stmt in 0..stmts_per_writer {
                        let base = w * 10_000_000 + stmt * STMT_ROWS;
                        let rows: Vec<Row> = (base..base + STMT_ROWS).map(row).collect();
                        t.insert_batch(&rows).expect("insert_batch");
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let fsyncs = wal.as_ref().map_or(0, |w| w.status().counters.fsyncs);
        drop(wal); // join the log-writer thread before deleting its files
                   // lint: allow(discard) — best-effort scratch cleanup
        let _ = std::fs::remove_dir_all(&dir);
        (rows16 as f64 / secs, fsyncs as f64 / rows16 as f64)
    };
    let (off16_rate, _) = run16(None);
    let (nosync16_rate, nosync16_fpr) = run16(Some(WalSyncMode::Off));
    let (group16_rate, group16_fpr) = run16(Some(WalSyncMode::Group));
    let (strict16_rate, strict16_fpr) = run16(Some(WalSyncMode::Strict));
    let group_ratio = off16_rate / group16_rate;
    let mut t16 = Table::new(&[
        "wal_sync (16 writers x 128-row stmts)",
        "rows_per_s",
        "fsyncs_per_row",
    ]);
    t16.row(&["no WAL".into(), format!("{off16_rate:.0}"), "-".into()]);
    t16.row(&[
        "off".into(),
        format!("{nosync16_rate:.0}"),
        format!("{nosync16_fpr:.4}"),
    ]);
    t16.row(&[
        "group".into(),
        format!("{group16_rate:.0}"),
        format!("{group16_fpr:.4}"),
    ]);
    t16.row(&[
        "strict".into(),
        format!("{strict16_rate:.0}"),
        format!("{strict16_fpr:.4}"),
    ]);
    t16.print();
    println!(
        "group commit: {group_ratio:.1}x off the WAL-free rate ({:.0} inserts amortize each fsync)",
        1.0 / group16_fpr.max(1e-9)
    );

    let result = BenchResult {
        experiment: "E5".into(),
        rows: n,
        wall_ms: insert_time2.as_secs_f64() * 1e3,
        bytes: s2.compressed_bytes + s2.delta_bytes,
        compression_ratio: 1.0,
        extras: vec![
            ("wal_off_inserts_per_s".into(), off_rate),
            ("wal_on_inserts_per_s".into(), on_rate),
            ("wal_overhead_pct".into(), overhead_pct),
            ("wal16_off_rows_per_s".into(), off16_rate),
            ("wal16_nosync_rows_per_s".into(), nosync16_rate),
            ("wal16_nosync_fsyncs_per_row".into(), nosync16_fpr),
            ("wal16_group_rows_per_s".into(), group16_rate),
            ("wal16_group_fsyncs_per_row".into(), group16_fpr),
            ("wal16_strict_rows_per_s".into(), strict16_rate),
            ("wal16_strict_fsyncs_per_row".into(), strict16_fpr),
            ("wal16_group_vs_off_ratio".into(), group_ratio),
        ],
    };
    match result.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write machine-readable result: {e}"),
    }
}
