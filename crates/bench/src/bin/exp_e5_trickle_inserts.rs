//! E5 — Trickle inserts: delta stores absorb single-row inserts; the
//! tuple mover compresses them in the background.
//!
//! Paper shape: trickle inserts sustain high rates (B-tree inserts, no
//! compression on the insert path); delta rows accumulate until the store
//! closes; the tuple mover converts closed stores to compressed row groups
//! so the delta tail stays bounded; queries stay correct throughout and
//! get faster once data is compressed.

use std::time::Instant;

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_bytes, fmt_ms, median_time, Scale};
use cstore_common::{Row, Value};
use cstore_delta::{ColumnStoreTable, TableConfig, TupleMover};
use cstore_workload::StarSchema;

fn row(i: i64) -> Row {
    Row::new(vec![
        Value::Int64(i),
        Value::Date((i % 365) as i32),
        Value::Int64(i % 997),
        Value::Int64(i % 199),
        Value::Int64(i % 50),
        Value::Int32((i % 10) as i32 + 1),
        Value::Decimal(100 + i % 5000),
        Value::Null,
    ])
}

fn main() {
    let scale = Scale::from_env();
    let n = (scale.fact_rows() / 4).max(50_000);
    banner(
        "E5",
        "Trickle insert path: delta stores + tuple mover",
        &format!("{n} single-row inserts; delta capacity 100k rows"),
    );
    let config = TableConfig {
        delta_capacity: 100_000,
        ..Default::default()
    };

    // Phase 1: inserts with the mover off — delta stores pile up.
    let t1 = ColumnStoreTable::new(StarSchema::sales_schema(), config.clone());
    let start = Instant::now();
    for i in 0..n as i64 {
        t1.insert(row(i)).expect("insert");
    }
    let insert_time = start.elapsed();
    let s = t1.stats();
    println!(
        "mover OFF : {:>9.0} inserts/s; {} delta rows in {} open + {} closed stores ({}), 0 compressed",
        n as f64 / insert_time.as_secs_f64(),
        s.delta_rows,
        s.n_open_deltas,
        s.n_closed_deltas,
        fmt_bytes(s.delta_bytes),
    );

    // Phase 2: same inserts with a background mover — the backlog drains.
    let t2 = ColumnStoreTable::new(StarSchema::sales_schema(), config.clone());
    let mover =
        TupleMover::start(t2.clone(), std::time::Duration::from_millis(10)).expect("mover start");
    let start = Instant::now();
    for i in 0..n as i64 {
        t2.insert(row(i)).expect("insert");
    }
    let insert_time2 = start.elapsed();
    // Let the mover catch up.
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while t2.stats().n_closed_deltas > 0 && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let moved = mover.stop().expect("mover stop");
    let s2 = t2.stats();
    println!(
        "mover ON  : {:>9.0} inserts/s; mover compressed {moved} stores → {} compressed rows ({}), {} left in delta",
        n as f64 / insert_time2.as_secs_f64(),
        s2.compressed_rows,
        fmt_bytes(s2.compressed_bytes),
        s2.delta_rows,
    );
    assert_eq!(t1.total_rows(), n);
    assert_eq!(t2.total_rows(), n);

    // Phase 3: query cost before vs after compression.
    let scan_sum = |t: &ColumnStoreTable| {
        let t = t.clone();
        median_time(3, move || {
            t.sum_i64(0).expect("sum");
        })
    };
    let before = scan_sum(&t1);
    t1.close_open_delta();
    t1.tuple_move_once().expect("move");
    let after = scan_sum(&t1);
    let mut table = Table::new(&["state", "scan_ms"]);
    table.row(&["all rows in delta stores".into(), fmt_ms(before)]);
    table.row(&["after tuple mover (compressed)".into(), fmt_ms(after)]);
    table.print();
    println!("\nshape check: inserts stay in the millions/second either way (compression happens off the insert path; the background mover costs some concurrency), and scans speed up once row groups are compressed.");
}
