//! E4 — Bitmap (Bloom) filter pushdown: join time vs dimension selectivity.
//!
//! A fact ⋈ dimension join where a filter keeps a varying fraction of the
//! dimension. With bitmap filters, fact rows that cannot join die at the
//! scan; without, every fact row reaches the join. Paper shape: the more
//! selective the dimension, the bigger the win; at 100% the filter is pure
//! overhead (small).

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_ms, median_time, Scale};
use cstore_core::{Database, ExecMode};
use cstore_exec::ExecContext;
use cstore_workload::StarSchema;

fn make_db(filters: bool, star: &StarSchema) -> Database {
    let ctx = if filters {
        ExecContext::default()
    } else {
        ExecContext::default().without_bitmap_filters()
    };
    let db = Database::new()
        .with_exec_mode(ExecMode::Batch)
        .with_exec_context(ctx);
    star.load_into(&db).expect("load");
    db
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.fact_rows();
    banner(
        "E4",
        "Bitmap filter pushdown in star joins",
        &format!("{n} fact rows; dimension filter keeps 0.1%..100% of customers"),
    );
    let star = StarSchema::scale(n);
    let n_cust = star.n_customers as f64;
    let db_on = make_db(true, &star);
    let db_off = make_db(false, &star);

    let mut table = Table::new(&[
        "dim selectivity",
        "with filter ms",
        "without ms",
        "speedup",
        "fact rows dropped at scan",
    ]);
    for pct in [0.1, 1.0, 5.0, 20.0, 50.0, 100.0] {
        let keep = ((n_cust * pct / 100.0).round() as i64).max(1);
        // Keep the *coldest* customers (the Zipf tail), so dimension
        // selectivity translates into fact-row selectivity — selecting the
        // hot head would retain most of the fact regardless.
        let cutoff = n_cust as i64 - keep;
        let sql = format!(
            "SELECT COUNT(*), SUM(s.quantity) FROM sales s \
             JOIN customer c ON s.cust_key = c.cust_key \
             WHERE c.cust_key >= {cutoff}"
        );
        // Same answers either way.
        assert_eq!(
            db_on.execute(&sql).expect("on").rows(),
            db_off.execute(&sql).expect("off").rows(),
            "results differ at {pct}%"
        );
        let ctx = db_on.exec_context().clone();
        let drops_before = ctx
            .metrics
            .snapshot()
            .iter()
            .find(|(x, _)| *x == "rows_dropped_by_bitmap")
            .unwrap()
            .1;
        let t_on = median_time(3, || {
            db_on.execute(&sql).expect("on");
        });
        let drops_after = ctx
            .metrics
            .snapshot()
            .iter()
            .find(|(x, _)| *x == "rows_dropped_by_bitmap")
            .unwrap()
            .1;
        let t_off = median_time(3, || {
            db_off.execute(&sql).expect("off");
        });
        table.row(&[
            format!("{pct}%"),
            fmt_ms(t_on),
            fmt_ms(t_off),
            format!("{:.2}x", t_off.as_secs_f64() / t_on.as_secs_f64()),
            ((drops_after - drops_before) / 3).to_string(),
        ]);
    }
    table.print();
    println!("\nshape check: the win shrinks as dimension selectivity approaches 100% (nothing left to drop).");
}
