//! E6 — Bulk load: batch size decides the path.
//!
//! Batches at or above the threshold (102,400 rows, as in the product)
//! compress directly into row groups; smaller batches trickle through
//! delta stores and wait for the tuple mover. Paper shape: direct loads
//! are the fast path and immediately produce compressed storage; small
//! batches leave rows in (larger, uncompressed) delta stores.

use std::time::Instant;

use cstore_bench::report::{banner, Table};
use cstore_bench::{fmt_bytes, Scale};
use cstore_delta::{ColumnStoreTable, TableConfig};
use cstore_workload::StarSchema;

fn main() {
    let scale = Scale::from_env();
    let n = scale.fact_rows();
    banner(
        "E6",
        "Bulk load by batch size (direct-compress threshold = 102,400 rows)",
        &format!("loading {n} fact rows in uniform batches"),
    );
    let rows = StarSchema::scale(n).sales();
    let mut table = Table::new(&[
        "batch size",
        "path",
        "load rows/s",
        "compressed rows",
        "delta rows",
        "stored bytes",
    ]);
    for batch in [10_000usize, 50_000, 102_400, 500_000, n] {
        let t = ColumnStoreTable::new(StarSchema::sales_schema(), TableConfig::default());
        let start = Instant::now();
        for chunk in rows.chunks(batch) {
            t.bulk_insert(chunk).expect("bulk insert");
        }
        let elapsed = start.elapsed();
        let s = t.stats();
        assert_eq!(t.total_rows(), n, "lost rows at batch={batch}");
        table.row(&[
            batch.to_string(),
            if batch >= 102_400 {
                "direct compress".into()
            } else {
                "via delta store".into()
            },
            format!("{:.0}", n as f64 / elapsed.as_secs_f64()),
            s.compressed_rows.to_string(),
            s.delta_rows.to_string(),
            fmt_bytes(s.compressed_bytes + s.delta_bytes),
        ]);
    }
    table.print();
    println!("\nshape check: crossing the 102,400-row threshold flips the path — rows land compressed (small footprint) instead of accumulating in delta stores (large, uncompressed).");
}
