//! Aligned-table printing for experiment output.

/// A simple text table builder.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with a header rule; numeric-looking cells right-align.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let numeric: Vec<bool> = (0..self.headers.len())
            .map(|i| {
                !self.rows.is_empty()
                    && self.rows.iter().all(|r| {
                        r[i].trim_start_matches(['-', '+'])
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_digit())
                    })
            })
            .collect();
        let fmt_cell = |c: &str, w: usize, num: bool| {
            if num {
                format!("{c:>w$}")
            } else {
                format!("{c:<w$}")
            }
        };
        let mut out = String::new();
        for ((h, &w), &num) in self.headers.iter().zip(&widths).zip(&numeric) {
            out.push_str(&fmt_cell(h, w, num));
            out.push_str("  ");
        }
        out.push('\n');
        for &w in &widths {
            out.push_str(&"-".repeat(w));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &self.rows {
            for ((c, &w), &num) in row.iter().zip(&widths).zip(&numeric) {
                out.push_str(&fmt_cell(c, w, num));
                out.push_str("  ");
            }
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str, detail: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!("{detail}");
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "20".into()]);
        let s = t.render();
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // value column right-aligned: " 1" under "20".
        assert!(lines[2].contains(" 1"));
    }
}
