//! Shared plumbing for the experiment harnesses (`src/bin/exp_*.rs`).
//!
//! Each binary regenerates one experiment from DESIGN.md's index (E1–E10),
//! printing the table/series the paper's evaluation reports. Scale via the
//! `CSTORE_SCALE` environment variable: `small` (quick sanity run),
//! `medium` (default) or `full`.

pub mod report;

use std::time::{Duration, Instant};

/// Experiment scale, from `CSTORE_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Small,
    Medium,
    Full,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("CSTORE_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("full") => Scale::Full,
            _ => Scale::Medium,
        }
    }

    /// Fact-table rows at this scale.
    pub fn fact_rows(self) -> usize {
        match self {
            Scale::Small => 50_000,
            Scale::Medium => 1_000_000,
            Scale::Full => 4_000_000,
        }
    }

    /// Rows per dataset in the compression study.
    pub fn dataset_rows(self) -> usize {
        match self {
            Scale::Small => 20_000,
            Scale::Medium => 200_000,
            Scale::Full => 500_000,
        }
    }
}

/// Run `f` `n` times, returning the median wall time.
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..n.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Milliseconds as a display string with sub-ms precision.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Human-readable byte count.
pub fn fmt_bytes(n: usize) -> String {
    if n >= 10 << 20 {
        format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 10 << 10 {
        format!("{:.1} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}
