//! Shared plumbing for the experiment harnesses (`src/bin/exp_*.rs`).
//!
//! Each binary regenerates one experiment from DESIGN.md's index (E1–E10),
//! printing the table/series the paper's evaluation reports. Scale via the
//! `CSTORE_SCALE` environment variable: `small` (quick sanity run),
//! `medium` (default) or `full`.

pub mod report;
pub mod rng;

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Experiment scale, from `CSTORE_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Small,
    Medium,
    Full,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("CSTORE_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("full") => Scale::Full,
            _ => Scale::Medium,
        }
    }

    /// Fact-table rows at this scale.
    pub fn fact_rows(self) -> usize {
        match self {
            Scale::Small => 50_000,
            Scale::Medium => 1_000_000,
            Scale::Full => 4_000_000,
        }
    }

    /// Rows per dataset in the compression study.
    pub fn dataset_rows(self) -> usize {
        match self {
            Scale::Small => 20_000,
            Scale::Medium => 200_000,
            Scale::Full => 500_000,
        }
    }
}

/// Run `f` `n` times, returning the median wall time.
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..n.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Milliseconds as a display string with sub-ms precision.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// One machine-readable experiment result, written as
/// `results/BENCH_<experiment>.json` next to the human-readable
/// `exp_*.txt` transcripts so CI (and plotting scripts) can shape-check
/// runs without parsing tables.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Experiment id, e.g. `E1` (becomes the file name).
    pub experiment: String,
    /// Rows processed per dataset/series at the scale that ran.
    pub rows: usize,
    /// End-to-end wall time of the experiment body, in milliseconds.
    pub wall_ms: f64,
    /// Bytes the experiment reports (e.g. total columnstore bytes).
    pub bytes: usize,
    /// Headline compression ratio (1.0 where not meaningful).
    pub compression_ratio: f64,
    /// Experiment-specific numeric fields appended to the JSON object
    /// (e.g. E5's WAL-on vs WAL-off insert rates). Keys must be plain
    /// `snake_case` identifiers.
    pub extras: Vec<(String, f64)>,
}

impl BenchResult {
    /// Hand-rolled JSON (no serde in the offline build); all fields are
    /// numbers except the id, which contains no characters needing
    /// escapes beyond the alphanumerics the constructor is given.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"experiment\":\"{}\",\"rows\":{},\"wall_ms\":{:.3},\"bytes\":{},\"compression_ratio\":{:.3}",
            self.experiment.replace(['"', '\\'], "_"),
            self.rows,
            self.wall_ms,
            self.bytes,
            self.compression_ratio,
        );
        for (key, value) in &self.extras {
            out.push_str(&format!(
                ",\"{}\":{value:.3}",
                key.replace(['"', '\\'], "_")
            ));
        }
        out.push('}');
        out
    }

    /// Write `results/BENCH_<experiment>.json` (directory from
    /// `CSTORE_RESULTS_DIR`, default `results/`), returning the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("CSTORE_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(n: usize) -> String {
    if n >= 10 << 20 {
        format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 10 << 10 {
        format!("{:.1} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}
