//! Microbenchmarks: the LZSS archival codec (compress/decompress
//! throughput per data shape — the CPU side of the archival trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cstore_storage::archive::{compress, decompress};

fn datasets() -> Vec<(&'static str, Vec<u8>)> {
    let text = "the quick brown fox jumps over the lazy dog. "
        .repeat(4000)
        .into_bytes();
    let mut x: u64 = 0x1234_5678_9abc_def0;
    let random: Vec<u8> = (0..180_000)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect();
    // Serialized-segment-like bytes: packed codes with some structure.
    let segmentish: Vec<u8> = (0..180_000u32)
        .map(|i| ((i / 64) % 200) as u8)
        .collect();
    vec![("text", text), ("random", random), ("segment_like", segmentish)]
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("lzss_compress");
    g.sample_size(10);
    for (name, data) in datasets() {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            b.iter(|| std::hint::black_box(compress(data).len()));
        });
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut g = c.benchmark_group("lzss_decompress");
    g.sample_size(10);
    for (name, data) in datasets() {
        let compressed = compress(&data);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &compressed,
            |b, compressed| {
                b.iter(|| std::hint::black_box(decompress(compressed).unwrap().len()));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
