//! Microbenchmarks: batch vs row hash join and hash aggregation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cstore_common::{DataType, Row, Value};
use cstore_exec::ops::hash_agg::{AggExpr, AggFunc, HashAggOp};
use cstore_exec::ops::hash_join::JoinType;
use cstore_exec::ops::{collect_row_mode, collect_rows};
use cstore_exec::row_ops::{RowHashAgg, RowHashJoin, RowSource};
use cstore_exec::{BatchHashJoin, BatchSource, ExecContext, Expr};

const N_PROBE: usize = 100_000;
const N_BUILD: usize = 10_000;

fn probe_rows() -> Vec<Row> {
    (0..N_PROBE)
        .map(|i| {
            Row::new(vec![
                Value::Int64((i % N_BUILD) as i64),
                Value::Int64(i as i64),
            ])
        })
        .collect()
}

fn build_rows() -> Vec<Row> {
    (0..N_BUILD)
        .map(|i| Row::new(vec![Value::Int64(i as i64), Value::str(format!("d{i}"))]))
        .collect()
}

fn bench_join(c: &mut Criterion) {
    let probe = probe_rows();
    let build = build_rows();
    let tp = vec![DataType::Int64, DataType::Int64];
    let tb = vec![DataType::Int64, DataType::Utf8];
    let mut g = c.benchmark_group("hash_join_inner");
    g.throughput(Throughput::Elements(N_PROBE as u64));
    g.sample_size(10);
    g.bench_function("batch", |b| {
        b.iter(|| {
            let j = BatchHashJoin::new(
                Box::new(BatchSource::from_rows(tp.clone(), &probe, 900).unwrap()),
                Box::new(BatchSource::from_rows(tb.clone(), &build, 900).unwrap()),
                vec![0],
                vec![0],
                JoinType::Inner,
                ExecContext::default(),
            )
            .unwrap();
            std::hint::black_box(collect_rows(Box::new(j)).unwrap().len())
        });
    });
    g.bench_function("row", |b| {
        b.iter(|| {
            let j = RowHashJoin::new(
                Box::new(RowSource::new(tp.clone(), probe.clone())),
                Box::new(RowSource::new(tb.clone(), build.clone())),
                vec![0],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
            std::hint::black_box(collect_row_mode(Box::new(j)).unwrap().len())
        });
    });
    g.finish();
}

fn bench_agg(c: &mut Criterion) {
    let rows = probe_rows();
    let ty = vec![DataType::Int64, DataType::Int64];
    let mut g = c.benchmark_group("hash_agg_grouped");
    g.throughput(Throughput::Elements(N_PROBE as u64));
    g.sample_size(10);
    let aggs = || {
        vec![
            AggExpr::count_star(),
            AggExpr::new(AggFunc::Sum, Expr::col(1)),
            AggExpr::new(AggFunc::Max, Expr::col(1)),
        ]
    };
    g.bench_function("batch_i64_key", |b| {
        b.iter(|| {
            let a = HashAggOp::new(
                Box::new(BatchSource::from_rows(ty.clone(), &rows, 900).unwrap()),
                vec![Expr::col(0)],
                aggs(),
                ExecContext::default(),
            )
            .unwrap();
            std::hint::black_box(collect_rows(Box::new(a)).unwrap().len())
        });
    });
    g.bench_function("row", |b| {
        b.iter(|| {
            let a = RowHashAgg::new(
                Box::new(RowSource::new(ty.clone(), rows.clone())),
                vec![Expr::col(0)],
                aggs(),
            )
            .unwrap();
            std::hint::black_box(collect_row_mode(Box::new(a)).unwrap().len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_join, bench_agg);
criterion_main!(benches);
