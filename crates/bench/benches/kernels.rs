//! Microbenchmarks: vectorized kernels vs their row-at-a-time equivalents
//! (the per-row overhead batch mode amortizes), plus bitmap-filter probes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cstore_common::{DataType, Row, Value};
use cstore_exec::expr::Expr;
use cstore_exec::{Batch, BitmapFilter};
use cstore_storage::pred::CmpOp;

const N: usize = 64 * 1024;

fn rows() -> Vec<Row> {
    (0..N)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i as i64 % 1000),
                Value::Float64((i % 97) as f64),
            ])
        })
        .collect()
}

fn bench_filter_kernels(c: &mut Criterion) {
    let rows = rows();
    let types = vec![DataType::Int64, DataType::Float64];
    let batch = Batch::from_rows(&types, &rows).unwrap();
    let expr = Expr::and(
        Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(100i64)),
        Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(50.0)),
    );
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    g.bench_function("vectorized", |b| {
        b.iter(|| expr.eval_pred(&batch).unwrap());
    });
    g.bench_function("row_at_a_time", |b| {
        b.iter(|| {
            let mut n = 0;
            for row in &rows {
                if matches!(expr.eval_row(row).unwrap(), Value::Bool(true)) {
                    n += 1;
                }
            }
            std::hint::black_box(n)
        });
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let rows = rows();
    let types = vec![DataType::Int64, DataType::Float64];
    let batch = Batch::from_rows(&types, &rows).unwrap();
    let mut g = c.benchmark_group("key_hash");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    g.bench_function("vectorized", |b| {
        let mut out = vec![0u64; N];
        b.iter(|| {
            out.iter_mut().for_each(|o| *o = 0);
            batch.column(0).hash_into(&mut out);
            std::hint::black_box(&out);
        });
    });
    g.bench_function("row_at_a_time", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for row in &rows {
                acc ^= cstore_exec::vector::hash_values(std::iter::once(row.get(0)));
            }
            std::hint::black_box(acc)
        });
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_filter");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    // Exact representation (narrow key domain).
    let exact = BitmapFilter::build(&(0..100_000i64).step_by(7).collect::<Vec<_>>()).unwrap();
    assert!(exact.is_exact());
    g.bench_function("probe_exact", |b| {
        b.iter(|| {
            let mut hits = 0;
            for i in 0..N as i64 {
                if exact.maybe_contains(i * 13) {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        });
    });
    // Bloom representation (wide domain).
    let bloom =
        BitmapFilter::build(&(0..100_000i64).map(|i| i * 1_000_003).collect::<Vec<_>>()).unwrap();
    assert!(!bloom.is_exact());
    g.bench_function("probe_bloom", |b| {
        b.iter(|| {
            let mut hits = 0;
            for i in 0..N as i64 {
                if bloom.maybe_contains(i * 13) {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_filter_kernels,
    bench_hashing,
    bench_bloom,
    bench_batch_size_sweep
);
criterion_main!(benches);

fn bench_batch_size_sweep(c: &mut Criterion) {
    // The paper sizes batches (~1000 rows) so a few active columns stay
    // cache-resident: too small and per-batch dispatch dominates, too big
    // and vectors spill out of L2. Sweep a scan+filter+aggregate pipeline.
    use cstore_common::{Field, Schema};
    use cstore_delta::{ColumnStoreTable, TableConfig};
    use cstore_exec::ops::collect_rows;
    use cstore_exec::ops::filter::FilterOp;
    use cstore_exec::ops::hash_agg::{AggExpr, AggFunc, HashAggOp};
    use cstore_exec::{ColumnStoreScan, ExecContext};

    let schema = Schema::new(vec![
        Field::not_null("k", DataType::Int64),
        Field::not_null("v", DataType::Int64),
    ]);
    let table = ColumnStoreTable::new(
        schema,
        TableConfig {
            bulk_load_threshold: 1024,
            ..Default::default()
        },
    );
    let rows: Vec<Row> = (0..400_000)
        .map(|i| Row::new(vec![Value::Int64(i % 50), Value::Int64(i)]))
        .collect();
    table.bulk_insert(&rows).unwrap();

    let mut g = c.benchmark_group("batch_size_sweep");
    g.throughput(Throughput::Elements(400_000));
    g.sample_size(10);
    for size in [64usize, 256, 900, 4096, 16384] {
        g.bench_function(format!("{size}_rows_per_batch"), |b| {
            b.iter(|| {
                let ctx = ExecContext::default().with_batch_size(size);
                let scan = ColumnStoreScan::new(table.snapshot(), vec![0, 1], vec![], ctx.clone());
                let filt = FilterOp::new(
                    Box::new(scan),
                    Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::lit(100_000i64)),
                );
                let agg = HashAggOp::new(
                    Box::new(filt),
                    vec![Expr::col(0)],
                    vec![AggExpr::new(AggFunc::Sum, Expr::col(1))],
                    ctx,
                )
                .unwrap();
                std::hint::black_box(collect_rows(Box::new(agg)).unwrap().len())
            });
        });
    }
    g.finish();
}
