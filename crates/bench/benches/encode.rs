//! Microbenchmarks: column encodings (encode + decode throughput per
//! data shape, and predicate evaluation on encoded data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cstore_common::{DataType, Value};
use cstore_storage::builder::encode_column;
use cstore_storage::pred::{CmpOp, ColumnPred};

const N: usize = 64 * 1024;

fn datasets() -> Vec<(&'static str, DataType, Vec<Value>)> {
    vec![
        (
            "runny_ints(rle)",
            DataType::Int64,
            (0..N).map(|i| Value::Int64((i / 1000) as i64)).collect(),
        ),
        (
            "dense_ints(bitpack)",
            DataType::Int64,
            (0..N).map(|i| Value::Int64((i % 997) as i64)).collect(),
        ),
        (
            "sparse_ints(dict)",
            DataType::Int64,
            (0..N)
                .map(|i| Value::Int64([i64::MIN, 7, i64::MAX / 3][i % 3]))
                .collect(),
        ),
        (
            "strings(dict)",
            DataType::Utf8,
            (0..N)
                .map(|i| Value::str(format!("label-{:03}", i % 200)))
                .collect(),
        ),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for (name, ty, values) in datasets() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &values, |b, values| {
            b.iter(|| encode_column(ty, values, None).unwrap());
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for (name, ty, values) in datasets() {
        let seg = encode_column(ty, &values, None).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &seg, |b, seg| {
            b.iter(|| std::hint::black_box(seg.decode()));
        });
    }
    g.finish();
}

fn bench_pushdown(c: &mut Criterion) {
    let mut g = c.benchmark_group("pred_on_encoded");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for (name, ty, values) in datasets() {
        let seg = encode_column(ty, &values, None).unwrap();
        let pred = match ty {
            DataType::Utf8 => ColumnPred::Cmp {
                op: CmpOp::Eq,
                value: Value::str("label-050"),
            },
            _ => ColumnPred::Cmp {
                op: CmpOp::Ge,
                value: Value::Int64(7),
            },
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &seg, |b, seg| {
            b.iter(|| seg.eval_pred(&pred).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_pushdown);
criterion_main!(benches);
