//! Microbenchmarks: the write path — B+tree operations, trickle inserts,
//! deletes, and the tuple mover's compression step.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cstore_common::{DataType, Field, Row, RowId, RowGroupId, Schema, Value};
use cstore_delta::btree::BTree;
use cstore_delta::{ColumnStoreTable, TableConfig};

fn schema() -> Schema {
    Schema::new(vec![
        Field::not_null("id", DataType::Int64),
        Field::not_null("tag", DataType::Utf8),
        Field::nullable("v", DataType::Float64),
    ])
}

fn row(i: i64) -> Row {
    Row::new(vec![
        Value::Int64(i),
        Value::str(["a", "b", "c", "d"][(i % 4) as usize]),
        Value::Float64(i as f64),
    ])
}

fn bench_btree(c: &mut Criterion) {
    const N: usize = 100_000;
    let mut g = c.benchmark_group("btree");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("insert_sequential", |b| {
        b.iter(|| {
            let mut t = BTree::new();
            for i in 0..N as u64 {
                t.insert(i, i);
            }
            std::hint::black_box(t.len())
        });
    });
    g.bench_function("insert_scrambled", |b| {
        b.iter(|| {
            let mut t = BTree::new();
            for i in 0..N as u64 {
                t.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i);
            }
            std::hint::black_box(t.len())
        });
    });
    let mut full = BTree::new();
    for i in 0..N as u64 {
        full.insert(i, i);
    }
    g.bench_function("point_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in (0..N as u64).step_by(7) {
                acc ^= *full.get(i).unwrap();
            }
            std::hint::black_box(acc)
        });
    });
    g.bench_function("full_scan", |b| {
        b.iter(|| std::hint::black_box(full.iter().count()));
    });
    g.finish();
}

fn bench_table_writes(c: &mut Criterion) {
    const N: usize = 50_000;
    let config = TableConfig {
        delta_capacity: 1 << 20,
        ..Default::default()
    };
    let mut g = c.benchmark_group("table_write_path");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("trickle_insert", |b| {
        b.iter(|| {
            let t = ColumnStoreTable::new(schema(), config.clone());
            for i in 0..N as i64 {
                t.insert(row(i)).unwrap();
            }
            std::hint::black_box(t.total_rows())
        });
    });
    g.bench_function("bulk_insert_direct", |b| {
        let rows: Vec<Row> = (0..N as i64).map(row).collect();
        let config = TableConfig {
            bulk_load_threshold: 1024,
            ..Default::default()
        };
        b.iter(|| {
            let t = ColumnStoreTable::new(schema(), config.clone());
            t.bulk_insert(&rows).unwrap();
            std::hint::black_box(t.total_rows())
        });
    });
    g.bench_function("delete_from_compressed", |b| {
        let rows: Vec<Row> = (0..N as i64).map(row).collect();
        let config = TableConfig {
            bulk_load_threshold: 1024,
            ..Default::default()
        };
        b.iter(|| {
            let t = ColumnStoreTable::new(schema(), config.clone());
            t.bulk_insert(&rows).unwrap();
            let gid = t.snapshot().groups()[0].id();
            for i in (0..N as u32).step_by(3) {
                t.delete(RowId::new(gid, i)).unwrap();
            }
            std::hint::black_box(t.total_rows())
        });
    });
    g.bench_function("tuple_move", |b| {
        b.iter(|| {
            let t = ColumnStoreTable::new(
                schema(),
                TableConfig {
                    delta_capacity: N / 4,
                    ..Default::default()
                },
            );
            for i in 0..N as i64 {
                t.insert(row(i)).unwrap();
            }
            t.close_open_delta();
            std::hint::black_box(t.tuple_move_once().unwrap())
        });
    });
    let _ = RowGroupId(0);
    g.finish();
}

criterion_group!(benches, bench_btree, bench_table_writes);
criterion_main!(benches);
