//! A lightweight, line-aware model of a Rust source file.
//!
//! The scanner is not a full parser — it only needs to answer the
//! questions the rules ask: "what code is on this line once comments and
//! string-literal *contents* are removed?", "what comment text rides on
//! this line?", and "is this line inside a `#[cfg(test)]` module?". It
//! understands line comments, (nested) block comments, string/char/byte
//! literals, raw strings with any number of `#`s, and the `'lifetime`
//! ambiguity — enough that rule matching never fires on text inside a
//! string or a comment.

use std::path::PathBuf;

/// One line of a scanned source file.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Source text with comments removed and string/char literal contents
    /// blanked (the delimiting quotes survive so tokens don't fuse).
    pub code: String,
    /// Concatenated comment text that appears on this line (line comments
    /// and the portions of block comments that cross it).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]`-gated module or
    /// block (unit tests embedded in library files).
    pub in_test: bool,
}

/// A scanned source file plus the classification rules care about.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, e.g. `crates/storage/src/format.rs`.
    pub path: PathBuf,
    /// Short crate name: the directory under `crates/` (`storage`, `exec`,
    /// ...) or `cstore` for the root package.
    pub crate_name: String,
    /// True for binary targets (`src/main.rs`, `src/bin/*`): the library
    /// rules (L1/L2/L6) do not apply to top-level driver code.
    pub is_bin: bool,
    pub lines: Vec<Line>,
}

/// Scanner state across characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    Char,
}

impl SourceFile {
    /// Scan `text` into lines. `path` and `crate_name` are carried through
    /// for reporting; `is_bin` marks binary targets.
    pub fn parse(path: PathBuf, crate_name: &str, is_bin: bool, text: &str) -> SourceFile {
        let mut lines: Vec<Line> = Vec::new();
        let mut cur = Line::default();
        let mut mode = Mode::Code;
        let chars: Vec<char> = text.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            if c == '\n' {
                if mode == Mode::LineComment {
                    mode = Mode::Code;
                }
                lines.push(std::mem::take(&mut cur));
                i += 1;
                continue;
            }
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        cur.code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    }
                    'r' if starts_raw_string(&chars, i) => {
                        let hashes = count_hashes(&chars, i + 1);
                        cur.code.push('"');
                        mode = Mode::RawStr(hashes);
                        // skip r, hashes and the opening quote
                        i += 2 + hashes as usize;
                    }
                    'b' if next == Some('"') => {
                        cur.code.push('"');
                        mode = Mode::Str;
                        i += 2;
                    }
                    'b' if next == Some('r') && starts_raw_string(&chars, i + 1) => {
                        let hashes = count_hashes(&chars, i + 2);
                        cur.code.push('"');
                        mode = Mode::RawStr(hashes);
                        i += 3 + hashes as usize;
                    }
                    'b' if next == Some('\'') => {
                        cur.code.push('\'');
                        mode = Mode::Char;
                        i += 2;
                    }
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'a'`). A
                        // lifetime is a quote followed by an identifier
                        // with no closing quote right after.
                        let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                            && chars.get(i + 2).copied() != Some('\'');
                        if is_lifetime {
                            cur.code.push('\'');
                            i += 1;
                        } else {
                            cur.code.push('\'');
                            mode = Mode::Char;
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                },
                Mode::LineComment => {
                    cur.comment.push(c);
                    i += 1;
                }
                Mode::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        cur.comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => match c {
                    '\\' => i += 2, // skip escaped char (contents blanked anyway)
                    '"' => {
                        cur.code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                Mode::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        cur.code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
                Mode::Char => match c {
                    '\\' => i += 2,
                    '\'' => {
                        cur.code.push('\'');
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
            }
        }
        if !cur.code.is_empty() || !cur.comment.is_empty() {
            lines.push(cur);
        }
        let mut file = SourceFile {
            path,
            crate_name: crate_name.to_owned(),
            is_bin,
            lines,
        };
        file.mark_test_regions();
        file
    }

    /// Mark lines inside `#[cfg(test)]`-gated items (typically
    /// `mod tests { ... }`) by tracking brace depth from the attribute.
    fn mark_test_regions(&mut self) {
        let mut depth: i64 = 0;
        // Depth below which each active test region ends.
        let mut region_floor: Option<i64> = None;
        // A `#[cfg(test)]` was seen and its item hasn't opened yet.
        let mut pending_attr = false;
        for idx in 0..self.lines.len() {
            let code = self.lines[idx].code.clone();
            if code.contains("#[cfg(test)]") {
                pending_attr = true;
            }
            let entering = region_floor.is_some() || pending_attr;
            if entering {
                self.lines[idx].in_test = true;
            }
            for ch in code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        if pending_attr && region_floor.is_none() {
                            // The attribute's item body just opened.
                            region_floor = Some(depth - 1);
                            pending_attr = false;
                        }
                    }
                    '}' => {
                        depth -= 1;
                        if let Some(floor) = region_floor {
                            if depth <= floor {
                                region_floor = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

fn starts_raw_string(chars: &[char], r_pos: usize) -> bool {
    // `r` followed by zero or more `#` then `"`.
    let mut j = r_pos + 1;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    chars.get(j).copied() == Some('"')
}

fn count_hashes(chars: &[char], from: usize) -> u8 {
    let mut n = 0u8;
    let mut j = from;
    while chars.get(j).copied() == Some('#') {
        n = n.saturating_add(1);
        j += 1;
    }
    n
}

fn closes_raw_string(chars: &[char], quote_pos: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| chars.get(quote_pos + k).copied() == Some('#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), "x", false, text)
    }

    #[test]
    fn strips_line_comments_keeps_text() {
        let f = parse("let a = 1; // trailing note\n");
        assert_eq!(f.lines[0].code.trim_end(), "let a = 1;");
        assert_eq!(f.lines[0].comment.trim(), "trailing note");
    }

    #[test]
    fn blanks_string_contents() {
        let f = parse("let s = \"call .unwrap() now\"; s.len();\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("s.len()"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let f = parse("let s = r#\"panic!(\"inner\")\"#; done();\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].code.contains("done()"));
    }

    #[test]
    fn nested_block_comments() {
        let f = parse("a(); /* outer /* inner */ still comment */ b();\n");
        assert!(f.lines[0].code.contains("a();"));
        assert!(f.lines[0].code.contains("b();"));
        assert!(!f.lines[0].code.contains("comment"));
        assert!(f.lines[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let f = parse("a();\n/* one\ntwo */ b();\n");
        assert!(f.lines[1].code.trim().is_empty());
        assert!(f.lines[1].comment.contains("one"));
        assert!(f.lines[2].code.contains("b();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = parse("fn f<'a>(x: &'a str) -> &'a str { x } g();\n");
        assert!(f.lines[0].code.contains("g();"));
    }

    #[test]
    fn char_literal_contents_blanked() {
        let f = parse("let c = '\"'; let d = '\\''; h();\n");
        assert!(f.lines[0].code.contains("h();"));
    }

    #[test]
    fn cfg_test_region_marked() {
        let text = "fn lib() { x.unwrap(); }\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    fn t() { y.unwrap(); }\n\
                    }\n\
                    fn lib2() {}\n";
        let f = parse(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "region must close");
    }
}
