//! The line-oriented rules (L1–L4, L6). The lock-order rule (L5) needs
//! cross-line scope tracking and lives in [`crate::lockorder`].
//!
//! Every rule supports an inline waiver:
//!
//! ```text
//! // lint: allow(<rule>) — <reason>
//! ```
//!
//! placed on the offending line or on the line directly above it. The
//! reason is mandatory; a waiver without one is itself a violation
//! (`waiver` rule) so suppressions stay auditable.

use crate::source::SourceFile;
use std::fmt;

/// Rule identifiers, matching the `allow(<name>)` waiver vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// L1 — `.unwrap()` / `.expect(` in library code of the core crates.
    Unwrap,
    /// L2 — `panic!` / `unreachable!` / `todo!` / `unimplemented!` in
    /// library code without a waiver.
    Panic,
    /// L3 — lossy `as` numeric cast in the storage format/encode files.
    Cast,
    /// L4 — `unsafe` without a preceding `// SAFETY:` comment.
    Unsafe,
    /// L5 — lock acquisition order contradicts LOCK_ORDER.md.
    LockOrder,
    /// L6 — silently discarded `Result` (`.ok();` or `let _ =`).
    Discard,
    /// L7 — a call made while a guard is live reaches a function that
    /// may acquire an equal-or-lower level (interprocedural).
    LockOrderCall,
    /// L8 — LOCK_ORDER.md drifted from the actual lock fields in code.
    LockOrderDoc,
    /// A waiver comment missing its mandatory reason.
    Waiver,
}

impl Rule {
    /// The name used in waiver comments and baseline keys.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Panic => "panic",
            Rule::Cast => "cast",
            Rule::Unsafe => "unsafe",
            Rule::LockOrder => "lock-order",
            Rule::Discard => "discard",
            Rule::LockOrderCall => "lock-order-call",
            Rule::LockOrderDoc => "lock-order-doc",
            Rule::Waiver => "waiver",
        }
    }

    pub const ALL: [Rule; 9] = [
        Rule::Unwrap,
        Rule::Panic,
        Rule::Cast,
        Rule::Unsafe,
        Rule::LockOrder,
        Rule::Discard,
        Rule::LockOrderCall,
        Rule::LockOrderDoc,
        Rule::Waiver,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, pointing at a source line.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub crate_name: String,
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// True when an inline `lint: allow(...)` waiver (with a reason)
    /// covers this finding. Waived findings are reported for audit but
    /// excluded from the baseline ratchet and from CI failure counts.
    pub waived: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.path,
            self.line,
            self.rule,
            self.message,
            if self.waived { " (waived)" } else { "" }
        )
    }
}

/// Crates whose library code must not unwrap/expect (L1).
const L1_CRATES: [&str; 4] = ["storage", "exec", "delta", "core"];

/// Files subject to the lossy-cast rule (L3).
fn cast_rule_applies(path: &str) -> bool {
    path.contains("crates/storage/src/encode/") || path.ends_with("crates/storage/src/format.rs")
}

/// Numeric types a lossy `as` cast can target.
const NUMERIC_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "f32", "f64",
];

/// Check whether line `idx` (0-based) carries a waiver for `rule`: on the
/// same line, or in the contiguous block of comment-only lines directly
/// above it (so a waiver's reason may wrap). Returns `Some(has_reason)`
/// when a waiver is present.
pub(crate) fn waiver_for(file: &SourceFile, idx: usize, rule: Rule) -> Option<bool> {
    let needle = format!("lint: allow({})", rule.name());
    let check = |j: usize| -> Option<bool> {
        let comment = &file.lines[j].comment;
        let pos = comment.find(&needle)?;
        let rest = &comment[pos + needle.len()..];
        // The reason is whatever follows the closing paren once
        // separators (dashes, colons, whitespace) are stripped.
        let reason = rest
            .trim_start_matches(|c: char| {
                c.is_whitespace() || c == '—' || c == '-' || c == ':' || c == '–'
            })
            .trim();
        Some(!reason.is_empty())
    };
    if let Some(found) = check(idx) {
        return Some(found);
    }
    // Walk upward while lines are pure comments (blank code).
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &file.lines[j];
        if let Some(found) = check(j) {
            return Some(found);
        }
        if !line.code.trim().is_empty() || line.comment.is_empty() {
            break;
        }
    }
    None
}

/// True when `code[pos..]` starts a word-boundary occurrence of `word`
/// (previous char is not an identifier char).
pub(crate) fn at_word_boundary(code: &str, pos: usize) -> bool {
    pos == 0
        || !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Find word-boundary occurrences of `pat` in `code`.
fn find_word(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(pat) {
        let pos = from + rel;
        if at_word_boundary(code, pos) {
            return true;
        }
        from = pos + pat.len();
    }
    false
}

/// Detect ` as <numeric-type>` casts on a code line. Returns the target
/// type when found. `trivial_numeric_casts` is denied compiler-side, so
/// anything the scanner finds here is potentially lossy.
fn find_numeric_cast(code: &str) -> Option<&'static str> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(" as ") {
        let pos = from + rel;
        let after = &code[pos + 4..];
        let tail = after.trim_start();
        for ty in NUMERIC_TYPES {
            if tail.starts_with(ty) {
                // Must end at a word boundary (`as u64` not `as u64x`).
                let nxt = tail[ty.len()..].chars().next();
                if !nxt.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    return Some(ty);
                }
            }
        }
        from = pos + 4;
    }
    None
}

/// Run the line-oriented rules over one file, appending findings to `out`.
pub fn check_file(file: &SourceFile, out: &mut Vec<Violation>) {
    let path = file.path.to_string_lossy().to_string();
    let lib_rules_apply = !file.is_bin;
    let l1_applies = lib_rules_apply && L1_CRATES.contains(&file.crate_name.as_str());
    let l3_applies = cast_rule_applies(&path);

    let record = |rule: Rule, idx: usize, message: String, out: &mut Vec<Violation>| {
        match waiver_for(file, idx, rule) {
            // Waived with a reason: keep the finding (audit trail, JSON
            // output) but mark it so the ratchet and CI ignore it.
            Some(true) => out.push(Violation {
                rule,
                crate_name: file.crate_name.clone(),
                path: path.clone(),
                line: idx + 1,
                message,
                waived: true,
            }),
            Some(false) => out.push(Violation {
                rule: Rule::Waiver,
                crate_name: file.crate_name.clone(),
                path: path.clone(),
                line: idx + 1,
                message: format!(
                    "waiver for `{}` is missing its reason — write `// lint: allow({}) — <why>`",
                    rule, rule
                ),
                waived: false,
            }),
            None => out.push(Violation {
                rule,
                crate_name: file.crate_name.clone(),
                path: path.clone(),
                line: idx + 1,
                message,
                waived: false,
            }),
        }
    };

    for (idx, line) in file.lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let lib_line = !line.in_test;

        // L1 — unwrap/expect in library code of the core crates.
        if l1_applies && lib_line {
            if code.contains(".unwrap()") {
                record(
                    Rule::Unwrap,
                    idx,
                    "`.unwrap()` in library code — return a Result or document why it cannot fail"
                        .into(),
                    out,
                );
            }
            if code.contains(".expect(") {
                record(
                    Rule::Unwrap,
                    idx,
                    "`.expect(...)` in library code — return a Result or document why it cannot fail"
                        .into(),
                    out,
                );
            }
        }

        // L2 — panicking macros in any library crate.
        if lib_rules_apply && lib_line {
            for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
                if find_word(code, mac) && !code.contains("debug_assert") {
                    record(
                        Rule::Panic,
                        idx,
                        format!(
                            "`{mac}` in library code — convert to an error or waive with a reason"
                        ),
                        out,
                    );
                }
            }
        }

        // L3 — lossy numeric `as` casts in format/encode files.
        if l3_applies && lib_line {
            if let Some(ty) = find_numeric_cast(code) {
                record(
                    Rule::Cast,
                    idx,
                    format!(
                        "`as {ty}` cast in a storage-format file — use a checked conversion (try_into / u64_to_usize) or waive with a reason"
                    ),
                    out,
                );
            }
        }

        // L4 — `unsafe` needs a SAFETY comment nearby (applies everywhere,
        // including tests: unsafety doesn't get safer under cfg(test)).
        if find_word(code, "unsafe") {
            let documented =
                (idx.saturating_sub(3)..=idx).any(|j| file.lines[j].comment.contains("SAFETY:"));
            if !documented {
                record(
                    Rule::Unsafe,
                    idx,
                    "`unsafe` without a `// SAFETY:` comment on or within 3 lines above".into(),
                    out,
                );
            }
        }

        // L6 — silently discarded Results in library code.
        if lib_rules_apply && lib_line {
            if code.contains(".ok();") {
                record(
                    Rule::Discard,
                    idx,
                    "Result discarded via `.ok();` — handle the error or waive with a reason"
                        .into(),
                    out,
                );
            }
            if code.trim_start().starts_with("let _ =") || code.contains(" let _ =") {
                record(
                    Rule::Discard,
                    idx,
                    "`let _ =` discards a value — handle the error or waive with a reason".into(),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(path: &str, crate_name: &str, text: &str) -> Vec<Violation> {
        let f = SourceFile::parse(PathBuf::from(path), crate_name, false, text);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_flagged_only_in_l1_crates() {
        let v = scan(
            "crates/storage/src/x.rs",
            "storage",
            "fn f() { a.unwrap(); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Unwrap);
        let v = scan(
            "crates/planner/src/x.rs",
            "planner",
            "fn f() { a.unwrap(); }\n",
        );
        assert!(v.is_empty(), "planner is not an L1 crate");
    }

    #[test]
    fn unwrap_in_test_mod_ignored() {
        let text = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }\n";
        let v = scan("crates/exec/src/x.rs", "exec", text);
        assert!(v.is_empty());
    }

    #[test]
    fn panic_waiver_with_reason_accepted() {
        let text =
            "// lint: allow(panic) — impossible by construction\nfn f() { panic!(\"x\"); }\n";
        let v = scan("crates/sql/src/x.rs", "sql", text);
        assert_eq!(v.len(), 1, "waived finding is retained for audit");
        assert!(v[0].waived);
        assert_eq!(v[0].rule, Rule::Panic);
    }

    #[test]
    fn waiver_without_reason_is_a_violation() {
        let text = "fn f() { panic!(\"x\"); } // lint: allow(panic)\n";
        let v = scan("crates/sql/src/x.rs", "sql", text);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Waiver);
    }

    #[test]
    fn cast_rule_scoped_to_format_files() {
        let text = "fn f(x: u64) -> u8 { x as u8 }\n";
        let v = scan("crates/storage/src/encode/rle.rs", "storage", text);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Cast);
        let v = scan("crates/storage/src/segment.rs", "storage", text);
        assert!(v.is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        let v = scan("crates/common/src/x.rs", "common", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Unsafe);
        let good = "// SAFETY: g has no preconditions\nfn f() { unsafe { g() } }\n";
        assert!(scan("crates/common/src/x.rs", "common", good).is_empty());
    }

    #[test]
    fn discard_detected_and_word_boundaries_hold() {
        let text = "fn f() {\n    let _ = g();\n    h().ok();\n}\n";
        let v = scan("crates/core/src/x.rs", "core", text);
        assert_eq!(v.iter().filter(|v| v.rule == Rule::Discard).count(), 2);
        // `.ok()` not followed by `;` (e.g. in a chain) is fine, and
        // identifiers containing `panic` must not trip L2.
        let v = scan(
            "crates/core/src/x.rs",
            "core",
            "fn f() { no_panic_here(); }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn strings_never_trip_rules() {
        let text = "fn f() { log(\"call .unwrap() or panic! now\"); }\n";
        let v = scan("crates/storage/src/x.rs", "storage", text);
        assert!(v.is_empty());
    }
}
