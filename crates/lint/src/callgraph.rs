//! L7/L8 — the interprocedural half of the lock-order checker.
//!
//! L5 ([`crate::lockorder`]) only sees acquisitions inside one function
//! body, so it cannot catch the cross-function shape that actually bites:
//! a method acquires `table.inner`, then calls a helper which acquires an
//! equal-or-lower level (or blocks on a condvar) three frames down. This
//! module builds a syntactic call graph over the checked crates, computes
//! a per-function summary by fixpoint —
//!
//!   * `min_acquire`: the lowest LOCK_ORDER.md level the function may
//!     acquire, directly or transitively, and
//!   * `may_wait`: whether it may block on a condvar (`.wait(..)` /
//!     `.wait_timeout(..)`), directly or transitively
//!
//! — and then re-walks every function with L5-style guard tracking,
//! flagging calls made while a guard is live whose callee may acquire an
//! equal-or-lower level (`lock-order-call`), or may block on a condvar
//! while a guard is held. The condvar arm is what catches the classic
//! WAL shape: `Wal::commit` only touches levels 9–10, so a pure level
//! comparison would allow it under `table.inner` (level 3) — but commit
//! parks on the group-commit condvar, and sleeping under a table guard
//! stalls every reader, so any transitive path to it under a guard is
//! flagged.
//!
//! Name resolution is deliberately an under-approximation so the rule
//! stays zero-false-positive: an ambiguous callee name resolves to the
//! INTERSECTION of its candidates' summaries (a claim is only believed
//! when every candidate supports it), and unresolvable callees (std,
//! other crates) are assumed safe.
//!
//! L8 (`lock-order-doc`) keeps LOCK_ORDER.md honest in the other
//! direction: every `Mutex`/`RwLock` struct field in the checked crates
//! must have a row, and every row must still match a real field in the
//! file it names.

use crate::lockorder::{
    brace_delta, guard_binding, receiver_field, LockOrder, ACQUIRE_CALLS, CHECKED_CRATES,
};
use crate::rules::{at_word_boundary, Rule, Violation};
use crate::source::SourceFile;
use std::collections::HashMap;

/// How a call site names its callee — drives candidate filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CallKind {
    /// `self.helper(..)` — prefer candidates on the caller's impl type.
    SelfMethod,
    /// `value.helper(..)` — receiver type unknown; all candidates.
    Method,
    /// `Type::helper(..)` — only candidates on `Type` (else external).
    Path(String),
    /// `helper(..)` — prefer free functions.
    Free,
}

#[derive(Debug, Clone)]
struct Call {
    name: String,
    kind: CallKind,
}

/// One function body discovered in the scanned files.
#[derive(Debug)]
struct FnDef {
    name: String,
    impl_type: Option<String>,
    file: usize,
    /// Line indices (into the file) attributed to this function. Nested
    /// `fn` items get their own def; closure bodies stay with the owner.
    lines: Vec<usize>,
    /// True once an opening brace was seen — trait method signatures
    /// without bodies never open and are discarded (they would otherwise
    /// dilute every same-named impl's summary to "acquires nothing").
    opened: bool,
    direct_min: Option<u32>,
    direct_wait: bool,
    calls: Vec<Call>,
    min_acquire: Option<u32>,
    may_wait: bool,
}

/// Rust keywords that can precede `(` without being a call.
const NON_CALL_WORDS: [&str; 12] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "let", "fn", "where",
];

/// Method names that are never treated as graph calls: guard
/// acquisitions and condvar waits have their own dedicated handling.
const SPECIAL_METHODS: [&str; 9] = [
    "lock",
    "read",
    "write",
    "try_lock",
    "try_read",
    "try_write",
    "wait",
    "wait_timeout",
    "drop",
];

/// The identifier ending at byte `end` (exclusive), with its start.
fn ident_ending_at(code: &str, end: usize) -> Option<(String, usize)> {
    let head = &code[..end];
    let ident: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        let start = end - ident.len();
        Some((ident, start))
    }
}

/// Extract call sites (`name(`, `self.name(`, `Type::name(`) on a line.
fn extract_calls(code: &str) -> Vec<Call> {
    let mut out = Vec::new();
    for (pos, _) in code.match_indices('(') {
        let Some((name, start)) = ident_ending_at(code, pos) else {
            continue;
        };
        if NON_CALL_WORDS.contains(&name.as_str()) {
            continue;
        }
        let before = &code[..start];
        // `fn name(` is a declaration, not a call.
        if before.trim_end().ends_with("fn") {
            continue;
        }
        let kind = if before.ends_with("self.") {
            CallKind::SelfMethod
        } else if before.ends_with('.') {
            CallKind::Method
        } else if before.ends_with("::") {
            match ident_ending_at(code, start - 2) {
                Some((ty, _)) => CallKind::Path(ty),
                None => continue, // `<T as X>::f(` etc. — unresolvable
            }
        } else {
            CallKind::Free
        };
        if matches!(kind, CallKind::SelfMethod | CallKind::Method)
            && SPECIAL_METHODS.contains(&name.as_str())
        {
            continue;
        }
        out.push(Call { name, kind });
    }
    out
}

/// Parse an `impl` header's self type: `impl Foo {`, `impl Tr for Foo`,
/// `impl<T> mod::Foo<T>` all yield `Foo`.
fn parse_impl_type(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("impl")?;
    // Reject identifiers that merely start with "impl".
    let mut rest = match rest.chars().next() {
        Some(c) if c.is_alphanumeric() || c == '_' => return None,
        _ => rest,
    };
    // Skip the generic parameter list, if any.
    if let Some(stripped) = rest.strip_prefix('<') {
        let mut depth = 1usize;
        let mut cut = None;
        for (i, c) in stripped.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &stripped[cut?..];
    }
    let rest = match rest.find(" for ") {
        Some(p) => &rest[p + 5..],
        None => rest,
    };
    // Last path segment of the type, up to `<`, `{`, or whitespace.
    let head: &str = rest
        .trim_start()
        .split(|c: char| c == '<' || c == '{' || c.is_whitespace())
        .next()?;
    let ty = head.rsplit("::").next().unwrap_or(head).trim();
    if ty.is_empty() || !ty.chars().all(|c| c.is_alphanumeric() || c == '_') {
        None
    } else {
        Some(ty.to_owned())
    }
}

/// Parse `fn <name>` on a line, if present at a word boundary.
fn parse_fn_name(code: &str) -> Option<String> {
    let mut from = 0;
    while let Some(rel) = code[from..].find("fn ") {
        let pos = from + rel;
        from = pos + 3;
        if !at_word_boundary(code, pos) {
            continue;
        }
        let name: String = code[pos + 3..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    None
}

/// Build function defs for one file, attributing each non-test line to
/// the innermost open function.
fn collect_fns(file_idx: usize, file: &SourceFile, defs: &mut Vec<FnDef>) {
    let mut depth: i64 = 0;
    // (self type, entry depth, opened)
    let mut impls: Vec<(String, i64, bool)> = Vec::new();
    // (def index, entry depth)
    let mut stack: Vec<(usize, i64)> = Vec::new();

    for (idx, line) in file.lines.iter().enumerate() {
        let code = line.code.as_str();
        let analyzed = !line.in_test && !code.trim().is_empty();
        if analyzed {
            if let Some(ty) = parse_impl_type(code) {
                impls.push((ty, depth, false));
            }
            if let Some(name) = parse_fn_name(code) {
                let impl_type = impls.last().map(|(t, _, _)| t.clone());
                defs.push(FnDef {
                    name,
                    impl_type,
                    file: file_idx,
                    lines: Vec::new(),
                    // A single-line body (`fn f() { .. }`) opens and
                    // closes within its decl line, so depth alone never
                    // reveals it — the brace on the decl line does.
                    opened: code.contains('{'),
                    direct_min: None,
                    direct_wait: false,
                    calls: Vec::new(),
                    min_acquire: None,
                    may_wait: false,
                });
                stack.push((defs.len() - 1, depth));
            }
            if let Some(&(di, _)) = stack.last() {
                defs[di].lines.push(idx);
            }
        }
        depth += brace_delta(code);
        // Close function bodies whose scope ended; drop bodyless
        // signatures terminated by `;` before any brace opened.
        while let Some(&(di, entry)) = stack.last() {
            if depth > entry {
                defs[di].opened = true;
                break;
            }
            if defs[di].opened || depth < entry || code.contains(';') {
                stack.pop();
            } else {
                break; // multi-line signature, body brace still coming
            }
        }
        while let Some(&(_, entry, opened)) = impls.last() {
            if depth > entry {
                if let Some(top) = impls.last_mut() {
                    top.2 = true;
                }
                break;
            }
            if opened || depth < entry || code.contains(';') {
                impls.pop();
            } else {
                break;
            }
        }
    }
    defs.retain(|d| d.opened || d.file != file_idx);
}

/// Fill the direct (intra-body) facts of every def.
fn analyze_direct(order: &LockOrder, files: &[SourceFile], defs: &mut [FnDef]) {
    for def in defs.iter_mut() {
        let file = &files[def.file];
        for &idx in &def.lines {
            let code = file.lines[idx].code.as_str();
            for call in ACQUIRE_CALLS {
                let mut from = 0;
                while let Some(rel) = code[from..].find(call) {
                    let pos = from + rel;
                    from = pos + call.len();
                    if let Some((field, true)) = receiver_field(code, pos) {
                        if let Some(decl) = order.by_field.get(&field) {
                            def.direct_min =
                                Some(def.direct_min.map_or(decl.level, |m| m.min(decl.level)));
                        }
                    }
                }
            }
            if code.contains(".wait(") || code.contains(".wait_timeout(") {
                def.direct_wait = true;
            }
            def.calls.extend(extract_calls(code));
        }
        def.min_acquire = def.direct_min;
        def.may_wait = def.direct_wait;
    }
}

/// Candidate defs for a call, or `None` when the callee is external
/// (no function of that name in the graph, or a foreign `Type::`).
fn resolve(
    by_name: &HashMap<String, Vec<usize>>,
    defs: &[FnDef],
    call: &Call,
    caller_impl: Option<&str>,
) -> Option<Vec<usize>> {
    let cands = by_name.get(&call.name)?;
    match &call.kind {
        CallKind::Path(ty) => {
            let ty = if ty == "Self" {
                caller_impl?
            } else {
                ty.as_str()
            };
            let filtered: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| defs[i].impl_type.as_deref() == Some(ty))
                .collect();
            if filtered.is_empty() {
                None // a type we don't know — Vec::new(), HashMap::insert(), …
            } else {
                Some(filtered)
            }
        }
        CallKind::SelfMethod => {
            // Prefer the caller's own impl block; fall back to all
            // candidates (trait default methods, blanket impls).
            let same: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| caller_impl.is_some() && defs[i].impl_type.as_deref() == caller_impl)
                .collect();
            if same.is_empty() {
                Some(cands.clone())
            } else {
                Some(same)
            }
        }
        // A method call on a non-`self` receiver can always dispatch to
        // a type outside the checked crates (the receiver's type is
        // unknown here), so an external candidate is always possible and
        // the intersection claims nothing. Without this, `inner.cs.persist(..)`
        // — a storage-crate call — would resolve to the graph's only
        // `persist` and flag a self-inversion that cannot happen.
        CallKind::Method => None,
        CallKind::Free => Some(cands.clone()),
    }
}

/// Intersection summary of a candidate set: a fact holds only when every
/// candidate supports it. `min` is the tightest level bound all
/// candidates reach (the max of their minima); `wait` requires all.
fn effective(defs: &[FnDef], cands: &[usize]) -> (Option<u32>, bool) {
    let mut min: Option<u32> = None;
    let mut all_acquire = true;
    let mut all_wait = true;
    for &i in cands {
        match defs[i].min_acquire {
            Some(m) => min = Some(min.map_or(m, |x: u32| x.max(m))),
            None => all_acquire = false,
        }
        all_wait &= defs[i].may_wait;
    }
    (if all_acquire { min } else { None }, all_wait)
}

/// Propagate summaries to a fixpoint. `min_acquire` only decreases and
/// `may_wait` only flips to true, so this terminates.
fn fixpoint(by_name: &HashMap<String, Vec<usize>>, defs: &mut [FnDef]) {
    loop {
        let mut changed = false;
        for i in 0..defs.len() {
            let mut new_min = defs[i].direct_min;
            let mut new_wait = defs[i].direct_wait;
            let calls = std::mem::take(&mut defs[i].calls);
            let caller_impl = defs[i].impl_type.clone();
            for call in &calls {
                if let Some(cands) = resolve(by_name, defs, call, caller_impl.as_deref()) {
                    let (m, w) = effective(defs, &cands);
                    if let Some(m) = m {
                        new_min = Some(new_min.map_or(m, |x: u32| x.min(m)));
                    }
                    new_wait |= w;
                }
            }
            defs[i].calls = calls;
            if new_min != defs[i].min_acquire || new_wait != defs[i].may_wait {
                defs[i].min_acquire = new_min;
                defs[i].may_wait = new_wait;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// A guard held during the checking walk of one function body.
struct Held {
    field: String,
    level: u32,
    depth: i64,
    binding: Option<String>,
}

/// Emit an L7/L8 finding, honouring inline waivers for `rule`.
fn record(rule: Rule, file: &SourceFile, idx: usize, message: String, out: &mut Vec<Violation>) {
    let path = file.path.to_string_lossy().to_string();
    let waived = match crate::rules::waiver_for(file, idx, rule) {
        Some(true) => true,
        Some(false) => {
            out.push(Violation {
                rule: Rule::Waiver,
                crate_name: file.crate_name.clone(),
                path,
                line: idx + 1,
                message: format!(
                    "waiver for `{}` is missing its reason — write `// lint: allow({}) — <why>`",
                    rule.name(),
                    rule.name()
                ),
                waived: false,
            });
            return;
        }
        None => false,
    };
    out.push(Violation {
        rule,
        crate_name: file.crate_name.clone(),
        path,
        line: idx + 1,
        message,
        waived,
    });
}

/// Walk one function body with guard tracking, flagging calls whose
/// callee may acquire an equal-or-lower level or block on a condvar.
fn check_fn(
    order: &LockOrder,
    files: &[SourceFile],
    by_name: &HashMap<String, Vec<usize>>,
    defs: &[FnDef],
    def: &FnDef,
    out: &mut Vec<Violation>,
) {
    let file = &files[def.file];
    let mut depth: i64 = 0;
    let mut held: Vec<Held> = Vec::new();

    for &idx in &def.lines {
        let code = file.lines[idx].code.as_str();

        // Releases via drop(name).
        let mut from = 0;
        while let Some(rel) = code[from..].find("drop(") {
            let pos = from + rel;
            if at_word_boundary(code, pos) {
                let arg: String = code[pos + 5..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                held.retain(|h| h.binding.as_deref() != Some(arg.as_str()));
            }
            from = pos + 5;
        }

        // Condvar waits release their own guard but sleep under every
        // other one — flag a wait made while another guard is held.
        for pat in [".wait(", ".wait_timeout("] {
            let mut from = 0;
            while let Some(rel) = code[from..].find(pat) {
                let pos = from + rel;
                from = pos + pat.len();
                let arg: String = code[pos + pat.len()..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                let others: Vec<&Held> = held
                    .iter()
                    .filter(|h| h.binding.as_deref() != Some(arg.as_str()))
                    .collect();
                if let Some(h) = others.last() {
                    record(
                        Rule::LockOrderCall,
                        file,
                        idx,
                        format!(
                            "condvar wait while holding `{}` (level {}) — a wait may sleep indefinitely and must not run under other guards",
                            lock_name(order, &h.field),
                            h.level,
                        ),
                        out,
                    );
                }
            }
        }

        // Calls made while a guard is live.
        if !held.is_empty() {
            let max_held = held.iter().max_by_key(|h| h.level);
            for call in extract_calls(code) {
                let Some(cands) = resolve(by_name, defs, &call, def.impl_type.as_deref()) else {
                    continue;
                };
                let (min, wait) = effective(defs, &cands);
                if let (Some(m), Some(h)) = (min, max_held) {
                    if m <= h.level {
                        let lock = order
                            .by_field
                            .values()
                            .find(|d| d.level == m)
                            .map_or("?", |d| d.name.as_str());
                        record(
                            Rule::LockOrderCall,
                            file,
                            idx,
                            format!(
                                "calls `{}` which may acquire `{}` (level {}) while holding `{}` (level {}) — cross-function lock-order violation",
                                call.name,
                                lock,
                                m,
                                lock_name(order, &h.field),
                                h.level,
                            ),
                            out,
                        );
                        continue;
                    }
                }
                if wait {
                    if let Some(h) = max_held {
                        record(
                            Rule::LockOrderCall,
                            file,
                            idx,
                            format!(
                                "calls `{}` which may block on a condvar while holding `{}` (level {}) — waits must not run under guards",
                                call.name,
                                lock_name(order, &h.field),
                                h.level,
                            ),
                            out,
                        );
                    }
                }
            }
        }

        // Acquisitions update the held set (order itself is L5's job).
        for call in ACQUIRE_CALLS {
            let mut from = 0;
            while let Some(rel) = code[from..].find(call) {
                let pos = from + rel;
                from = pos + call.len();
                if let Some((field, true)) = receiver_field(code, pos) {
                    if let Some(decl) = order.by_field.get(&field) {
                        held.push(Held {
                            field,
                            level: decl.level,
                            depth,
                            binding: guard_binding(code, from),
                        });
                    }
                }
            }
        }

        held.retain(|h| h.binding.is_some());
        depth += brace_delta(code);
        held.retain(|h| depth >= h.depth);
    }
}

fn lock_name<'a>(order: &'a LockOrder, field: &'a str) -> &'a str {
    order.by_field.get(field).map_or(field, |d| d.name.as_str())
}

/// A `Mutex`/`RwLock` struct field discovered in a checked crate.
struct LockField {
    file: usize,
    line: usize,
    field: String,
}

/// True when a struct-body line declares a lock field; returns its name.
fn lock_field_name(code: &str) -> Option<String> {
    let t = code.trim_start();
    let t = t.strip_prefix("pub").map_or(t, |rest| {
        let rest = rest.trim_start();
        match rest.strip_prefix('(') {
            Some(r) => r.split_once(')').map_or(rest, |(_, tail)| tail),
            None => rest,
        }
    });
    let t = t.trim_start();
    let name: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let rest = t[name.len()..].trim_start();
    if name.is_empty() || !rest.starts_with(':') {
        return None;
    }
    let ty = &rest[1..];
    if ty.contains('&') || ty.contains("fn(") || ty.contains("dyn ") {
        return None;
    }
    for lock in ["Mutex<", "RwLock<"] {
        let mut from = 0;
        while let Some(rel) = ty[from..].find(lock) {
            let pos = from + rel;
            if at_word_boundary(ty, pos) {
                return Some(name);
            }
            from = pos + lock.len();
        }
    }
    None
}

/// Collect lock fields from struct bodies in the checked crates.
fn collect_lock_fields(files: &[SourceFile]) -> Vec<LockField> {
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !CHECKED_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let mut depth: i64 = 0;
        // (entry depth, opened)
        let mut structs: Vec<(i64, bool)> = Vec::new();
        for (idx, line) in file.lines.iter().enumerate() {
            let code = line.code.as_str();
            if !line.in_test && !code.trim().is_empty() {
                if structs.last().is_some_and(|&(_, opened)| opened) {
                    if let Some(field) = lock_field_name(code) {
                        out.push(LockField {
                            file: fi,
                            line: idx,
                            field,
                        });
                    }
                }
                let mut from = 0;
                while let Some(rel) = code[from..].find("struct ") {
                    let pos = from + rel;
                    from = pos + 7;
                    // Unit and tuple structs have no named lock fields.
                    if at_word_boundary(code, pos) && !code.contains(';') {
                        structs.push((depth, false));
                        break;
                    }
                }
            }
            depth += brace_delta(code);
            while let Some(&(entry, opened)) = structs.last() {
                if depth > entry {
                    if let Some(top) = structs.last_mut() {
                        top.1 = true;
                    }
                    break;
                }
                if opened || depth < entry || code.contains(';') {
                    structs.pop();
                } else {
                    break;
                }
            }
        }
    }
    out
}

/// L8 — diff LOCK_ORDER.md's table against the lock fields in code.
fn check_doc(order: &LockOrder, files: &[SourceFile], out: &mut Vec<Violation>) {
    let fields = collect_lock_fields(files);
    for f in &fields {
        let file = &files[f.file];
        let path = file.path.to_string_lossy().to_string();
        match order.by_field.get(&f.field) {
            None => record(
                Rule::LockOrderDoc,
                file,
                f.line,
                format!(
                    "lock field `{}` is not declared in LOCK_ORDER.md — add a `<level> <name> <file> <field>` row",
                    f.field
                ),
                out,
            ),
            Some(decl) => {
                let matches_file =
                    path.ends_with(&decl.file) || decl.file.ends_with(path.as_str());
                if !matches_file {
                    record(
                        Rule::LockOrderDoc,
                        file,
                        f.line,
                        format!(
                            "lock field `{}` found in {} but LOCK_ORDER.md declares it in {} — fix the row",
                            f.field, path, decl.file
                        ),
                        out,
                    );
                }
            }
        }
    }
    // Rows with no surviving field are stale.
    for decl in order.by_field.values() {
        let survives = fields.iter().any(|f| {
            let path = files[f.file].path.to_string_lossy();
            f.field == decl.field
                && (path.ends_with(&decl.file) || decl.file.ends_with(path.as_ref()))
        });
        if !survives {
            out.push(Violation {
                rule: Rule::LockOrderDoc,
                crate_name: "docs".into(),
                path: "LOCK_ORDER.md".into(),
                line: decl.doc_line,
                message: format!(
                    "stale row: lock `{}` (field `{}`) is not declared as a Mutex/RwLock field in {} — remove or fix the row",
                    decl.name, decl.field, decl.file
                ),
                waived: false,
            });
        }
    }
}

/// Run the interprocedural (L7) and documentation-diff (L8) checks over
/// the whole scanned workspace.
pub fn check_workspace(order: &LockOrder, files: &[SourceFile], out: &mut Vec<Violation>) {
    let mut defs: Vec<FnDef> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if CHECKED_CRATES.contains(&file.crate_name.as_str()) {
            collect_fns(fi, file, &mut defs);
        }
    }
    analyze_direct(order, files, &mut defs);
    let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, def) in defs.iter().enumerate() {
        by_name.entry(def.name.clone()).or_default().push(i);
    }
    fixpoint(&by_name, &mut defs);
    for def in &defs {
        check_fn(order, files, &by_name, &defs, def, out);
    }
    check_doc(order, files, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const DOC: &str = "```lock-order\n\
        1 a.first crates/core/src/x.rs first\n\
        3 b.second crates/core/src/x.rs second\n\
        ```\n";

    fn run(text: &str) -> Vec<Violation> {
        let order = LockOrder::parse(DOC).unwrap();
        let files = vec![SourceFile::parse(
            PathBuf::from("crates/core/src/x.rs"),
            "core",
            false,
            text,
        )];
        let mut out = Vec::new();
        check_workspace(&order, &files, &mut out);
        out
    }

    /// Boilerplate that keeps L8 quiet: both declared fields exist.
    const STRUCTS: &str = "struct S {\n first: RwLock<u32>,\n second: Mutex<u32>,\n}\n";

    #[test]
    fn cross_function_inversion_is_flagged() {
        let text = format!(
            "{STRUCTS}impl S {{\n\
             fn low(&self) {{ let g = self.first.write(); }}\n\
             fn high(&self) {{\n let g = self.second.lock();\n self.low();\n }}\n\
             }}\n"
        );
        let v = run(&text);
        let l7: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrderCall).collect();
        assert_eq!(l7.len(), 1, "{v:?}");
        assert!(l7[0].message.contains("`low`"), "{}", l7[0].message);
        assert!(l7[0].message.contains("a.first"), "{}", l7[0].message);
        assert!(l7[0].message.contains("b.second"), "{}", l7[0].message);
    }

    #[test]
    fn transitive_inversion_through_a_middleman_is_flagged() {
        let text = format!(
            "{STRUCTS}impl S {{\n\
             fn low(&self) {{ let g = self.first.write(); }}\n\
             fn middle(&self) {{ self.low(); }}\n\
             fn high(&self) {{\n let g = self.second.lock();\n self.middle();\n }}\n\
             }}\n"
        );
        let v = run(&text);
        let l7: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrderCall).collect();
        assert_eq!(l7.len(), 1, "{v:?}");
        assert!(l7[0].message.contains("`middle`"), "{}", l7[0].message);
    }

    #[test]
    fn increasing_cross_function_order_is_clean() {
        let text = format!(
            "{STRUCTS}impl S {{\n\
             fn upper(&self) {{ let g = self.second.lock(); }}\n\
             fn entry(&self) {{\n let g = self.first.read();\n self.upper();\n }}\n\
             }}\n"
        );
        let v = run(&text);
        assert!(
            v.iter().all(|v| v.rule != Rule::LockOrderCall),
            "3 > 1 is a legal acquisition order: {v:?}"
        );
    }

    #[test]
    fn call_after_guard_release_is_clean() {
        let text = format!(
            "{STRUCTS}impl S {{\n\
             fn low(&self) {{ let g = self.first.write(); }}\n\
             fn high(&self) {{\n {{\n let g = self.second.lock();\n }}\n self.low();\n }}\n\
             fn drops(&self) {{\n let g = self.second.lock();\n drop(g);\n self.low();\n }}\n\
             }}\n"
        );
        let v = run(&text);
        assert!(
            v.iter().all(|v| v.rule != Rule::LockOrderCall),
            "guard released before the call: {v:?}"
        );
    }

    #[test]
    fn may_wait_callee_under_guard_is_flagged() {
        let text = format!(
            "{STRUCTS}impl S {{\n\
             fn parks(&self) {{\n let g = self.second.lock();\n let g = self.cv.wait(g);\n }}\n\
             fn bad(&self) {{\n let g = self.first.read();\n self.parks();\n }}\n\
             }}\n"
        );
        let v = run(&text);
        let l7: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrderCall).collect();
        assert_eq!(l7.len(), 1, "{v:?}");
        assert!(l7[0].message.contains("condvar"), "{}", l7[0].message);
    }

    #[test]
    fn direct_wait_on_own_guard_is_clean_but_under_another_is_not() {
        let clean = format!(
            "{STRUCTS}impl S {{\n\
             fn ok(&self) {{\n let st = self.second.lock();\n let st = self.cv.wait(st);\n }}\n\
             }}\n"
        );
        let v = run(&clean);
        assert!(v.iter().all(|v| v.rule != Rule::LockOrderCall), "{v:?}");
        let bad = format!(
            "{STRUCTS}impl S {{\n\
             fn no(&self) {{\n let a = self.first.read();\n let st = self.second.lock();\n let st = self.cv.wait(st);\n }}\n\
             }}\n"
        );
        let v = run(&bad);
        let l7: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrderCall).collect();
        assert_eq!(l7.len(), 1, "{v:?}");
        assert!(l7[0].message.contains("a.first"), "{}", l7[0].message);
    }

    #[test]
    fn ambiguous_callee_uses_intersection_of_candidates() {
        // Two same-named candidates on different impl types; the caller's
        // `self.helper()` matches neither impl, so both stay candidates.
        // One acquires level 1, the other acquires nothing — the
        // intersection claims nothing and no finding fires.
        let text = format!(
            "{STRUCTS}struct A;\nstruct B;\n\
             impl A {{\n fn helper(&self, s: &S) {{ let g = s.first.write(); }}\n }}\n\
             impl B {{\n fn helper(&self) {{ }}\n }}\n\
             impl S {{\n\
             fn high(&self) {{\n let g = self.second.lock();\n self.helper();\n }}\n\
             }}\n"
        );
        let v = run(&text);
        assert!(
            v.iter().all(|v| v.rule != Rule::LockOrderCall),
            "ambiguous callee must not be assumed to acquire: {v:?}"
        );
    }

    #[test]
    fn method_call_on_foreign_receiver_is_not_resolved() {
        // `inner.cs.persist(..)` dispatches to a type outside the checked
        // crates; it must not resolve to the graph's only `persist`.
        let text = format!(
            "{STRUCTS}impl S {{\n\
             pub fn persist(&self) {{\n let g = self.first.read();\n g.cs.persist();\n }}\n\
             }}\n"
        );
        let v = run(&text);
        assert!(
            v.iter().all(|v| v.rule != Rule::LockOrderCall),
            "foreign-receiver method must be assumed safe: {v:?}"
        );
    }

    #[test]
    fn guard_consumed_by_a_chain_is_a_temporary() {
        // `let w = self.second.lock().clone();` binds the clone, not the
        // guard — the guard dies at the semicolon, so the later call is
        // made lock-free.
        let text = format!(
            "{STRUCTS}impl S {{\n\
             fn low(&self) {{ let g = self.first.write(); }}\n\
             fn high(&self) {{\n let w = self.second.lock().clone();\n self.low();\n }}\n\
             }}\n"
        );
        let v = run(&text);
        assert!(
            v.iter().all(|v| v.rule != Rule::LockOrderCall),
            "chained guard is a temporary: {v:?}"
        );
    }

    #[test]
    fn waiver_marks_l7_finding_waived() {
        let text = format!(
            "{STRUCTS}impl S {{\n\
             fn low(&self) {{ let g = self.first.write(); }}\n\
             fn high(&self) {{\n let g = self.second.lock();\n \
             // lint: allow(lock-order-call) — release protocol documented in DESIGN.md\n \
             self.low();\n }}\n\
             }}\n"
        );
        let v = run(&text);
        let l7: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrderCall).collect();
        assert_eq!(l7.len(), 1, "{v:?}");
        assert!(l7[0].waived);
    }

    #[test]
    fn undeclared_lock_field_is_flagged() {
        let text = format!("{STRUCTS}struct T {{\n hidden: Mutex<u32>,\n}}\n");
        let v = run(&text);
        let l8: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrderDoc).collect();
        assert_eq!(l8.len(), 1, "{v:?}");
        assert!(l8[0].message.contains("`hidden`"), "{}", l8[0].message);
    }

    #[test]
    fn stale_doc_row_is_flagged() {
        // Only `first` exists in code; the `second` row is stale.
        let text = "struct S {\n first: RwLock<u32>,\n}\n";
        let v = run(text);
        let l8: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrderDoc).collect();
        assert_eq!(l8.len(), 1, "{v:?}");
        assert_eq!(l8[0].path, "LOCK_ORDER.md");
        assert!(l8[0].message.contains("stale row"), "{}", l8[0].message);
        assert!(l8[0].message.contains("b.second"), "{}", l8[0].message);
    }

    #[test]
    fn wrong_file_in_doc_row_is_flagged() {
        let order =
            LockOrder::parse("```lock-order\n1 a.first crates/core/src/other.rs first\n```\n")
                .unwrap();
        let files = vec![SourceFile::parse(
            PathBuf::from("crates/core/src/x.rs"),
            "core",
            false,
            "struct S {\n first: RwLock<u32>,\n}\n",
        )];
        let mut out = Vec::new();
        check_workspace(&order, &files, &mut out);
        let l8: Vec<_> = out
            .iter()
            .filter(|v| v.rule == Rule::LockOrderDoc)
            .collect();
        // Wrong-file on the field plus the stale row pointing nowhere.
        assert_eq!(l8.len(), 2, "{out:?}");
        assert!(l8.iter().any(|v| v.message.contains("fix the row")));
    }

    #[test]
    fn arc_wrapped_and_pub_fields_are_detected() {
        assert_eq!(
            lock_field_name(" pub tables: Arc<RwLock<Vec<u32>>>,"),
            Some("tables".into())
        );
        assert_eq!(
            lock_field_name(" pub(crate) wal: Arc<Mutex<Option<u8>>>,"),
            Some("wal".into())
        );
        assert_eq!(lock_field_name(" count: u64,"), None);
        assert_eq!(
            lock_field_name(" r: &'a Mutex<u8>,"),
            None,
            "references are not declarations"
        );
    }
}
