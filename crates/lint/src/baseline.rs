//! The ratchet: violation counts are compared against the checked-in
//! `lint-baseline.toml`. Counts may only go down — a count above its
//! baseline fails the build; a count below it passes but prints a notice
//! to re-run `update-baseline` so the improvement is locked in.
//!
//! The file is a deliberately tiny TOML subset (one `[counts]` table of
//! `"rule.crate" = N` pairs) parsed by hand so the lint crate stays
//! dependency-free.

use crate::rules::Violation;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Baseline counts keyed by `"rule.crate"`, e.g. `"unwrap.storage"`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<String, u64>,
}

/// Outcome of comparing current counts against the baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// `(key, baseline, current)` where current > baseline — failures.
    pub regressions: Vec<(String, u64, u64)>,
    /// `(key, baseline, current)` where current < baseline — ratchet
    /// opportunities; the baseline should be re-generated.
    pub improvements: Vec<(String, u64, u64)>,
}

impl Baseline {
    /// Parse the `[counts]` table. Unknown sections are errors: the file
    /// is machine-written, so anything unexpected means drift.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut baseline = Baseline::default();
        let mut in_counts = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let section = section.strip_suffix(']').unwrap_or(section).trim();
                if section != "counts" {
                    return Err(format!(
                        "lint-baseline.toml line {}: unknown section [{}]",
                        n + 1,
                        section
                    ));
                }
                in_counts = true;
                continue;
            }
            if !in_counts {
                return Err(format!(
                    "lint-baseline.toml line {}: entry outside [counts]",
                    n + 1
                ));
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!(
                    "lint-baseline.toml line {}: expected `\"rule.crate\" = N`",
                    n + 1
                )
            })?;
            let key = key.trim().trim_matches('"').to_owned();
            let value: u64 = value.trim().parse().map_err(|_| {
                format!(
                    "lint-baseline.toml line {}: count {:?} is not a non-negative integer",
                    n + 1,
                    value.trim()
                )
            })?;
            if baseline.counts.insert(key.clone(), value).is_some() {
                return Err(format!(
                    "lint-baseline.toml line {}: duplicate key {:?}",
                    n + 1,
                    key
                ));
            }
        }
        Ok(baseline)
    }

    /// Aggregate violations into per-`rule.crate` counts. Waived findings
    /// are excluded — a waiver with a reason is the accepted escape hatch,
    /// so it must not consume ratchet headroom.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for v in violations.iter().filter(|v| !v.waived) {
            *counts
                .entry(format!("{}.{}", v.rule, v.crate_name))
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Render back to the canonical file format (sorted keys, so diffs
    /// between regenerations stay minimal).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Violation ratchet for cstore-lint. Counts may only decrease.\n\
             # Regenerate with: cargo run -p cstore-lint -- update-baseline\n\n[counts]\n",
        );
        for (key, count) in &self.counts {
            // render() writes to a String; fmt::Write cannot fail here.
            let _ = writeln!(out, "\"{key}\" = {count}");
        }
        out
    }

    /// Ratchet comparison: every key present in either side is checked.
    /// A key absent from the baseline counts as baseline 0 (new rule/crate
    /// combinations start clean); a key absent from `current` counts as 0
    /// (fully burned down).
    pub fn compare(&self, current: &Baseline) -> Comparison {
        let mut cmp = Comparison::default();
        let keys: std::collections::BTreeSet<&String> =
            self.counts.keys().chain(current.counts.keys()).collect();
        for key in keys {
            let base = self.counts.get(key).copied().unwrap_or(0);
            let cur = current.counts.get(key).copied().unwrap_or(0);
            if cur > base {
                cmp.regressions.push((key.clone(), base, cur));
            } else if cur < base {
                cmp.improvements.push((key.clone(), base, cur));
            }
        }
        cmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn violation(rule: Rule, crate_name: &str) -> Violation {
        Violation {
            rule,
            crate_name: crate_name.into(),
            path: "x.rs".into(),
            line: 1,
            message: String::new(),
            waived: false,
        }
    }

    #[test]
    fn waived_findings_do_not_count() {
        let mut w = violation(Rule::Unwrap, "storage");
        w.waived = true;
        let b = Baseline::from_violations(&[w, violation(Rule::Unwrap, "storage")]);
        assert_eq!(b.counts["unwrap.storage"], 1);
    }

    #[test]
    fn roundtrip() {
        let v = vec![
            violation(Rule::Unwrap, "storage"),
            violation(Rule::Unwrap, "storage"),
            violation(Rule::Panic, "exec"),
        ];
        let b = Baseline::from_violations(&v);
        let rendered = b.render();
        let parsed = Baseline::parse(&rendered).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.counts["unwrap.storage"], 2);
        assert_eq!(parsed.counts["panic.exec"], 1);
    }

    #[test]
    fn increase_is_a_regression_decrease_is_an_improvement() {
        let base =
            Baseline::parse("[counts]\n\"unwrap.storage\" = 5\n\"panic.exec\" = 2\n").unwrap();
        let current =
            Baseline::parse("[counts]\n\"unwrap.storage\" = 6\n\"panic.exec\" = 1\n").unwrap();
        let cmp = base.compare(&current);
        assert_eq!(cmp.regressions, vec![("unwrap.storage".to_owned(), 5, 6)]);
        assert_eq!(cmp.improvements, vec![("panic.exec".to_owned(), 2, 1)]);
    }

    #[test]
    fn new_key_regresses_from_zero_and_absent_key_improves_to_zero() {
        let base = Baseline::parse("[counts]\n\"unwrap.storage\" = 3\n").unwrap();
        let current = Baseline::parse("[counts]\n\"cast.storage\" = 1\n").unwrap();
        let cmp = base.compare(&current);
        assert_eq!(cmp.regressions, vec![("cast.storage".to_owned(), 0, 1)]);
        assert_eq!(cmp.improvements, vec![("unwrap.storage".to_owned(), 3, 0)]);
    }

    #[test]
    fn malformed_files_are_rejected() {
        assert!(Baseline::parse("[other]\n\"x\" = 1\n").is_err());
        assert!(Baseline::parse("\"x\" = 1\n").is_err());
        assert!(Baseline::parse("[counts]\n\"x\" = -1\n").is_err());
        assert!(Baseline::parse("[counts]\n\"x\" = 1\n\"x\" = 2\n").is_err());
    }
}
