//! CLI for the cstore static-analysis layer.
//!
//! ```text
//! cargo run -p cstore-lint -- check            # scan + ratchet, exit 1 on failure
//! cargo run -p cstore-lint -- list             # print every finding (no ratchet)
//! cargo run -p cstore-lint -- update-baseline  # rewrite lint-baseline.toml
//! ```
//!
//! Options: `--root <DIR>` (default `.`), `--baseline <FILE>` (default
//! `<root>/lint-baseline.toml`), `--json` (machine-readable findings on
//! stdout; diagnostics stay on stderr). Exit codes: 0 clean, 1
//! violations or ratchet regression, 2 internal/usage error.

use cstore_lint::baseline::Baseline;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    command: String,
    root: PathBuf,
    baseline: PathBuf,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut command = None;
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root requires a directory")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline requires a file path")?,
                ));
            }
            "check" | "list" | "update-baseline" if command.is_none() => {
                command = Some(arg);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let command = command.ok_or(
        "usage: cstore-lint <check|list|update-baseline> [--root DIR] [--baseline FILE] [--json]",
    )?;
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.toml"));
    Ok(Options {
        command,
        root,
        baseline,
        json,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cstore-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cstore-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    match opts.command.as_str() {
        "list" => {
            let violations = cstore_lint::collect_violations(&opts.root)?;
            if opts.json {
                println!("{}", cstore_lint::render_json(&violations));
            } else {
                for v in &violations {
                    println!("{v}");
                }
                println!("{} finding(s)", violations.len());
            }
            Ok(violations.iter().all(|v| v.waived))
        }
        "update-baseline" => {
            let violations = cstore_lint::collect_violations(&opts.root)?;
            let baseline = Baseline::from_violations(&violations);
            std::fs::write(&opts.baseline, baseline.render())
                .map_err(|e| format!("cannot write {}: {e}", opts.baseline.display()))?;
            println!(
                "wrote {} ({} finding(s) across {} rule/crate key(s))",
                opts.baseline.display(),
                violations.len(),
                baseline.counts.len()
            );
            Ok(true)
        }
        "check" => {
            let (violations, cmp) = cstore_lint::run_check(&opts.root, &opts.baseline)?;
            if opts.json {
                println!("{}", cstore_lint::render_json(&violations));
            }
            if !cmp.regressions.is_empty() {
                eprintln!("ratchet REGRESSION — new violations over the baseline:");
                for (key, base, cur) in &cmp.regressions {
                    eprintln!("  {key}: baseline {base}, now {cur}");
                }
                // Print the offending findings for the regressed keys so
                // the developer can find them without re-running `list`.
                eprintln!();
                for v in &violations {
                    let key = format!("{}.{}", v.rule, v.crate_name);
                    if cmp.regressions.iter().any(|(k, _, _)| *k == key) {
                        eprintln!("  {v}");
                    }
                }
                eprintln!(
                    "\nfix the new findings, add a `// lint: allow(<rule>) — <reason>` waiver,\n\
                     or (for deliberate scope growth) run `cargo run -p cstore-lint -- update-baseline`."
                );
                return Ok(false);
            }
            if !cmp.improvements.is_empty() {
                eprintln!("ratchet improvement — counts dropped below the baseline:");
                for (key, base, cur) in &cmp.improvements {
                    eprintln!("  {key}: baseline {base}, now {cur}");
                }
                eprintln!("run `cargo run -p cstore-lint -- update-baseline` to lock this in.");
            }
            if !opts.json {
                println!(
                    "cstore-lint: OK ({} finding(s), all within baseline)",
                    violations.len()
                );
            }
            Ok(true)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}
