//! `cstore-lint` — a dependency-free static-analysis and ratchet layer
//! for the cstore workspace.
//!
//! The binary (`cargo run -p cstore-lint -- check`) walks every
//! `crates/*/src` tree plus the root `src/`, scans each Rust file with a
//! lightweight comment/string-aware tokenizer ([`source`]), and enforces
//! six rules:
//!
//! | rule        | meaning                                                        |
//! |-------------|----------------------------------------------------------------|
//! | `unwrap`    | L1 — no `.unwrap()`/`.expect(` in lib code of storage/exec/delta/core |
//! | `panic`     | L2 — no `panic!`/`unreachable!`/`todo!`/`unimplemented!` in lib code without a waiver |
//! | `cast`      | L3 — no lossy `as` numeric casts in storage format/encode files |
//! | `unsafe`    | L4 — every `unsafe` needs a `// SAFETY:` comment                |
//! | `lock-order`| L5 — guard acquisitions must follow LOCK_ORDER.md               |
//! | `discard`   | L6 — no silent Result discards (`.ok();`, `let _ =`)            |
//! | `lock-order-call` | L7 — interprocedural: no call under a guard may reach a function that acquires an equal-or-lower level or parks on a condvar |
//! | `lock-order-doc`  | L8 — LOCK_ORDER.md must match the actual `Mutex`/`RwLock` fields in the checked crates |
//!
//! Findings are compared against the checked-in `lint-baseline.toml`
//! ratchet ([`baseline`]): counts may only decrease. Findings waived
//! with `// lint: allow(<rule>) — <reason>` are reported (and surface
//! in `--json` with `"waived": true`) but don't count against it.

pub mod baseline;
pub mod callgraph;
pub mod lockorder;
pub mod rules;
pub mod source;

use baseline::Baseline;
use lockorder::LockOrder;
use rules::Violation;
use source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories under `crates/` that are skipped entirely. `bench` is
/// excluded from the workspace (it needs registry access) and `lint` is
/// this tool — it may talk about unwrap/panic in strings and tests.
const SKIPPED_CRATES: [&str; 2] = ["bench", "lint"];

/// Walk the repository at `root` and scan every in-scope Rust source
/// file. Returns the parsed files, sorted by path for deterministic
/// output.
pub fn scan_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files: Vec<SourceFile> = Vec::new();

    // crates/*/src
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if SKIPPED_CRATES.contains(&name.as_str()) {
            continue;
        }
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &name, root, &mut files)?;
        }
    }

    // Root package src/ (crate name "cstore").
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, "cstore", root, &mut files)?;
    }

    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Recursively collect and parse `.rs` files under `dir`.
fn collect_rs(
    dir: &Path,
    crate_name: &str,
    root: &Path,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry
            .map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?
            .path();
        if path.is_dir() {
            collect_rs(&path, crate_name, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let rel_str = rel.to_string_lossy();
            let is_bin = rel_str.ends_with("src/main.rs") || rel_str.contains("src/bin/");
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.push(SourceFile::parse(rel, crate_name, is_bin, text.as_str()));
        }
    }
    Ok(())
}

/// Run every rule over the scanned files. `lock_order` comes from
/// LOCK_ORDER.md; pass `None` to skip L5 (used by some fixtures).
pub fn check_files(files: &[SourceFile], lock_order: Option<&LockOrder>) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        rules::check_file(file, &mut out);
        if let Some(order) = lock_order {
            lockorder::check_file(order, file, &mut out);
        }
    }
    if let Some(order) = lock_order {
        callgraph::check_workspace(order, files, &mut out);
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON array (machine-readable `--json` output).
/// Hand-rolled so the lint layer stays dependency-free.
pub fn render_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"waived\": {}}}",
            v.rule,
            json_escape(&v.path),
            v.line,
            json_escape(&v.message),
            v.waived
        ));
    }
    out.push_str(if violations.is_empty() { "]" } else { "\n]" });
    out
}

/// Full check of the repo at `root` against the baseline at
/// `baseline_path`. Returns `(violations, comparison)` on success.
pub fn run_check(
    root: &Path,
    baseline_path: &Path,
) -> Result<(Vec<Violation>, baseline::Comparison), String> {
    let violations = collect_violations(root)?;
    let baseline_text = fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
    let base = Baseline::parse(&baseline_text)?;
    let current = Baseline::from_violations(&violations);
    let cmp = base.compare(&current);
    Ok((violations, cmp))
}

/// Scan + all rules, without the baseline step.
pub fn collect_violations(root: &Path) -> Result<Vec<Violation>, String> {
    let files = scan_workspace(root)?;
    let lock_doc_path = root.join("LOCK_ORDER.md");
    let lock_order = if lock_doc_path.is_file() {
        let doc = fs::read_to_string(&lock_doc_path)
            .map_err(|e| format!("cannot read {}: {e}", lock_doc_path.display()))?;
        Some(LockOrder::parse(&doc)?)
    } else {
        None
    };
    Ok(check_files(&files, lock_order.as_ref()))
}
