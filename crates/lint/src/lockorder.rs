//! L5 — static lock-order checking against the hierarchy declared in
//! `LOCK_ORDER.md`.
//!
//! The check is deliberately conservative and syntactic: it tracks guard
//! bindings (`let g = self.inner.write();`) per function, scoped by brace
//! depth and released early by `drop(g)`, and flags any acquisition whose
//! declared level is less than or equal to a level already held. Receivers
//! are matched by the final field segment before the guard call
//! (`...stats.write()` → field `stats`), which is why `LOCK_ORDER.md`
//! requires lock field names to be unique within the checked crates.

use crate::rules::{Rule, Violation};
use crate::source::SourceFile;
use std::collections::HashMap;

/// One declared lock from the `lock-order` table.
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub level: u32,
    pub name: String,
    pub file: String,
    pub field: String,
    /// 1-based line of the row inside LOCK_ORDER.md (for L8 reporting).
    pub doc_line: usize,
}

/// The parsed hierarchy: field name → declaration.
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    pub by_field: HashMap<String, LockDecl>,
}

impl LockOrder {
    /// Parse the fenced ```lock-order block out of LOCK_ORDER.md text.
    /// Returns an error string when the document or a row is malformed.
    pub fn parse(doc: &str) -> Result<LockOrder, String> {
        let mut order = LockOrder::default();
        let mut in_block = false;
        for (n, raw) in doc.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with("```") {
                if line == "```lock-order" {
                    in_block = true;
                } else if in_block {
                    break; // closing fence of the table
                }
                continue;
            }
            if !in_block || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 {
                return Err(format!(
                    "LOCK_ORDER.md line {}: expected `<level> <name> <file> <field>`, got {:?}",
                    n + 1,
                    line
                ));
            }
            let level: u32 = parts[0]
                .parse()
                .map_err(|_| format!("LOCK_ORDER.md line {}: bad level {:?}", n + 1, parts[0]))?;
            let decl = LockDecl {
                level,
                name: parts[1].to_owned(),
                file: parts[2].to_owned(),
                field: parts[3].to_owned(),
                doc_line: n + 1,
            };
            if let Some(prev) = order.by_field.insert(decl.field.clone(), decl) {
                return Err(format!(
                    "LOCK_ORDER.md: duplicate lock field {:?} (levels must be keyed by unique field names)",
                    prev.field
                ));
            }
        }
        if order.by_field.is_empty() {
            return Err("LOCK_ORDER.md: no ```lock-order table found".into());
        }
        Ok(order)
    }
}

/// Crates whose lock usage is checked.
pub(crate) const CHECKED_CRATES: [&str; 3] = ["core", "delta", "exec"];

/// Guard-returning calls we recognise as acquisitions.
pub(crate) const ACQUIRE_CALLS: [&str; 6] = [
    ".lock()",
    ".read()",
    ".write()",
    ".try_lock()",
    ".try_read()",
    ".try_write()",
];

/// A currently-held guard inside a function body.
#[derive(Debug, Clone)]
struct Held {
    field: String,
    level: u32,
    /// Brace depth at which the binding was made; popped when the scope
    /// containing it closes.
    depth: i64,
    /// Binding name (for `drop(name)` release), or None for a temporary
    /// that only lives for its statement.
    binding: Option<String>,
}

/// Extract the receiver of an acquisition ending at byte `pos` in `code`
/// (the index where the matched `.read()` etc. begins): the last
/// identifier segment before the call, plus whether it is a field access
/// (`self.inner.read()` → `inner`, field access) or a bare binding
/// (`inner.read()` → `inner`, not a field access). Returns `None` when
/// the receiver is not a plain identifier (e.g. a chained call result).
pub(crate) fn receiver_field(code: &str, pos: usize) -> Option<(String, bool)> {
    let head = &code[..pos];
    let field: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if field.is_empty() || field.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    let is_field_access = head[..head.len() - field.len()].ends_with('.');
    Some((field, is_field_access))
}

/// Extract the `let` binding name at the start of a (trimmed) statement,
/// e.g. `let mut inner = ...` → `inner`.
/// The binding a guard acquired at `call_end` (the byte just past the
/// acquire call) lives in — or `None` when the guard is a temporary:
/// either an unbound statement, or consumed right away by a method chain
/// (`let wal = self.wal.lock().clone();` binds the clone, not the guard)
/// or by being passed along as an argument.
pub(crate) fn guard_binding(code: &str, call_end: usize) -> Option<String> {
    let rest = code[call_end..].trim_start();
    if rest.starts_with('.') || rest.starts_with(',') || rest.starts_with(')') {
        return None;
    }
    let_binding(code)
}

pub(crate) fn let_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

/// Check one file against the hierarchy, appending L5 findings to `out`.
pub fn check_file(order: &LockOrder, file: &SourceFile, out: &mut Vec<Violation>) {
    if !CHECKED_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let path = file.path.to_string_lossy().to_string();
    let mut depth: i64 = 0;
    let mut held: Vec<Held> = Vec::new();
    // Function boundary approximation: when depth returns to the level
    // where `fn` was declared, all guards are gone anyway because their
    // scopes closed; `held` self-cleans via depth tracking.

    let record = |idx: usize, message: String, out: &mut Vec<Violation>| {
        let waived = match crate::rules::waiver_for(file, idx, Rule::LockOrder) {
            Some(true) => true,
            Some(false) => {
                out.push(Violation {
                    rule: Rule::Waiver,
                    crate_name: file.crate_name.clone(),
                    path: path.clone(),
                    line: idx + 1,
                    message: "waiver for `lock-order` is missing its reason — write `// lint: allow(lock-order) — <why>`".into(),
                    waived: false,
                });
                return;
            }
            None => false,
        };
        out.push(Violation {
            rule: Rule::LockOrder,
            crate_name: file.crate_name.clone(),
            path: path.clone(),
            line: idx + 1,
            message,
            waived,
        });
    };

    for (idx, line) in file.lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            depth += brace_delta(code);
            continue;
        }

        // Releases via drop(name).
        let mut from = 0;
        while let Some(rel) = code[from..].find("drop(") {
            let pos = from + rel;
            if crate::rules::at_word_boundary(code, pos) {
                let arg: String = code[pos + 5..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                held.retain(|h| h.binding.as_deref() != Some(arg.as_str()));
            }
            from = pos + 5;
        }

        // Acquisitions on this line.
        for call in ACQUIRE_CALLS {
            let mut from = 0;
            while let Some(rel) = code[from..].find(call) {
                let pos = from + rel;
                from = pos + call.len();
                let Some((field, is_field_access)) = receiver_field(code, pos) else {
                    continue;
                };
                // Only field-access receivers (`self.inner.write()`) match
                // the table: a bare binding that happens to share a lock's
                // field name must not be misattributed to that lock.
                let decl = if is_field_access {
                    order.by_field.get(&field)
                } else {
                    None
                };
                let Some(decl) = decl else {
                    // An acquisition on a receiver we don't know. The
                    // zero-arg guard calls (`.read()` etc.) are specific
                    // enough to lock types that an unmatched one in a
                    // checked crate is almost certainly an undeclared
                    // lock — report it so LOCK_ORDER.md stays complete.
                    if !line.in_test {
                        let hint = if !is_field_access && order.by_field.contains_key(&field) {
                            "acquire through the owning field access so the checker can attribute it"
                        } else {
                            "declare it in LOCK_ORDER.md"
                        };
                        record(
                            idx,
                            format!(
                                "`{}` on unknown receiver `{}` — {} or waive with a reason",
                                call, field, hint
                            ),
                            out,
                        );
                    }
                    continue;
                };
                for h in &held {
                    if decl.level <= h.level {
                        record(
                            idx,
                            format!(
                                "acquires `{}` (level {}) while holding `{}` (level {}) — violates LOCK_ORDER.md",
                                decl.name,
                                decl.level,
                                lock_name(order, &h.field),
                                h.level,
                            ),
                            out,
                        );
                    }
                }
                held.push(Held {
                    field: field.clone(),
                    level: decl.level,
                    depth,
                    binding: guard_binding(code, from),
                });
            }
        }

        // Temporaries (no binding) die at end of statement — i.e. now,
        // after the line's acquisitions were checked against each other.
        held.retain(|h| h.binding.is_some());

        // Scope tracking: a net close below a guard's binding depth frees it.
        depth += brace_delta(code);
        held.retain(|h| depth >= h.depth);
    }
}

pub(crate) fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

fn lock_name<'a>(order: &'a LockOrder, field: &'a str) -> &'a str {
    order.by_field.get(field).map_or(field, |d| d.name.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const DOC: &str = "```lock-order\n1 a.first src/a.rs first\n2 b.second src/b.rs second\n```\n";

    fn check(text: &str) -> Vec<Violation> {
        let order = LockOrder::parse(DOC).unwrap();
        let f = SourceFile::parse(PathBuf::from("crates/core/src/x.rs"), "core", false, text);
        let mut out = Vec::new();
        check_file(&order, &f, &mut out);
        out
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        assert!(LockOrder::parse("```lock-order\n1 only two\n```").is_err());
        assert!(LockOrder::parse("no table at all").is_err());
        let ok = LockOrder::parse(DOC).unwrap();
        assert_eq!(ok.by_field.len(), 2);
        assert_eq!(ok.by_field["second"].level, 2);
    }

    #[test]
    fn increasing_order_is_clean() {
        let v = check(
            "fn f(&self) {\n let g1 = self.first.write();\n let g2 = self.second.write();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn inverted_order_is_flagged() {
        let v = check(
            "fn f(&self) {\n let g2 = self.second.write();\n let g1 = self.first.read();\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::LockOrder);
        assert!(v[0].message.contains("level 1"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let v = check(
            "fn f(&self) {\n let g2 = self.second.write();\n drop(g2);\n let g1 = self.first.read();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let v = check(
            "fn f(&self) {\n {\n let g2 = self.second.write();\n }\n let g1 = self.first.read();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn same_level_reacquisition_is_flagged() {
        let v =
            check("fn f(&self) {\n let g = self.first.write();\n let h = self.first.read();\n}\n");
        assert_eq!(v.len(), 1, "self-deadlock on the same lock must be flagged");
    }

    #[test]
    fn waiver_marks_the_finding_waived() {
        let v = check(
            "fn f(&self) {\n let g2 = self.second.write();\n // lint: allow(lock-order) — tables then stats is the documented pair\n let g1 = self.first.read();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].waived, "waived finding is kept but flagged");
    }

    #[test]
    fn bare_receiver_is_reported_not_misattributed() {
        // `second.write()` on a bare binding must not be treated as the
        // level-2 lock (that would be a false inversion vs g1 below being
        // clean); it is reported as an unknown receiver instead.
        let v = check(
            "fn f(&self, second: &X) {\n second.write().push(1);\n let g1 = self.first.read();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("unknown receiver `second`"), "{v:?}");
    }

    #[test]
    fn unknown_field_receiver_is_reported() {
        let v = check("fn f(&self) {\n let g = self.mystery.lock();\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("unknown receiver `mystery`"), "{v:?}");
        assert!(!v[0].waived);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let v = check(
            "fn f(&self) {\n self.second.write().push(1);\n let g1 = self.first.read();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
