//! End-to-end fixture tests: each test materializes a miniature workspace
//! on disk, runs the full scan pipeline over it, and asserts exact
//! per-rule counts. This is the contract the real workspace is held to —
//! if a rule's detection or waiver handling drifts, these fail before the
//! ratchet ever sees a bad count.

use cstore_lint::baseline::Baseline;
use cstore_lint::rules::Rule;
use cstore_lint::{collect_violations, run_check};
use std::fs;
use std::path::{Path, PathBuf};

/// A throwaway fixture workspace under the target dir; removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        if root.exists() {
            fs::remove_dir_all(&root).expect("clean stale fixture");
        }
        fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    /// Write `text` at `rel` (paths like `crates/storage/src/lib.rs`),
    /// creating parent directories.
    fn file(&self, rel: &str, text: &str) -> &Fixture {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create fixture dirs");
        }
        fs::write(path, text).expect("write fixture file");
        self
    }

    fn violations(&self) -> Vec<cstore_lint::rules::Violation> {
        collect_violations(&self.root).expect("fixture scan succeeds")
    }

    /// Count non-waived findings for `rule` (waived ones are retained in
    /// the output for audit but don't count against anything).
    fn count(&self, rule: Rule) -> usize {
        self.violations()
            .iter()
            .filter(|v| v.rule == rule && !v.waived)
            .count()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn l1_unwrap_flagged_in_lib_code_but_not_tests_or_unchecked_crates() {
    let f = Fixture::new("l1");
    f.file(
        "crates/storage/src/lib.rs",
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n\
         pub fn g(v: Option<u32>) -> u32 {\n    v.expect(\"present\")\n}\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n",
    );
    // planner is not an L1 crate: unwraps there are allowed.
    f.file(
        "crates/planner/src/lib.rs",
        "pub fn h(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    );
    let v = f.violations();
    let unwraps: Vec<_> = v.iter().filter(|v| v.rule == Rule::Unwrap).collect();
    assert_eq!(unwraps.len(), 2, "{v:?}");
    assert!(unwraps.iter().all(|v| v.crate_name == "storage"));
    assert_eq!(unwraps[0].line, 2);
    assert_eq!(unwraps[1].line, 5);
}

#[test]
fn l2_panic_macros_need_a_waiver_with_a_reason() {
    let f = Fixture::new("l2");
    f.file(
        "crates/exec/src/lib.rs",
        "pub fn a() {\n    panic!(\"boom\");\n}\n\
         pub fn b() {\n    // lint: allow(panic) — documented accessor contract\n    unreachable!(\"guarded\");\n}\n\
         pub fn c() {\n    // lint: allow(panic)\n    todo!();\n}\n",
    );
    let v = f.violations();
    // a(): unwaived panic. b(): waived — reported but marked. c(): a
    // waiver missing its reason is reported as a `waiver` violation in
    // place of the finding it covers — still a failure, but pointing at
    // the broken comment.
    assert_eq!(
        v.iter()
            .filter(|v| v.rule == Rule::Panic && !v.waived)
            .count(),
        1,
        "{v:?}"
    );
    assert_eq!(
        v.iter()
            .filter(|v| v.rule == Rule::Panic && v.waived)
            .count(),
        1,
        "{v:?}"
    );
    assert_eq!(
        v.iter().filter(|v| v.rule == Rule::Waiver).count(),
        1,
        "{v:?}"
    );
}

#[test]
fn l3_lossy_casts_flagged_only_in_format_and_encode_files() {
    let f = Fixture::new("l3");
    let lossy = "pub fn narrow(v: usize) -> u32 {\n    v as u32\n}\n";
    f.file("crates/storage/src/encode/pack.rs", lossy);
    f.file("crates/storage/src/format.rs", lossy);
    f.file("crates/storage/src/table.rs", lossy); // out of L3 scope
    f.file(
        "crates/storage/src/encode/ok.rs",
        // A waived cast and a non-numeric `as` (trait cast) stay clean.
        "pub fn w(v: usize) -> u32 {\n    // lint: allow(cast) — v is a table index below 256\n    v as u32\n}\n\
         pub fn d(x: &dyn std::fmt::Debug) -> &dyn std::fmt::Debug {\n    x as &dyn std::fmt::Debug\n}\n",
    );
    let v = f.violations();
    let casts: Vec<_> = v
        .iter()
        .filter(|v| v.rule == Rule::Cast && !v.waived)
        .collect();
    assert_eq!(casts.len(), 2, "{v:?}");
    assert!(casts.iter().any(|c| c.path.contains("encode/pack.rs")));
    assert!(casts.iter().any(|c| c.path.contains("format.rs")));
}

#[test]
fn l4_unsafe_requires_a_nearby_safety_comment() {
    let f = Fixture::new("l4");
    f.file(
        "crates/common/src/lib.rs",
        "pub fn bad(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n\
         pub fn good(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid and aligned\n    unsafe { *p }\n}\n",
    );
    let v = f.violations();
    let unsafes: Vec<_> = v.iter().filter(|v| v.rule == Rule::Unsafe).collect();
    assert_eq!(unsafes.len(), 1, "{v:?}");
    assert_eq!(unsafes[0].line, 2);
}

#[test]
fn l5_lock_inversion_flagged_per_lock_order_md() {
    let f = Fixture::new("l5");
    f.file(
        "LOCK_ORDER.md",
        "# order\n```lock-order\n1 catalog.tables crates/core/src/catalog.rs tables\n2 table.inner crates/delta/src/table.rs inner\n```\n",
    );
    f.file(
        "crates/core/src/lib.rs",
        "pub fn inverted(&self) {\n    let g = self.inner.write();\n    let t = self.tables.read();\n}\n\
         pub fn ordered(&self) {\n    let t = self.tables.read();\n    let g = self.inner.write();\n}\n",
    );
    let v = f.violations();
    let locks: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrder).collect();
    assert_eq!(locks.len(), 1, "{v:?}");
    assert_eq!(locks[0].line, 3);
    assert!(locks[0].message.contains("catalog.tables"));
}

#[test]
fn l7_cross_function_inversion_flagged_through_the_call_graph() {
    let f = Fixture::new("l7");
    f.file(
        "LOCK_ORDER.md",
        "# order\n```lock-order\n1 catalog.tables crates/core/src/lib.rs tables\n3 table.inner crates/core/src/lib.rs inner\n```\n",
    );
    f.file(
        "crates/core/src/lib.rs",
        "pub struct T {\n    tables: RwLock<u32>,\n    inner: RwLock<u32>,\n}\n\
         impl T {\n\
         fn reload(&self) {\n    let t = self.tables.write();\n}\n\
         pub fn bad(&self) {\n    let g = self.inner.write();\n    self.reload();\n}\n\
         pub fn good(&self) {\n    {\n        let g = self.inner.write();\n    }\n    self.reload();\n}\n\
         }\n",
    );
    let v = f.violations();
    let l7: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrderCall).collect();
    assert_eq!(l7.len(), 1, "{v:?}");
    assert!(l7[0].message.contains("`reload`"), "{}", l7[0].message);
    assert!(
        l7[0].message.contains("catalog.tables"),
        "{}",
        l7[0].message
    );
    assert!(l7[0].message.contains("table.inner"), "{}", l7[0].message);
}

#[test]
fn l8_doc_drift_flagged_in_both_directions() {
    let f = Fixture::new("l8");
    // The doc declares a lock that no longer exists and misses one that
    // does.
    f.file(
        "LOCK_ORDER.md",
        "# order\n```lock-order\n1 gone.lock crates/core/src/lib.rs vanished\n```\n",
    );
    f.file(
        "crates/core/src/lib.rs",
        "pub struct T {\n    undocumented: Mutex<u32>,\n}\n",
    );
    let v = f.violations();
    let l8: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrderDoc).collect();
    assert_eq!(l8.len(), 2, "{v:?}");
    assert!(
        l8.iter()
            .any(|v| v.path == "LOCK_ORDER.md" && v.message.contains("stale row")),
        "{v:?}"
    );
    assert!(
        l8.iter()
            .any(|v| v.path.contains("lib.rs") && v.message.contains("`undocumented`")),
        "{v:?}"
    );
}

#[test]
fn l6_silent_result_discards_flagged_unless_waived() {
    let f = Fixture::new("l6");
    f.file(
        "crates/delta/src/lib.rs",
        "pub fn f(r: Result<u32, ()>) {\n    r.ok();\n}\n\
         pub fn g(r: Result<u32, ()>) {\n    let _ = r;\n}\n\
         pub fn h(r: Result<u32, ()>) {\n    // lint: allow(discard) — best-effort cleanup on shutdown\n    let _ = r;\n}\n",
    );
    assert_eq!(f.count(Rule::Discard), 2);
}

#[test]
fn clean_fixture_produces_no_findings() {
    let f = Fixture::new("clean");
    f.file(
        "crates/storage/src/lib.rs",
        "pub fn f(v: Option<u32>) -> Result<u32, String> {\n    v.ok_or_else(|| \"missing\".to_owned())\n}\n",
    );
    assert!(f.violations().is_empty());
}

#[test]
fn ratchet_fails_on_regression_and_notices_improvements() {
    let f = Fixture::new("ratchet");
    f.file(
        "crates/storage/src/lib.rs",
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    );

    // Baseline matches reality: clean, nothing to report.
    f.file("lint-baseline.toml", "[counts]\n\"unwrap.storage\" = 1\n");
    let (v, cmp) = run_check(&f.root, &f.root.join("lint-baseline.toml")).unwrap();
    assert_eq!(v.len(), 1);
    assert!(cmp.regressions.is_empty() && cmp.improvements.is_empty());

    // Baseline says zero: the one finding is a regression (hard fail).
    f.file("lint-baseline.toml", "[counts]\n");
    let (_, cmp) = run_check(&f.root, &f.root.join("lint-baseline.toml")).unwrap();
    assert_eq!(cmp.regressions, vec![("unwrap.storage".to_owned(), 0, 1)]);

    // Baseline says two: the single finding is an improvement — passing,
    // but flagged so the ratchet gets tightened.
    f.file("lint-baseline.toml", "[counts]\n\"unwrap.storage\" = 2\n");
    let (_, cmp) = run_check(&f.root, &f.root.join("lint-baseline.toml")).unwrap();
    assert!(cmp.regressions.is_empty());
    assert_eq!(cmp.improvements, vec![("unwrap.storage".to_owned(), 2, 1)]);
}

#[test]
fn baseline_roundtrips_through_render_and_parse() {
    let f = Fixture::new("roundtrip");
    f.file(
        "crates/exec/src/lib.rs",
        "pub fn a() {\n    panic!(\"x\");\n}\npub fn b(r: Result<u32, ()>) {\n    r.ok();\n}\n",
    );
    let current = Baseline::from_violations(&f.violations());
    let reparsed = Baseline::parse(&current.render()).unwrap();
    assert_eq!(reparsed, current);
    assert_eq!(reparsed.counts["panic.exec"], 1);
    assert_eq!(reparsed.counts["discard.exec"], 1);
}
