//! Randomized roundtrip tests for the row-store baseline's codecs.
//! Deterministic seeded `Rng` replaces proptest so the suite builds
//! offline.

use cstore_common::testutil::Rng;
use cstore_common::{DataType, Field, Row, Schema, Value};
use cstore_rowstore::rowcodec::{cell_image, decode_cell, decode_fixed, encode_fixed};
use cstore_rowstore::CompressedHeapTable;

/// Printable-ASCII string of length 0..=12, or None ~25% of the time.
fn random_opt_string(rng: &mut Rng) -> Option<String> {
    if rng.gen_bool(0.25) {
        return None;
    }
    let len = rng.range_usize(0, 13);
    Some(
        (0..len)
            .map(|_| rng.range_i64(0x20, 0x7f) as u8 as char)
            .collect(),
    )
}

fn random_row(rng: &mut Rng) -> Row {
    let b = random_opt_string(rng);
    let c = if rng.gen_bool(0.25) {
        None
    } else {
        Some(rng.next_u32() as i32 as f64 / 4.0)
    };
    Row::new(vec![
        Value::Int64(rng.next_u64() as i64),
        b.map_or(Value::Null, Value::str),
        c.map_or(Value::Null, Value::Float64),
        Value::Int32(rng.next_u32() as i32),
        Value::Bool(rng.gen_bool(0.5)),
    ])
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::not_null("a", DataType::Int64),
        Field::nullable("b", DataType::Utf8),
        Field::nullable("c", DataType::Float64),
        Field::not_null("d", DataType::Int32),
        Field::not_null("e", DataType::Bool),
    ])
}

#[test]
fn fixed_codec_roundtrips() {
    let mut rng = Rng::new(1);
    for case in 0..256 {
        let row = random_row(&mut rng);
        let bytes = encode_fixed(&schema(), &row);
        assert_eq!(decode_fixed(&schema(), &bytes).unwrap(), row, "case {case}");
    }
}

#[test]
fn cell_images_roundtrip() {
    let mut rng = Rng::new(2);
    for case in 0..256 {
        let v = rng.next_u64() as i64;
        for ty in [DataType::Int64, DataType::Decimal { scale: 3 }] {
            let value = Value::from_i64(ty, v);
            let img = cell_image(ty, &value).unwrap();
            assert!(img.len() <= 8, "case {case}");
            assert_eq!(decode_cell(ty, Some(&img)).unwrap(), value, "case {case}");
        }
    }
}

#[test]
fn page_compression_roundtrips() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed ^ 0x9A6E);
        let n = rng.range_usize(0, 250);
        let rows: Vec<Row> = (0..n).map(|_| random_row(&mut rng)).collect();
        let t = CompressedHeapTable::build(schema(), &rows).unwrap();
        let got: Vec<Row> = t.scan().collect::<cstore_common::Result<_>>().unwrap();
        assert_eq!(got, rows, "seed {seed}");
    }
}
