//! Property tests for the row-store baseline's codecs.

use cstore_common::{DataType, Field, Row, Schema, Value};
use cstore_rowstore::rowcodec::{cell_image, decode_cell, decode_fixed, encode_fixed};
use cstore_rowstore::CompressedHeapTable;
use proptest::prelude::*;

fn arb_row() -> impl Strategy<Value = Row> {
    (
        any::<i64>(),
        prop_oneof![3 => "[ -~]{0,12}".prop_map(Some), 1 => Just(None)],
        prop_oneof![3 => any::<i32>().prop_map(|x| Some(x as f64 / 4.0)), 1 => Just(None)],
        any::<i32>(),
        any::<bool>(),
    )
        .prop_map(|(a, b, c, d, e)| {
            Row::new(vec![
                Value::Int64(a),
                b.map_or(Value::Null, Value::str),
                c.map_or(Value::Null, Value::Float64),
                Value::Int32(d),
                Value::Bool(e),
            ])
        })
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::not_null("a", DataType::Int64),
        Field::nullable("b", DataType::Utf8),
        Field::nullable("c", DataType::Float64),
        Field::not_null("d", DataType::Int32),
        Field::not_null("e", DataType::Bool),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fixed_codec_roundtrips(row in arb_row()) {
        let bytes = encode_fixed(&schema(), &row);
        prop_assert_eq!(decode_fixed(&schema(), &bytes).unwrap(), row);
    }

    #[test]
    fn cell_images_roundtrip(v in any::<i64>()) {
        for ty in [DataType::Int64, DataType::Decimal { scale: 3 }] {
            let value = Value::from_i64(ty, v);
            let img = cell_image(ty, &value).unwrap();
            prop_assert!(img.len() <= 8);
            prop_assert_eq!(decode_cell(ty, Some(&img)).unwrap(), value);
        }
    }

    #[test]
    fn page_compression_roundtrips(rows in proptest::collection::vec(arb_row(), 0..250)) {
        let t = CompressedHeapTable::build(schema(), &rows).unwrap();
        let got: Vec<Row> = t.scan().collect::<cstore_common::Result<_>>().unwrap();
        prop_assert_eq!(got, rows);
    }
}
