//! Row-store baseline.
//!
//! The paper's experiments compare the column store against SQL Server's
//! classic row-oriented storage, both uncompressed and with PAGE
//! compression. This crate is that comparator:
//!
//! * [`page`] — 8 KiB slotted pages;
//! * [`heap`] — a heap table of slotted pages with row-at-a-time scans
//!   (the row-mode execution baseline reads from here);
//! * [`rowcodec`] — row serialization, both fixed-width and SQL Server
//!   "row compression"-style variable-width;
//! * [`pagecompress`] — a PAGE-compression analogue (per-page, per-column
//!   prefix + dictionary compression over row-compressed cells), the
//!   baseline in the compression-ratio experiment (E1).

pub mod heap;
pub mod page;
pub mod pagecompress;
pub mod rowcodec;

pub use heap::HeapTable;
pub use pagecompress::CompressedHeapTable;
